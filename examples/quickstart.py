#!/usr/bin/env python3
"""Quickstart: build PostMHL on a synthetic city network, query it, update it.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    PostMHLQueryStage,
    create_index,
    generate_update_batch,
    grid_road_network,
)
from repro.algorithms.dijkstra import dijkstra_distance


def main() -> None:
    # 1. A synthetic road network (20x20 imperfect grid with travel-time weights).
    graph = grid_road_network(20, 20, seed=7)
    print(f"network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Build the PostMHL index (tree decomposition + TD-partitioning) via the
    #    typed registry: any method is one `create_index(name, graph, **params)`.
    index = create_index("PostMHL", graph, bandwidth=14, expected_partitions=8)
    build_seconds = index.build()
    print(
        f"PostMHL built in {build_seconds:.3f}s: "
        f"{index.td.num_partitions} partitions, "
        f"{index.overlay_vertex_count} overlay vertices, "
        f"{index.index_size()} index entries"
    )

    # 3. Answer shortest-distance queries (validated against Dijkstra here).
    source, target = 0, graph.num_vertices - 1
    answer = index.query(source, target)
    print(f"d({source}, {target}) = {answer:.2f} "
          f"(Dijkstra says {dijkstra_distance(graph, source, target):.2f})")

    # 4. Apply a batch of traffic updates and query again — every query stage
    #    of the multi-stage index stays consistent with the updated network.
    batch = generate_update_batch(graph, volume=40, seed=1)
    report = index.apply_batch(batch)
    print("update stages:", ", ".join(f"{s.name}={s.seconds * 1000:.1f}ms" for s in report.stages))
    for stage in PostMHLQueryStage:
        print(f"  {stage.name:<15} d({source},{target}) = "
              f"{index.query_at_stage(source, target, stage):.2f}")

    # 5. The batch query plane answers many pairs in one call (one source-label
    #    fetch per distinct source) with exactly the scalar path's distances.
    pairs = [(source, target), (source, 210), (source, 57), (3, 396)]
    distances = index.query_many(pairs)
    print("batch:", ", ".join(f"d{p} = {d:.2f}" for p, d in zip(pairs, distances)))


if __name__ == "__main__":
    main()
