#!/usr/bin/env python3
"""Throughput of a live navigation service under periodic traffic updates.

Models the paper's system setting: every ``δt`` seconds a batch of edge-weight
changes (traffic) arrives and must be installed before stale-free query
processing can resume; queries arrive continuously as a Poisson stream with a
response-time QoS.  The example compares the maximum sustainable throughput of
DH2H, DCH, P-TD-P and PostMHL on the same network and prints the QPS evolution
of PostMHL over an update interval (the paper's Figure 13 view).

Run with ``python examples/dynamic_traffic_throughput.py``.
"""

from repro import (
    DCHIndex,
    DH2HIndex,
    PostMHLIndex,
    PTDPIndex,
    ThroughputEvaluator,
    generate_update_batch,
    grid_road_network,
    sample_query_pairs,
)


def main() -> None:
    graph = grid_road_network(24, 24, seed=5)
    print(f"network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    update_interval = 2.0   # δt (seconds, scaled down from the paper's 60-600s)
    response_qos = 0.2      # R*_q (seconds)
    threads = 8             # virtual maintenance threads
    update_volume = 50      # |U| edges per batch

    evaluator = ThroughputEvaluator(
        update_interval=update_interval,
        response_qos=response_qos,
        threads=threads,
        query_sample_size=30,
    )

    methods = {
        "DCH": lambda g: DCHIndex(g),
        "DH2H": lambda g: DH2HIndex(g),
        "P-TD-P": lambda g: PTDPIndex(g, num_partitions=4, seed=5),
        "PostMHL": lambda g: PostMHLIndex(g, bandwidth=16, expected_partitions=8),
    }

    print(f"\nδt={update_interval}s  R*_q={response_qos}s  p={threads}  |U|={update_volume}")
    print(f"{'method':<10} {'t_u (wall, s)':>14} {'t_q final (ms)':>15} {'λ*_q (q/s)':>12}")
    results = {}
    for name, factory in methods.items():
        working = graph.copy()
        index = factory(working)
        index.build()
        workload = sample_query_pairs(working, 30, seed=5)
        batch = generate_update_batch(working, update_volume, seed=5)
        result = evaluator.evaluate(index, batch, workload)
        results[name] = result
        print(
            f"{name:<10} {result.update_wall_seconds:>14.4f} "
            f"{result.final_query_seconds * 1000:>15.3f} {result.max_throughput:>12.1f}"
        )

    best_baseline = max(
        results[name].max_throughput for name in ("DCH", "DH2H", "P-TD-P")
    )
    speedup = results["PostMHL"].max_throughput / best_baseline if best_baseline else float("inf")
    print(f"\nPostMHL vs best baseline throughput: {speedup:.1f}x")

    # QPS evolution of PostMHL over one update interval (Figure 13 view).
    working = graph.copy()
    index = PostMHLIndex(working, bandwidth=16, expected_partitions=8)
    index.build()
    workload = sample_query_pairs(working, 30, seed=6)
    report = index.apply_batch(generate_update_batch(working, update_volume, seed=6))
    print("\nPostMHL QPS evolution during one update interval:")
    for timestamp, qps in evaluator.qps_evolution(index, report, workload, num_points=8):
        print(f"  t = {timestamp:5.2f}s   QPS ≈ {qps:10.0f}")


if __name__ == "__main__":
    main()
