#!/usr/bin/env python3
"""Live serving: concurrent queries while the index is being maintained.

Builds PostMHL on a synthetic city network, wraps it in the
:class:`~repro.serving.engine.ServingEngine`, then drives it with concurrent
client threads while traffic-update batches install on the maintenance
worker.  Every answer is epoch-stamped; the final block replays a sample of
them against Dijkstra on the matching graph snapshot to show the engine never
served a stale distance.

Run with ``python examples/live_serving.py``.
"""

from repro import (
    PostMHLIndex,
    ServingEngine,
    generate_update_stream,
    grid_road_network,
    run_mixed_workload,
    sample_query_pairs,
)
from repro.algorithms.dijkstra import dijkstra_distance


def main() -> None:
    graph = grid_road_network(14, 14, seed=7)
    print(f"network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    index = PostMHLIndex(graph, bandwidth=12, expected_partitions=6)
    engine = ServingEngine(index, response_qos=0.2, query_threads=3, snapshot_limit=32)
    print(f"PostMHL built in {index.build_seconds:.2f}s; engine ready at epoch 0")

    pairs = list(sample_query_pairs(graph, 80, seed=3))
    batches = generate_update_stream(graph, num_batches=3, volume=25, seed=5)

    with engine:
        report = run_mixed_workload(
            engine,
            pairs,
            duration_seconds=1.5,
            query_threads=3,
            batches=batches,
            collect_results=True,
            seed=9,
        )

    print(
        f"\nserved {report.queries_served} queries in {report.duration_seconds:.2f}s "
        f"({report.measured_qps:.0f} QPS) while installing "
        f"{report.batches_applied} update batches"
    )
    latency = report.stats["latency"]
    print(
        "latency p50/p95/p99: "
        f"{latency['p50_seconds'] * 1000:.2f} / "
        f"{latency['p95_seconds'] * 1000:.2f} / "
        f"{latency['p99_seconds'] * 1000:.2f} ms"
    )
    print("answers by query stage:", report.stats["by_stage"])
    print("cache:", report.stats["cache"])

    # Replay a sample against the per-epoch Dijkstra oracle.
    sample = report.results[:: max(1, len(report.results) // 200)]
    mismatches = sum(
        1
        for r in sample
        if abs(dijkstra_distance(engine.graph_at(r.epoch), r.source, r.target) - r.distance)
        > 1e-9
    )
    print(
        f"\noracle replay: {len(sample)} answers checked across epochs "
        f"0..{engine.current_epoch}, {mismatches} mismatches"
    )
    assert mismatches == 0


if __name__ == "__main__":
    main()
