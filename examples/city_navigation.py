#!/usr/bin/env python3
"""City-level navigation on a province-scale network (same-partition workload).

The paper motivates the post-boundary strategy with city-level queries on
province-level road networks: most queries start and end inside the same city
(partition), so a PSP index must answer same-partition queries without paying
for distance concatenation.  This example builds a multi-city highway network,
compares PMHL's query stages on a same-partition-heavy workload, and shows the
post-/cross-boundary stages closing the gap to the no-boundary stage.

Run with ``python examples/city_navigation.py``.
"""

import statistics
import time

from repro import PMHLIndex, highway_network, sample_query_pairs
from repro.algorithms.dijkstra import dijkstra_distance


def time_queries(query, pairs):
    samples = []
    for source, target in pairs:
        start = time.perf_counter()
        query(source, target)
        samples.append(time.perf_counter() - start)
    return statistics.fmean(samples)


def main() -> None:
    # Four "cities" of ~100 intersections each, joined by fast highways.
    graph = highway_network(clusters=4, cluster_size=100, seed=11)
    print(f"province network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    index = PMHLIndex(graph, num_partitions=4, seed=11)
    index.build()
    print(
        f"PMHL built in {index.build_seconds:.2f}s "
        f"(|B| = {len(index.partitioning.all_boundary())} boundary vertices)"
    )

    # A city-level workload: 80% of queries stay inside one partition.
    workload = sample_query_pairs(
        graph, 60, seed=3, partitioning=index.partitioning, same_partition_fraction=0.8
    )
    pairs = list(workload)

    # Sanity: PMHL answers match Dijkstra.
    for source, target in pairs[:10]:
        assert abs(index.query(source, target) - dijkstra_distance(graph, source, target)) < 1e-6

    print("\naverage query time on the city-level workload:")
    stages = {
        "Q1 BiDijkstra": index.query_bidijkstra,
        "Q2 partitioned CH": index.query_pch,
        "Q3 no-boundary": index.query_no_boundary,
        "Q4 post-boundary": index.query_post_boundary,
        "Q5 cross-boundary": index.query_cross_boundary,
    }
    for name, query in stages.items():
        print(f"  {name:<20} {time_queries(query, pairs) * 1000:8.3f} ms/query")

    print("\nThe post-/cross-boundary stages avoid the boundary concatenation that")
    print("dominates the no-boundary stage on same-partition (city-level) queries.")


if __name__ == "__main__":
    main()
