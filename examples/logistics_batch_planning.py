#!/usr/bin/env python3
"""Logistics batch planning: many origin-destination distance evaluations per day.

A logistics operator re-plans thousands of origin-destination legs whenever a
traffic update lands.  This example compares the end-to-end cost of serving a
large OD matrix with an index-free search versus PMHL/PostMHL across several
update rounds — using the batch query plane (``query_many``) and reporting its
speedup over the scalar loop per method — and reads a DIMACS-format network
from disk to show the I/O path a user with the real datasets would take.

Run with ``python examples/logistics_batch_planning.py``.
"""

import os
import statistics
import tempfile
import time

from repro import create_index, generate_update_stream, grid_road_network, sample_query_pairs
from repro.graph.io import read_dimacs_gr, write_dimacs_gr


def serve_od_matrix(index, pairs):
    """Serve the whole OD matrix through the batch query plane."""
    start = time.perf_counter()
    distances = index.query_many(pairs)
    return time.perf_counter() - start, distances


def serve_od_matrix_scalar(index, pairs):
    """The old one-query-at-a-time loop, kept for the speedup comparison."""
    start = time.perf_counter()
    distances = [index.query(s, t) for s, t in pairs]
    return time.perf_counter() - start, distances


def main() -> None:
    # Persist the synthetic network in DIMACS format and read it back, as a
    # user with the real DIMACS/NavInfo files would.
    graph = grid_road_network(22, 22, seed=13)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "network.gr")
        write_dimacs_gr(graph, path, comment="synthetic logistics network")
        graph = read_dimacs_gr(path)
    print(f"network loaded from DIMACS: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # A real OD matrix: a few depots, distances to many delivery points each.
    depots = [0, 107, 233, 391]
    destinations = [t for _, t in sample_query_pairs(graph, 250, seed=2)]
    od_pairs = [(depot, destination) for depot in depots for destination in destinations]
    updates = generate_update_stream(graph, num_batches=3, volume=40, seed=2)

    methods = {
        "BiDijkstra": create_index("BiDijkstra", graph.copy()),
        "PMHL": create_index("PMHL", graph.copy(), num_partitions=4, seed=13),
        "PostMHL": create_index("PostMHL", graph.copy(), bandwidth=16, expected_partitions=8),
    }

    print(f"\nOD matrix size: {len(od_pairs)} legs, {len(updates)} update rounds")
    header = (
        f"{'method':<12} {'build (s)':>10} {'per-round update (s)':>21} "
        f"{'OD serve batch (s)':>19} {'vs scalar':>10}"
    )
    print(header)
    reference = None
    for name, index in methods.items():
        build_seconds = index.build()
        update_times, serve_times, speedups = [], [], []
        distances = None
        for batch in updates:
            start = time.perf_counter()
            index.apply_batch(batch)
            update_times.append(time.perf_counter() - start)
            batch_seconds, distances = serve_od_matrix(index, od_pairs)
            scalar_seconds, scalar_distances = serve_od_matrix_scalar(index, od_pairs)
            mism = sum(
                1 for a, b in zip(distances, scalar_distances) if abs(a - b) > 1e-9
            )
            assert mism == 0, f"{name} batch path disagrees with scalar on {mism} legs"
            serve_times.append(batch_seconds)
            speedups.append(scalar_seconds / batch_seconds if batch_seconds > 0 else 1.0)
        if reference is None:
            reference = distances
        else:
            mismatches = sum(
                1 for a, b in zip(reference, distances) if abs(a - b) > 1e-6
            )
            assert mismatches == 0, f"{name} disagrees on {mismatches} legs"
        print(
            f"{name:<12} {build_seconds:>10.3f} "
            f"{statistics.fmean(update_times):>21.4f} "
            f"{statistics.fmean(serve_times):>19.4f} "
            f"{statistics.fmean(speedups):>9.1f}x"
        )

    print("\nAll methods return identical distances; the batch query plane groups")
    print("legs by depot, so the index-free search pays one truncated Dijkstra per")
    print("depot instead of one bidirectional search per leg, and the labeled")
    print("indexes fetch each depot label once.")


if __name__ == "__main__":
    main()
