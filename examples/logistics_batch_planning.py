#!/usr/bin/env python3
"""Logistics batch planning: many origin-destination distance evaluations per day.

A logistics operator re-plans thousands of origin-destination legs whenever a
traffic update lands.  This example compares the end-to-end cost of serving a
large OD matrix with an index-free search versus PMHL/PostMHL across several
update rounds, and reads a DIMACS-format network from disk to show the I/O
path a user with the real datasets would take.

Run with ``python examples/logistics_batch_planning.py``.
"""

import os
import statistics
import tempfile
import time

from repro import (
    BiDijkstraIndex,
    PMHLIndex,
    PostMHLIndex,
    generate_update_stream,
    grid_road_network,
    sample_query_pairs,
)
from repro.graph.io import read_dimacs_gr, write_dimacs_gr


def serve_od_matrix(index, pairs):
    start = time.perf_counter()
    distances = [index.query(s, t) for s, t in pairs]
    return time.perf_counter() - start, distances


def main() -> None:
    # Persist the synthetic network in DIMACS format and read it back, as a
    # user with the real DIMACS/NavInfo files would.
    graph = grid_road_network(22, 22, seed=13)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "network.gr")
        write_dimacs_gr(graph, path, comment="synthetic logistics network")
        graph = read_dimacs_gr(path)
    print(f"network loaded from DIMACS: {graph.num_vertices} vertices, {graph.num_edges} edges")

    od_pairs = list(sample_query_pairs(graph, 400, seed=2))
    updates = generate_update_stream(graph, num_batches=3, volume=40, seed=2)

    methods = {
        "BiDijkstra": BiDijkstraIndex(graph.copy()),
        "PMHL": PMHLIndex(graph.copy(), num_partitions=4, seed=13),
        "PostMHL": PostMHLIndex(graph.copy(), bandwidth=16, expected_partitions=8),
    }

    print(f"\nOD matrix size: {len(od_pairs)} legs, {len(updates)} update rounds")
    print(f"{'method':<12} {'build (s)':>10} {'per-round update (s)':>21} {'per-round OD serve (s)':>23}")
    reference = None
    for name, index in methods.items():
        build_seconds = index.build()
        update_times, serve_times = [], []
        distances = None
        for batch in updates:
            start = time.perf_counter()
            index.apply_batch(batch)
            update_times.append(time.perf_counter() - start)
            serve_seconds, distances = serve_od_matrix(index, od_pairs)
            serve_times.append(serve_seconds)
        if reference is None:
            reference = distances
        else:
            mismatches = sum(
                1 for a, b in zip(reference, distances) if abs(a - b) > 1e-6
            )
            assert mismatches == 0, f"{name} disagrees on {mismatches} legs"
        print(
            f"{name:<12} {build_seconds:>10.3f} "
            f"{statistics.fmean(update_times):>21.4f} "
            f"{statistics.fmean(serve_times):>23.4f}"
        )

    print("\nAll methods return identical distances; the labeled indexes trade a")
    print("one-off build and small per-round maintenance for a much cheaper OD sweep.")


if __name__ == "__main__":
    main()
