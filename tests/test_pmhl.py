"""Unit and integration tests for the PMHL index (the paper's Section V)."""

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.core.pmhl import PMHLIndex
from repro.core.stages import PMHLQueryStage
from repro.exceptions import IndexNotBuiltError, VertexNotFoundError
from repro.graph.generators import grid_road_network, highway_network
from repro.graph.updates import generate_update_batch, generate_update_stream

from tests.conftest import random_query_pairs


def build_pmhl(graph, k=4, seed=0):
    index = PMHLIndex(graph, num_partitions=k, seed=seed)
    index.build()
    return index


class TestPMHLConstruction:
    def test_not_built_raises(self):
        graph = grid_road_network(5, 5, seed=0)
        with pytest.raises(IndexNotBuiltError):
            PMHLIndex(graph).query(0, 1)

    def test_unknown_vertex(self):
        graph = grid_road_network(5, 5, seed=0)
        index = build_pmhl(graph)
        with pytest.raises(VertexNotFoundError):
            index.query(0, 999)

    def test_build_breakdown_and_size(self):
        graph = grid_road_network(6, 6, seed=1)
        index = build_pmhl(graph)
        assert set(index.build_breakdown) == {
            "partitioning_and_ordering",
            "no_boundary",
            "post_boundary",
            "cross_boundary",
        }
        assert index.index_size() > 0
        assert index.build_seconds > 0.0

    def test_stage_catalog_order(self):
        graph = grid_road_network(5, 5, seed=2)
        index = build_pmhl(graph)
        catalog = index.stage_catalog()
        assert [entry["query_stage"] for entry in catalog] == list(PMHLQueryStage)


class TestPMHLQueryStages:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_stages_match_dijkstra(self, seed):
        graph = grid_road_network(8, 8, seed=seed)
        index = build_pmhl(graph, k=4, seed=seed)
        pairs = random_query_pairs(graph, 30, seed=seed)
        for s, t in pairs:
            expected = dijkstra_distance(graph, s, t)
            for stage in PMHLQueryStage:
                assert index.query_at_stage(s, t, stage) == pytest.approx(expected), (
                    s,
                    t,
                    stage,
                )

    def test_highway_network_cross_partition_queries(self):
        graph = highway_network(clusters=4, cluster_size=20, seed=3)
        index = build_pmhl(graph, k=4, seed=3)
        pairs = random_query_pairs(graph, 30, seed=3)
        for s, t in pairs:
            assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_same_partition_queries_each_stage(self):
        graph = grid_road_network(8, 8, seed=4)
        index = build_pmhl(graph, k=4, seed=4)
        partitioning = index.partitioning
        for pid in range(partitioning.num_partitions):
            members = partitioning.partition_vertices(pid)
            for s in members[:3]:
                for t in members[-3:]:
                    expected = dijkstra_distance(graph, s, t)
                    for stage in PMHLQueryStage:
                        assert index.query_at_stage(s, t, stage) == pytest.approx(expected)


class TestPMHLMaintenance:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_stages_correct_after_batch(self, seed):
        graph = grid_road_network(7, 7, seed=seed)
        index = build_pmhl(graph, k=4, seed=seed)
        batch = generate_update_batch(graph, volume=12, seed=seed)
        report = index.apply_batch(batch)
        names = [s.name for s in report.stages]
        assert names == [
            "edge_update",
            "partition_shortcut_update",
            "overlay_shortcut_update",
            "partition_label_update",
            "overlay_label_update",
            "post_boundary_update",
            "cross_boundary_update",
        ]
        for s, t in random_query_pairs(graph, 25, seed=seed):
            expected = dijkstra_distance(graph, s, t)
            for stage in PMHLQueryStage:
                assert index.query_at_stage(s, t, stage) == pytest.approx(expected), (
                    s,
                    t,
                    stage,
                )

    def test_update_stream_stays_correct(self):
        graph = grid_road_network(6, 6, seed=5)
        index = build_pmhl(graph, k=4, seed=5)
        for batch in generate_update_stream(graph, num_batches=3, volume=8, seed=5):
            index.apply_batch(batch)
            for s, t in random_query_pairs(graph, 15, seed=5):
                expected = dijkstra_distance(graph, s, t)
                assert index.query_cross_boundary(s, t) == pytest.approx(expected)
                assert index.query_post_boundary(s, t) == pytest.approx(expected)

    def test_decrease_only_batch(self):
        graph = grid_road_network(6, 6, seed=6)
        index = build_pmhl(graph, k=4, seed=6)
        batch = generate_update_batch(graph, volume=10, seed=6, decrease_fraction=1.0)
        index.apply_batch(batch)
        for s, t in random_query_pairs(graph, 20, seed=6):
            assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_increase_only_batch(self):
        graph = grid_road_network(6, 6, seed=7)
        index = build_pmhl(graph, k=4, seed=7)
        batch = generate_update_batch(graph, volume=10, seed=7, decrease_fraction=0.0)
        index.apply_batch(batch)
        for s, t in random_query_pairs(graph, 20, seed=7):
            assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_parallel_times_recorded(self):
        graph = grid_road_network(7, 7, seed=8)
        index = build_pmhl(graph, k=4, seed=8)
        report = index.apply_batch(generate_update_batch(graph, volume=10, seed=8))
        by_name = {s.name: s for s in report.stages}
        assert by_name["partition_shortcut_update"].parallel_times is not None
        assert by_name["post_boundary_update"].parallel_times is not None
        assert by_name["cross_boundary_update"].parallel_times is not None
