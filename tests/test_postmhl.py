"""Unit and integration tests for the PostMHL index (the paper's Section VI)."""

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.core.postmhl import PostMHLIndex
from repro.core.stages import PostMHLQueryStage
from repro.exceptions import IndexNotBuiltError, VertexNotFoundError
from repro.graph.generators import grid_road_network, highway_network
from repro.graph.updates import generate_update_batch, generate_update_stream

from tests.conftest import random_query_pairs


def build_postmhl(graph, bandwidth=12, ke=4):
    index = PostMHLIndex(graph, bandwidth=bandwidth, expected_partitions=ke)
    index.build()
    return index


class TestPostMHLConstruction:
    def test_not_built_raises(self):
        graph = grid_road_network(5, 5, seed=0)
        with pytest.raises(IndexNotBuiltError):
            PostMHLIndex(graph).query(0, 1)

    def test_unknown_vertex(self):
        graph = grid_road_network(5, 5, seed=0)
        index = build_postmhl(graph)
        with pytest.raises(VertexNotFoundError):
            index.query(0, 999)

    def test_partitions_created_on_reasonable_inputs(self):
        graph = grid_road_network(10, 10, seed=1)
        index = build_postmhl(graph, bandwidth=14, ke=4)
        assert index.td.num_partitions >= 1
        assert index.td.validate() == []
        assert index.overlay_vertex_count < graph.num_vertices

    def test_boundary_arrays_match_global_distances(self):
        graph = grid_road_network(8, 8, seed=2)
        index = build_postmhl(graph, bandwidth=12, ke=4)
        for pid in range(index.td.num_partitions):
            boundary = index.td.boundary[pid]
            for v in index.td.partition_vertices[pid][:5]:
                for j, b in enumerate(boundary):
                    assert index.disB[v][j] == pytest.approx(
                        dijkstra_distance(graph, v, b)
                    )

    def test_index_size_larger_than_h2h_labels(self):
        graph = grid_road_network(7, 7, seed=3)
        index = build_postmhl(graph)
        assert index.index_size() > index.labels.label_entry_count()

    def test_degenerate_no_partitions(self):
        """Impossible TD-partitioning constraints degrade PostMHL to plain H2H."""
        graph = grid_road_network(5, 5, seed=4)
        index = PostMHLIndex(graph, bandwidth=1, expected_partitions=2,
                             beta_lower=0.99, beta_upper=1.0)
        index.build()
        assert index.td.num_partitions == 0
        for s, t in random_query_pairs(graph, 15, seed=4):
            expected = dijkstra_distance(graph, s, t)
            for stage in PostMHLQueryStage:
                assert index.query_at_stage(s, t, stage) == pytest.approx(expected)


class TestPostMHLQueryStages:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_stages_match_dijkstra(self, seed):
        graph = grid_road_network(8, 8, seed=seed)
        index = build_postmhl(graph, bandwidth=12, ke=4)
        for s, t in random_query_pairs(graph, 30, seed=seed):
            expected = dijkstra_distance(graph, s, t)
            for stage in PostMHLQueryStage:
                assert index.query_at_stage(s, t, stage) == pytest.approx(expected), (
                    s,
                    t,
                    stage,
                )

    def test_highway_network(self):
        graph = highway_network(clusters=4, cluster_size=20, seed=5)
        index = build_postmhl(graph, bandwidth=14, ke=4)
        for s, t in random_query_pairs(graph, 30, seed=5):
            assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_same_partition_post_boundary_queries(self):
        graph = grid_road_network(9, 9, seed=6)
        index = build_postmhl(graph, bandwidth=14, ke=4)
        for pid in range(index.td.num_partitions):
            members = index.td.partition_vertices[pid]
            for s in members[:4]:
                for t in members[-4:]:
                    assert index.query_post_boundary(s, t) == pytest.approx(
                        dijkstra_distance(graph, s, t)
                    )

    def test_overlay_to_partition_queries(self):
        graph = grid_road_network(8, 8, seed=7)
        index = build_postmhl(graph, bandwidth=12, ke=4)
        if index.td.num_partitions == 0:
            pytest.skip("no partitions produced on this input")
        overlay = sorted(index.td.overlay_vertices)[:5]
        inner = index.td.partition_vertices[0][:5]
        for s in overlay:
            for t in inner:
                assert index.query_post_boundary(s, t) == pytest.approx(
                    dijkstra_distance(graph, s, t)
                )


class TestPostMHLMaintenance:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_stages_correct_after_batch(self, seed):
        graph = grid_road_network(8, 8, seed=seed)
        index = build_postmhl(graph, bandwidth=12, ke=4)
        batch = generate_update_batch(graph, volume=15, seed=seed)
        report = index.apply_batch(batch)
        names = [s.name for s in report.stages]
        assert names == [
            "edge_update",
            "partition_shortcut_update",
            "overlay_shortcut_update",
            "overlay_label_update",
            "post_boundary_update",
            "cross_boundary_update",
        ]
        for s, t in random_query_pairs(graph, 25, seed=seed):
            expected = dijkstra_distance(graph, s, t)
            for stage in PostMHLQueryStage:
                assert index.query_at_stage(s, t, stage) == pytest.approx(expected), (
                    s,
                    t,
                    stage,
                )

    def test_labels_match_rebuild_after_update(self):
        graph = grid_road_network(7, 7, seed=8)
        index = build_postmhl(graph, bandwidth=12, ke=4)
        batch = generate_update_batch(graph, volume=12, seed=8)
        index.apply_batch(batch)

        from repro.labeling.h2h import H2HIndex

        rebuilt = H2HIndex(graph, order=list(index.contraction.order))
        rebuilt.build()
        for v in index.contraction.order:
            assert index.labels.dis[v] == pytest.approx(rebuilt.labels.dis[v])

    def test_update_stream_stays_correct(self):
        graph = grid_road_network(7, 7, seed=9)
        index = build_postmhl(graph, bandwidth=12, ke=4)
        for batch in generate_update_stream(graph, num_batches=3, volume=10, seed=9):
            index.apply_batch(batch)
            for s, t in random_query_pairs(graph, 15, seed=9):
                expected = dijkstra_distance(graph, s, t)
                assert index.query_cross_boundary(s, t) == pytest.approx(expected)
                assert index.query_post_boundary(s, t) == pytest.approx(expected)

    def test_decrease_and_increase_only(self):
        for fraction in (0.0, 1.0):
            graph = grid_road_network(6, 6, seed=10)
            index = build_postmhl(graph, bandwidth=10, ke=4)
            batch = generate_update_batch(graph, volume=10, seed=10,
                                          decrease_fraction=fraction)
            index.apply_batch(batch)
            for s, t in random_query_pairs(graph, 15, seed=10):
                assert index.query(s, t) == pytest.approx(
                    dijkstra_distance(graph, s, t)
                )

    def test_boundary_arrays_fresh_after_update(self):
        graph = grid_road_network(8, 8, seed=11)
        index = build_postmhl(graph, bandwidth=12, ke=4)
        batch = generate_update_batch(graph, volume=15, seed=11)
        index.apply_batch(batch)
        for pid in range(index.td.num_partitions):
            boundary = index.td.boundary[pid]
            for v in index.td.partition_vertices[pid][:4]:
                for j, b in enumerate(boundary):
                    assert index.disB[v][j] == pytest.approx(
                        dijkstra_distance(graph, v, b)
                    )
