"""Integration tests for the experiment drivers (quick configurations)."""

import pytest

from repro.experiments import EXPERIMENTS, format_table
from repro.experiments.ablations import cross_boundary_ablation_rows, multistage_ablation_rows
from repro.experiments.config import DEFAULT_CONFIG
from repro.experiments.datasets import table1_rows
from repro.experiments.exp1_partition_number import partition_number_rows
from repro.experiments.exp2_index_performance import index_performance_rows
from repro.experiments.exp3_throughput import throughput_rows
from repro.experiments.exp4_qps_evolution import qps_evolution_rows
from repro.experiments.exp6_threads import thread_sweep_rows
from repro.experiments.exp7_ke import ke_sweep_rows
from repro.experiments.exp8_bandwidth import bandwidth_sweep_rows
from repro.graph.generators import load_dataset
from repro.registry import create_index, experiment_methods, spec_from_config

QUICK = DEFAULT_CONFIG.quick()


class TestMethodRegistry:
    def test_all_methods_buildable_on_tiny_dataset(self):
        graph = load_dataset("NY")
        for name in experiment_methods():
            index = create_index(spec_from_config(name, QUICK), graph.copy())
            assert index.name == name

    def test_unknown_method(self):
        graph = load_dataset("NY")
        with pytest.raises(ValueError):
            create_index("FancyIndex", graph)

    def test_quick_subset_is_subset(self):
        assert set(experiment_methods(quick=True)) <= set(experiment_methods())


class TestTable1:
    def test_rows_have_expected_columns(self):
        rows = table1_rows(QUICK, ["NY", "GD"])
        assert len(rows) == 2
        assert rows[0]["dataset"] == "NY"
        assert rows[0]["paper_|V|"] == 264_346
        assert rows[0]["analog_|V|"] > 0
        # Analog sizes preserve the paper's size ordering.
        assert rows[0]["analog_|V|"] <= rows[1]["analog_|V|"]

    def test_format_table_renders(self):
        text = format_table(table1_rows(QUICK, ["NY"]))
        assert "dataset" in text and "NY" in text


class TestExperimentShapes:
    """Each driver produces rows with the columns the paper's artefact needs."""

    def test_exp1_partition_number(self):
        rows = partition_number_rows("NY", [2, 4], QUICK)
        assert {row["k"] for row in rows} == {2, 4}
        for row in rows:
            assert row["boundary_vertices"] > 0
            assert row["throughput"] >= 0

    def test_exp2_index_performance(self):
        rows = index_performance_rows(["NY"], ["BiDijkstra", "DH2H", "PostMHL"], QUICK)
        assert len(rows) == 3
        by_method = {row["method"]: row for row in rows}
        # Hop-based queries must be faster than index-free search.
        assert by_method["DH2H"]["query_seconds"] < by_method["BiDijkstra"]["query_seconds"]
        assert by_method["PostMHL"]["index_size"] > 0
        # BiDijkstra has no index.
        assert by_method["BiDijkstra"]["index_size"] == 0

    def test_exp3_throughput_shape(self):
        rows = throughput_rows(["NY"], ["BiDijkstra", "DH2H", "PMHL", "PostMHL"], QUICK)
        by_method = {row["method"]: row["throughput"] for row in rows}
        # The paper's headline shape: the proposed methods beat the baselines.
        best_proposed = max(by_method["PMHL"], by_method["PostMHL"])
        assert best_proposed >= by_method["BiDijkstra"]
        assert best_proposed >= by_method["DH2H"] * 0.5

    def test_exp4_qps_evolution(self):
        rows = qps_evolution_rows("NY", ["DH2H", "PostMHL"], QUICK, num_points=5)
        methods = {row["method"] for row in rows}
        assert methods == {"DH2H", "PostMHL"}
        for method in methods:
            series = [r["queries_per_second"] for r in rows if r["method"] == method]
            assert len(series) == 5
            assert all(q > 0 for q in series)
            # QPS never decreases during the interval.
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_exp6_threads(self):
        rows = thread_sweep_rows("NY", methods=("PostMHL",), config=QUICK)
        speedups = [row["update_speedup"] for row in rows]
        assert speedups[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_exp7_ke(self):
        rows = ke_sweep_rows("NY", [2, 4], QUICK)
        assert {row["ke"] for row in rows} == {2, 4}
        for row in rows:
            assert row["overlay_vertices"] > 0

    def test_exp8_bandwidth(self):
        rows = bandwidth_sweep_rows("NY", [10, 16], QUICK)
        assert len(rows) == 2
        small_tau, large_tau = rows[0], rows[1]
        # Larger bandwidth admits more/larger subtrees -> overlay not larger.
        assert large_tau["overlay_vertices"] <= small_tau["overlay_vertices"] * 1.5

    def test_exp9_live_serving(self):
        from repro.experiments.exp9_live_serving import live_serving_rows

        rows = live_serving_rows(
            "NY", ["BiDijkstra", "PostMHL"], QUICK, duration_seconds=0.4, num_batches=1
        )
        by_method = {row["method"]: row for row in rows}
        assert set(by_method) == {"BiDijkstra", "PostMHL"}
        for row in rows:
            # The acceptance pair: a measured figure next to the analytic bound.
            assert row["measured_qps"] > 0
            assert row["analytic_max_throughput"] >= 0
            assert row["batches_applied"] == 1
            assert row["p95_ms"] >= row["p50_ms"]

    def test_ablation_cross_boundary(self):
        rows = cross_boundary_ablation_rows("NY", QUICK)
        by_stage = {row["query_stage"]: row["mean_query_seconds"] for row in rows}
        assert by_stage["cross_boundary (2-hop)"] < by_stage["no_boundary (concatenation)"]

    def test_ablation_multistage(self):
        rows = multistage_ablation_rows("NY", QUICK)
        assert len(rows) == 2
        multi, single = rows
        assert multi["throughput"] > 0 and single["throughput"] > 0
        # On the tiny quick dataset the update window is a small fraction of δt,
        # so the two variants are close; the multi-stage one must not collapse.
        # (The deterministic version of this comparison lives in
        # tests/test_throughput.py::test_faster_final_stage_increases_throughput.)
        assert multi["throughput"] >= single["throughput"] * 0.5

    def test_registry_contains_all_experiments(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "exp1",
            "exp2",
            "exp3",
            "exp4",
            "exp5",
            "exp6",
            "exp7",
            "exp8",
            "exp9",
            "ablations",
        }
        for module in EXPERIMENTS.values():
            assert hasattr(module, "run")


class TestOrderingAblationAndCLI:
    def test_ablation_ordering_shape(self):
        from repro.experiments.ablations import ordering_ablation_rows

        rows = ordering_ablation_rows("NY", QUICK)
        assert len(rows) == 2
        by_order = {row["vertex_order"]: row for row in rows}
        mde = by_order["MDE order (PostMHL / DH2H)"]
        boundary_first = by_order["boundary-first order (PMHL / PSP baselines)"]
        # The partition-imposed order never yields a smaller canonical index
        # (Theorem 1), and typically a taller tree.
        assert boundary_first["label_entries"] >= mde["label_entries"]
        assert boundary_first["tree_height"] >= mde["tree_height"]

    def test_cli_list_and_table1(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "exp3" in output and "ablations" in output

        csv_path = tmp_path / "rows.csv"
        assert main(["table1", "--quick", "--output", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert csv_path.exists()
        assert "dataset" in csv_path.read_text().splitlines()[0]

    def test_cli_unknown_experiment(self):
        import pytest as _pytest

        from repro.experiments.cli import main

        with _pytest.raises(SystemExit):
            main(["does-not-exist"])
