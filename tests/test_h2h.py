"""Unit tests for H2H, DH2H and MHL."""

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.exceptions import IndexNotBuiltError
from repro.graph.generators import grid_road_network, random_connected_graph
from repro.graph.updates import UpdateBatch, generate_update_batch, generate_update_stream
from repro.labeling.h2h import DH2HIndex, H2HIndex
from repro.labeling.mhl import MHLIndex, MHLQueryStage

from tests.conftest import paper_example_graph, random_query_pairs


def assert_matches_dijkstra(query_fn, graph, pairs):
    for s, t in pairs:
        assert query_fn(s, t) == pytest.approx(dijkstra_distance(graph, s, t)), (s, t)


class TestH2HConstruction:
    def test_not_built_raises(self):
        index = H2HIndex(paper_example_graph())
        with pytest.raises(IndexNotBuiltError):
            index.query(0, 1)

    def test_example_graph_all_pairs(self):
        graph = paper_example_graph()
        index = H2HIndex(graph)
        index.build()
        pairs = [(s, t) for s in graph.vertices() for t in graph.vertices()]
        assert_matches_dijkstra(index.query, graph, pairs)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_grid_correct(self, seed):
        graph = grid_road_network(7, 7, seed=seed)
        index = H2HIndex(graph)
        index.build()
        assert_matches_dijkstra(index.query, graph, random_query_pairs(graph, 40, seed=seed))

    def test_random_graph_correct(self):
        graph = random_connected_graph(50, 60, seed=13)
        index = H2HIndex(graph)
        index.build()
        assert_matches_dijkstra(index.query, graph, random_query_pairs(graph, 40, seed=13))

    def test_label_invariants(self):
        graph = grid_road_network(6, 6, seed=3)
        index = H2HIndex(graph)
        index.build()
        labels = index.labels
        tree = index.tree
        for v in tree.top_down_order():
            assert len(labels.dis[v]) == tree.depth[v] + 1
            assert labels.dis[v][-1] == 0.0
            # Distance entries are true shortest distances to ancestors.
            for j, ancestor in enumerate(tree.ancestors[v]):
                assert labels.dis[v][j] == pytest.approx(
                    dijkstra_distance(graph, v, ancestor)
                )

    def test_index_size_and_metadata(self):
        graph = grid_road_network(5, 5, seed=0)
        index = H2HIndex(graph)
        index.build()
        assert index.index_size() > 0
        assert index.tree_height >= 1
        assert index.treewidth >= 1

    def test_static_h2h_rejects_updates(self):
        graph = grid_road_network(4, 4, seed=0)
        index = H2HIndex(graph)
        index.build()
        with pytest.raises(NotImplementedError):
            index.apply_batch(generate_update_batch(graph, volume=2, seed=0))


class TestDH2HMaintenance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_queries_correct_after_batch(self, seed):
        graph = grid_road_network(7, 7, seed=seed)
        index = DH2HIndex(graph)
        index.build()
        batch = generate_update_batch(graph, volume=15, seed=seed)
        report = index.apply_batch(batch)
        assert [s.name for s in report.stages] == [
            "edge_update",
            "shortcut_update",
            "label_update",
        ]
        assert_matches_dijkstra(index.query, graph, random_query_pairs(graph, 40, seed=seed))

    def test_update_stream_stays_correct(self):
        graph = grid_road_network(6, 6, seed=8)
        index = DH2HIndex(graph)
        index.build()
        for batch in generate_update_stream(graph, num_batches=4, volume=8, seed=8):
            index.apply_batch(batch)
            assert_matches_dijkstra(index.query, graph, random_query_pairs(graph, 20, seed=8))

    def test_labels_match_rebuild_after_update(self):
        graph = grid_road_network(6, 6, seed=9)
        index = DH2HIndex(graph)
        index.build()
        order = list(index.contraction.order)
        batch = generate_update_batch(graph, volume=10, seed=9)
        index.apply_batch(batch)

        rebuilt = H2HIndex(graph, order=order)
        rebuilt.build()
        for v in order:
            assert index.labels.dis[v] == pytest.approx(rebuilt.labels.dis[v])

    def test_empty_batch(self):
        graph = grid_road_network(5, 5, seed=1)
        index = DH2HIndex(graph)
        index.build()
        report = index.apply_batch(UpdateBatch([]))
        assert report.total_seconds >= 0.0
        assert index.last_changed_labels == set()


class TestMHL:
    def test_all_stages_agree_with_dijkstra(self):
        graph = grid_road_network(6, 6, seed=12)
        index = MHLIndex(graph)
        index.build()
        pairs = random_query_pairs(graph, 25, seed=12)
        assert_matches_dijkstra(index.query_bidijkstra, graph, pairs)
        assert_matches_dijkstra(index.query_ch, graph, pairs)
        assert_matches_dijkstra(index.query_h2h, graph, pairs)

    def test_stage_dispatch(self):
        graph = grid_road_network(5, 5, seed=2)
        index = MHLIndex(graph)
        index.build()
        for stage in MHLQueryStage:
            assert index.query_at_stage(0, 24, stage) == pytest.approx(
                dijkstra_distance(graph, 0, 24)
            )

    def test_stages_after_update(self):
        graph = grid_road_network(6, 6, seed=14)
        index = MHLIndex(graph)
        index.build()
        batch = generate_update_batch(graph, volume=12, seed=14)
        index.apply_batch(batch)
        pairs = random_query_pairs(graph, 25, seed=14)
        for stage in MHLQueryStage:
            for s, t in pairs:
                assert index.query_at_stage(s, t, stage) == pytest.approx(
                    dijkstra_distance(graph, s, t)
                )

    def test_stage_catalog_structure(self):
        graph = grid_road_network(4, 4, seed=0)
        index = MHLIndex(graph)
        index.build()
        catalog = index.stage_catalog()
        assert [entry["released_after"] for entry in catalog] == [
            "edge_update",
            "shortcut_update",
            "label_update",
        ]
        assert [entry["query_stage"] for entry in catalog] == list(index.query_stage_order)
