"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.dijkstra import bidijkstra, dijkstra, dijkstra_distance
from repro.graph.generators import grid_road_network, random_connected_graph
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, generate_update_batch
from repro.hierarchy.ch import CHIndex
from repro.labeling.h2h import H2HIndex
from repro.partitioning.bfs_grow import bfs_partition
from repro.throughput.parallel import lpt_makespan
from repro.throughput.qos import qos_constrained_rate
from repro.treedec.mde import contract_graph, update_shortcuts_bottom_up
from repro.treedec.tree import TreeDecomposition

# Building indexes inside hypothesis examples is deliberate: suppress the
# slow-example health check and keep example counts small.
INDEX_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

graph_params = st.tuples(
    st.integers(min_value=5, max_value=30),   # number of vertices
    st.integers(min_value=0, max_value=25),   # extra edges
    st.integers(min_value=0, max_value=10_000),  # seed
)


def make_graph(params) -> Graph:
    n, extra, seed = params
    return random_connected_graph(n, extra, seed=seed)


class TestGraphProperties:
    @given(graph_params)
    @INDEX_SETTINGS
    def test_random_connected_graph_is_connected(self, params):
        graph = make_graph(params)
        assert graph.is_connected()
        assert graph.num_vertices == params[0]

    @given(graph_params)
    @INDEX_SETTINGS
    def test_edge_symmetry(self, params):
        graph = make_graph(params)
        for u, v, w in graph.edges():
            assert graph.edge_weight(v, u) == w
            assert v in graph.neighbors(u)
            assert u in graph.neighbors(v)

    @given(graph_params, st.integers(min_value=0, max_value=100))
    @INDEX_SETTINGS
    def test_subgraph_never_gains_edges(self, params, subset_seed):
        graph = make_graph(params)
        vertices = sorted(graph.vertices())
        keep = vertices[: max(1, len(vertices) // 2)]
        sub = graph.subgraph(keep)
        assert sub.num_edges <= graph.num_edges
        for u, v, w in sub.edges():
            assert graph.edge_weight(u, v) == w


class TestSearchProperties:
    @given(graph_params)
    @INDEX_SETTINGS
    def test_dijkstra_triangle_inequality(self, params):
        graph = make_graph(params)
        vertices = sorted(graph.vertices())
        source = vertices[0]
        dist = dijkstra(graph, source)
        for u, v, w in graph.edges():
            assert dist[u] <= dist[v] + w + 1e-9
            assert dist[v] <= dist[u] + w + 1e-9

    @given(graph_params)
    @INDEX_SETTINGS
    def test_bidijkstra_symmetry_and_agreement(self, params):
        graph = make_graph(params)
        vertices = sorted(graph.vertices())
        s, t = vertices[0], vertices[-1]
        forward = bidijkstra(graph, s, t)
        backward = bidijkstra(graph, t, s)
        assert forward == pytest.approx(backward)
        assert forward == pytest.approx(dijkstra_distance(graph, s, t))


class TestContractionProperties:
    @given(graph_params)
    @INDEX_SETTINGS
    def test_shortcut_values_dominate_distances(self, params):
        """Every shortcut is at least the true shortest distance between its endpoints."""
        graph = make_graph(params)
        contraction = contract_graph(graph)
        for v in contraction.order:
            dist = dijkstra(graph, v, targets=list(contraction.neighbors[v]))
            for u in contraction.neighbors[v]:
                assert contraction.shortcuts[v][u] >= dist.get(u, math.inf) - 1e-9

    @given(graph_params)
    @INDEX_SETTINGS
    def test_tree_decomposition_covers_edges(self, params):
        """Definition 1 (2): every edge appears inside some tree node."""
        graph = make_graph(params)
        tree = TreeDecomposition.from_contraction(contract_graph(graph))
        for u, v, _ in graph.edges():
            low = u if tree.contraction.rank[u] < tree.contraction.rank[v] else v
            high = v if low == u else u
            assert high in tree.neighbors(low)

    @given(graph_params, st.integers(min_value=1, max_value=8), st.integers(0, 1000))
    @INDEX_SETTINGS
    def test_shortcut_maintenance_equals_rebuild(self, params, volume, seed):
        graph = make_graph(params)
        volume = min(volume, graph.num_edges)
        contraction = contract_graph(graph)
        order = list(contraction.order)
        batch = generate_update_batch(graph, volume, seed=seed)
        batch.apply(graph)
        update_shortcuts_bottom_up(contraction, graph, [u.key() for u in batch])
        rebuilt = contract_graph(graph, order=order)
        for v in order:
            for u in contraction.neighbors[v]:
                assert contraction.shortcuts[v][u] == pytest.approx(rebuilt.shortcuts[v][u])


class TestIndexProperties:
    @given(graph_params)
    @INDEX_SETTINGS
    def test_ch_and_h2h_agree_with_dijkstra(self, params):
        graph = make_graph(params)
        ch = CHIndex(graph)
        ch.build()
        h2h = H2HIndex(graph)
        h2h.build()
        vertices = sorted(graph.vertices())
        probes = [(vertices[0], vertices[-1]), (vertices[len(vertices) // 2], vertices[0])]
        for s, t in probes:
            expected = dijkstra_distance(graph, s, t)
            assert ch.query(s, t) == pytest.approx(expected)
            assert h2h.query(s, t) == pytest.approx(expected)

    @given(graph_params)
    @INDEX_SETTINGS
    def test_two_hop_cover_property(self, params):
        """H2H labels satisfy the 2-hop cover property of Section II-B."""
        graph = make_graph(params)
        index = H2HIndex(graph)
        index.build()
        labels, tree = index.labels, index.tree
        vertices = sorted(graph.vertices())
        s, t = vertices[0], vertices[-1]
        lca = tree.lca(s, t)
        expected = dijkstra_distance(graph, s, t)
        candidates = [
            labels.dis[s][i] + labels.dis[t][i] for i in labels.pos[lca]
        ]
        assert min(candidates) == pytest.approx(expected)
        assert all(c >= expected - 1e-9 for c in candidates)


class TestUpdateBatchProperties:
    @given(graph_params, st.integers(min_value=0, max_value=8), st.integers(0, 500))
    @INDEX_SETTINGS
    def test_apply_then_revert_is_identity(self, params, volume, seed):
        graph = make_graph(params)
        volume = min(volume, graph.num_edges)
        before = sorted(graph.edges())
        batch = generate_update_batch(graph, volume, seed=seed)
        batch.apply(graph)
        batch.revert(graph)
        assert sorted(graph.edges()) == pytest.approx(before)

    @given(st.floats(min_value=0.1, max_value=100.0), st.floats(min_value=1.1, max_value=4.0))
    @settings(max_examples=50, deadline=None)
    def test_increase_decrease_classification(self, weight, factor):
        increase = EdgeUpdate(0, 1, weight, weight * factor)
        decrease = EdgeUpdate(0, 1, weight, weight / factor)
        assert increase.is_increase and not increase.is_decrease
        assert decrease.is_decrease and not decrease.is_increase


class TestPartitioningProperties:
    @given(
        st.integers(min_value=4, max_value=9),
        st.integers(min_value=4, max_value=9),
        st.integers(min_value=1, max_value=6),
        st.integers(0, 1000),
    )
    @INDEX_SETTINGS
    def test_bfs_partition_invariants(self, rows, cols, k, seed):
        graph = grid_road_network(rows, cols, seed=seed)
        k = min(k, graph.num_vertices)
        partitioning = bfs_partition(graph, k, seed=seed)
        assert partitioning.num_partitions == k
        assert sum(partitioning.sizes()) == graph.num_vertices
        for pid in range(k):
            for b in partitioning.boundary(pid):
                assert any(
                    partitioning.partition_of(u) != pid for u in graph.neighbors(b)
                )


class TestThroughputProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=0, max_size=20),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_lpt_bounds(self, times, workers):
        makespan = lpt_makespan(times, workers)
        total = sum(t for t in times if t > 0)
        longest = max((t for t in times if t > 0), default=0.0)
        assert makespan <= total + 1e-9
        assert makespan >= longest - 1e-9
        assert makespan >= total / workers - 1e-9

    @given(
        st.floats(min_value=1e-6, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.1),
        st.floats(min_value=1e-3, max_value=5.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_qos_rate_nonnegative_and_stable(self, mean, variance, qos):
        rate = qos_constrained_rate(mean, variance, qos)
        assert rate >= 0.0
        if rate > 0:
            # The computed rate never exceeds the stability limit.
            assert rate * mean <= 1.0 + 1e-6
