"""Unit tests for Contraction Hierarchies and Dynamic CH."""

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.exceptions import IndexNotBuiltError, VertexNotFoundError
from repro.graph.generators import grid_road_network, random_connected_graph
from repro.graph.updates import generate_update_batch, generate_update_stream
from repro.hierarchy.ch import CHIndex, DCHIndex

from tests.conftest import paper_example_graph, random_query_pairs


def assert_matches_dijkstra(index, graph, pairs):
    for s, t in pairs:
        assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t)), (s, t)


class TestCHQuery:
    def test_not_built_raises(self):
        index = CHIndex(paper_example_graph())
        with pytest.raises(IndexNotBuiltError):
            index.query(0, 1)

    def test_unknown_vertex_raises(self):
        graph = paper_example_graph()
        index = CHIndex(graph)
        index.build()
        with pytest.raises(VertexNotFoundError):
            index.query(0, 999)

    def test_example_graph_correct(self):
        graph = paper_example_graph()
        index = CHIndex(graph)
        index.build()
        pairs = [(s, t) for s in graph.vertices() for t in graph.vertices()]
        assert_matches_dijkstra(index, graph, pairs)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_grid_correct(self, seed):
        graph = grid_road_network(7, 7, seed=seed)
        index = CHIndex(graph)
        index.build()
        assert_matches_dijkstra(index, graph, random_query_pairs(graph, 40, seed=seed))

    def test_random_graph_correct(self):
        graph = random_connected_graph(50, 50, seed=9)
        index = CHIndex(graph)
        index.build()
        assert_matches_dijkstra(index, graph, random_query_pairs(graph, 40, seed=9))

    def test_index_size_positive(self):
        graph = grid_road_network(5, 5, seed=0)
        index = CHIndex(graph)
        index.build()
        assert index.index_size() >= graph.num_edges

    def test_static_ch_rejects_updates(self):
        graph = grid_road_network(4, 4, seed=0)
        index = CHIndex(graph)
        index.build()
        batch = generate_update_batch(graph, volume=2, seed=0)
        with pytest.raises(NotImplementedError):
            index.apply_batch(batch)

    def test_build_records_time(self):
        graph = grid_road_network(5, 5, seed=0)
        index = CHIndex(graph)
        seconds = index.build()
        assert seconds >= 0.0
        assert index.is_built


class TestDCHMaintenance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_queries_correct_after_single_batch(self, seed):
        graph = grid_road_network(7, 7, seed=seed)
        index = DCHIndex(graph)
        index.build()
        batch = generate_update_batch(graph, volume=15, seed=seed)
        report = index.apply_batch(batch)
        assert report.total_seconds >= 0.0
        assert [stage.name for stage in report.stages] == ["edge_update", "shortcut_update"]
        assert_matches_dijkstra(index, graph, random_query_pairs(graph, 40, seed=seed))

    def test_queries_correct_after_update_stream(self):
        graph = grid_road_network(6, 6, seed=4)
        index = DCHIndex(graph)
        index.build()
        for batch in generate_update_stream(graph, num_batches=4, volume=8, seed=4):
            index.apply_batch(batch)
            assert_matches_dijkstra(index, graph, random_query_pairs(graph, 20, seed=4))

    def test_empty_batch_is_noop(self):
        graph = grid_road_network(5, 5, seed=1)
        index = DCHIndex(graph)
        index.build()
        before = {v: dict(d) for v, d in index.contraction.shortcuts.items()}
        from repro.graph.updates import UpdateBatch

        index.apply_batch(UpdateBatch([]))
        assert index.contraction.shortcuts == before

    def test_decrease_then_revert_restores_shortcuts(self):
        graph = grid_road_network(5, 5, seed=2)
        index = DCHIndex(graph)
        index.build()
        before = {v: dict(d) for v, d in index.contraction.shortcuts.items()}
        batch = generate_update_batch(graph, volume=6, seed=2, decrease_fraction=1.0)
        index.apply_batch(batch)
        # Build the reverse batch and apply it.
        from repro.graph.updates import EdgeUpdate, UpdateBatch

        reverse = UpdateBatch(
            [EdgeUpdate(u.u, u.v, u.new_weight, u.old_weight) for u in batch]
        )
        index.apply_batch(reverse)
        for v, shortcuts in before.items():
            for u, value in shortcuts.items():
                assert index.contraction.shortcuts[v][u] == pytest.approx(value)
