"""Tests for the TOAIN and BiDijkstra baselines and the cross-boundary aggregation."""

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.baselines.bidijkstra_index import BiDijkstraIndex
from repro.baselines.toain import TOAINIndex
from repro.core.cross_boundary import (
    build_cross_boundary_index,
    compose_cross_boundary_contraction,
)
from repro.exceptions import IndexNotBuiltError
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_batch
from repro.partitioning.natural_cut import natural_cut_partition
from repro.partitioning.ordering import boundary_first_order
from repro.psp.overlay import OverlayIndex
from repro.psp.partition_family import PartitionIndexFamily

from tests.conftest import random_query_pairs


class TestBiDijkstraIndex:
    def test_query_and_update(self):
        graph = grid_road_network(6, 6, seed=0)
        index = BiDijkstraIndex(graph)
        index.build()
        assert index.index_size() == 0
        batch = generate_update_batch(graph, volume=5, seed=0)
        report = index.apply_batch(batch)
        assert [s.name for s in report.stages] == ["edge_update"]
        for s, t in random_query_pairs(graph, 20, seed=0):
            assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t))


class TestTOAIN:
    def test_invalid_fraction(self):
        graph = grid_road_network(4, 4, seed=0)
        with pytest.raises(ValueError):
            TOAINIndex(graph, checkin_fraction=0.0)

    def test_not_built(self):
        graph = grid_road_network(4, 4, seed=0)
        with pytest.raises(IndexNotBuiltError):
            TOAINIndex(graph).query(0, 1)

    @pytest.mark.parametrize("fraction", [0.1, 0.3, 1.0])
    def test_queries_match_dijkstra(self, fraction):
        graph = grid_road_network(7, 7, seed=1)
        index = TOAINIndex(graph, checkin_fraction=fraction)
        index.build()
        for s, t in random_query_pairs(graph, 30, seed=1):
            assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_queries_after_update(self):
        graph = grid_road_network(6, 6, seed=2)
        index = TOAINIndex(graph, checkin_fraction=0.25)
        index.build()
        report = index.apply_batch(generate_update_batch(graph, volume=10, seed=2))
        assert [s.name for s in report.stages] == [
            "edge_update",
            "shortcut_update",
            "label_rebuild",
        ]
        for s, t in random_query_pairs(graph, 25, seed=2):
            assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_larger_core_means_larger_index(self):
        graph = grid_road_network(6, 6, seed=3)
        small = TOAINIndex(graph.copy(), checkin_fraction=0.1)
        small.build()
        large = TOAINIndex(graph.copy(), checkin_fraction=0.5)
        large.build()
        assert large.index_size() > small.index_size()


class TestCrossBoundaryAggregation:
    def _build_parts(self, graph, k=4, seed=0):
        partitioning = natural_cut_partition(graph, k, seed=seed)
        order = boundary_first_order(graph, partitioning)
        family = PartitionIndexFamily(partitioning, order, with_labels=True)
        family.build()
        overlay = OverlayIndex(partitioning, family, order, with_labels=True)
        overlay.build()
        return partitioning, order, family, overlay

    def test_composed_contraction_covers_all_vertices(self):
        graph = grid_road_network(7, 7, seed=4)
        partitioning, order, family, overlay = self._build_parts(graph)
        composed = compose_cross_boundary_contraction(partitioning, order, family, overlay)
        assert sorted(composed.order) == sorted(graph.vertices())
        boundary = partitioning.all_boundary()
        for v in composed.order:
            source = (
                overlay.contraction
                if v in boundary
                else family.contractions[partitioning.partition_of(v)]
            )
            # Shared by reference: maintenance of the parts keeps L* shortcuts fresh.
            assert composed.shortcuts[v] is source.shortcuts[v]

    def test_cross_boundary_labels_are_global_distances(self):
        graph = grid_road_network(7, 7, seed=5)
        partitioning, order, family, overlay = self._build_parts(graph, seed=5)
        _, tree, labels = build_cross_boundary_index(partitioning, order, family, overlay)
        for s, t in random_query_pairs(graph, 40, seed=5):
            assert labels.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_composed_equals_global_tiered_contraction(self):
        """The aggregation equals a genuine global contraction under the same order."""
        from repro.treedec.mde import contract_graph

        graph = grid_road_network(6, 6, seed=6)
        partitioning, order, family, overlay = self._build_parts(graph, seed=6)
        composed = compose_cross_boundary_contraction(partitioning, order, family, overlay)
        global_contraction = contract_graph(graph, order=order)
        for v in order:
            assert composed.neighbors[v] == global_contraction.neighbors[v]
            for u in composed.neighbors[v]:
                assert composed.shortcuts[v][u] == pytest.approx(
                    global_contraction.shortcuts[v][u]
                )
