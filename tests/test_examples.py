"""Smoke tests: the example scripts run end to end and print what they promise."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "city_navigation.py",
        "dynamic_traffic_throughput.py",
        "logistics_batch_planning.py",
        "live_serving.py",
    } <= names


def test_quickstart_example():
    output = run_example("quickstart.py")
    assert "PostMHL built" in output
    assert "Dijkstra says" in output
    assert "CROSS_BOUNDARY" in output


def test_city_navigation_example():
    output = run_example("city_navigation.py")
    assert "Q5 cross-boundary" in output
    assert "ms/query" in output


def test_logistics_batch_planning_example():
    output = run_example("logistics_batch_planning.py")
    assert "OD matrix size" in output
    assert "vs scalar" in output
    assert "batch query plane" in output


def test_live_serving_example():
    output = run_example("live_serving.py")
    assert "update batches" in output
    assert "0 mismatches" in output
    assert "answers by query stage" in output


@pytest.mark.slow
def test_dynamic_traffic_throughput_example():
    output = run_example("dynamic_traffic_throughput.py", timeout=420)
    assert "PostMHL vs best baseline throughput" in output
    assert "QPS evolution" in output
