"""Tests for the observability layer: metric registry, histograms, span
tracing, the disabled no-op fast path, and the serving-engine integration
(registry series must agree with the legacy ``ServingMetrics`` snapshot)."""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_batch
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.tracing import Tracer
from repro.registry import create_index
from repro.serving.engine import ServingEngine
from repro.serving.metrics import LatencyHistogram, ServingMetrics
from repro.throughput.workload import sample_query_pairs


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
class TestHistogram:
    def test_boundary_values_land_in_first_bucket(self):
        hist = Histogram(min_value=1e-3, max_value=1.0, buckets_per_decade=10)
        hist.record(1e-3)      # exactly min_value
        hist.record(1e-6)      # far below min_value
        assert hist.bucket_counts()[0] == 2

    def test_overflow_bucket_catches_large_values(self):
        hist = Histogram(min_value=1e-3, max_value=1.0, buckets_per_decade=10)
        hist.record(50.0)
        bounds = hist.bucket_bounds()
        counts = hist.bucket_counts()
        assert bounds[-1] == math.inf
        assert counts[-1] == 1
        assert sum(counts[:-1]) == 0

    def test_bucket_bounds_are_monotone_and_match_counts(self):
        hist = Histogram()
        bounds = hist.bucket_bounds()
        assert len(bounds) == len(hist.bucket_counts())
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_quantile_zero_returns_exact_minimum(self):
        hist = Histogram()
        for value in (0.0042, 0.9, 0.0017):
            hist.record(value)
        assert hist.quantile(0.0) == 0.0017
        assert hist.min == 0.0017

    def test_quantile_one_returns_exact_maximum(self):
        hist = Histogram()
        for value in (0.001, 0.25, 0.033):
            hist.record(value)
        assert hist.quantile(1.0) == 0.25
        assert hist.max == 0.25

    def test_small_quantile_of_single_sample_is_the_sample(self):
        # rank is floored at one sample: empty leading buckets can never
        # satisfy the cumulative test, and q*total < 1 must not round to 0.
        hist = Histogram()
        hist.record(0.5)
        assert hist.quantile(0.01) == 0.5
        assert hist.quantile(0.99) == 0.5

    def test_quantile_is_within_one_bucket(self):
        hist = Histogram(buckets_per_decade=10)
        values = [0.001 * 1.1 ** i for i in range(60)]
        for value in values:
            hist.record(value)
        exact = sorted(values)[int(0.5 * len(values))]
        approx = hist.quantile(0.5)
        assert exact / 1.26 <= approx <= exact * 1.26

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.0) == 0.0
        assert hist.min == 0.0
        assert hist.max == 0.0
        assert hist.mean == 0.0
        snap = hist.snapshot()
        assert snap["count"] == 0.0

    def test_snapshot_exposes_buckets(self):
        hist = Histogram()
        hist.record(0.01)
        snap = hist.snapshot()
        assert snap["bucket_counts"] == hist.bucket_counts()
        assert snap["bucket_bounds"] == hist.bucket_bounds()
        assert sum(snap["bucket_counts"]) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Histogram(min_value=0.0)
        with pytest.raises(ValueError):
            Histogram(min_value=1.0, max_value=0.5)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_observe_is_record(self):
        hist = Histogram()
        hist.observe(0.1)
        assert hist.count == 1


# ----------------------------------------------------------------------
# Counter / Gauge
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_gauge_callback(self):
        gauge = Gauge("g")
        gauge.set_function(lambda: 42)
        assert gauge.value == 42.0
        gauge.set(1)  # set() clears the callback
        assert gauge.value == 1.0

    def test_gauge_callback_error_reads_nan(self):
        gauge = Gauge("g")
        gauge.set_function(lambda: 1 / 0)
        assert math.isnan(gauge.value)


# ----------------------------------------------------------------------
# MetricRegistry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_same_labels_share_one_instance(self):
        registry = MetricRegistry()
        a = registry.counter("hits", "desc", index="PMHL", stage="cache")
        b = registry.counter("hits", stage="cache", index="PMHL")  # order-free
        assert a is b
        c = registry.counter("hits", index="PostMHL", stage="cache")
        assert c is not a

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("metric_x")
        with pytest.raises(ValueError):
            registry.gauge("metric_x")

    def test_get_never_creates(self):
        registry = MetricRegistry()
        assert registry.get("absent") is None
        registry.counter("present", index="A").inc()
        assert registry.get("present", index="A").value == 1.0
        assert registry.get("present", index="B") is None
        assert registry.names() == ["present"]

    def test_to_json_structure(self):
        registry = MetricRegistry()
        registry.counter("reqs", "requests", kind="a").inc(3)
        registry.histogram("lat", "latency").record(0.1)
        tree = registry.to_json()
        assert tree["reqs"]["type"] == "counter"
        assert tree["reqs"]["series"][0]["labels"] == {"kind": "a"}
        assert tree["reqs"]["series"][0]["value"] == 3.0
        assert tree["lat"]["series"][0]["count"] == 1.0
        json.dumps(tree)  # must be JSON-able as-is

    def test_prometheus_text_format(self):
        registry = MetricRegistry()
        registry.counter("repro_reqs_total", "Total requests", method="PMHL").inc(7)
        text = registry.to_prometheus()
        assert "# HELP repro_reqs_total Total requests" in text
        assert "# TYPE repro_reqs_total counter" in text
        assert 'repro_reqs_total{method="PMHL"} 7' in text
        assert text.endswith("\n")

    def test_prometheus_histogram_exposition(self):
        registry = MetricRegistry()
        hist = registry.histogram("lat_seconds", "latency")
        hist.record(0.01)
        hist.record(100.0)  # overflow
        lines = registry.to_prometheus().splitlines()
        buckets = [line for line in lines if line.startswith("lat_seconds_bucket")]
        # cumulative counts are monotone and the +Inf bucket sees everything
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].startswith('lat_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 2
        assert any(line.startswith("lat_seconds_sum") for line in lines)
        assert "lat_seconds_count 2" in lines

    def test_prometheus_label_escaping(self):
        registry = MetricRegistry()
        registry.gauge("g", path='say "hi"\n').set(1)
        text = registry.to_prometheus()
        assert '\\"hi\\"' in text
        assert "\\n" in text

    def test_reset(self):
        registry = MetricRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.names() == []


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", step=1):
                pass
        inner, outer = tracer.events()  # inner completes first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent == "outer" and inner.depth == 1
        assert outer.parent is None and outer.depth == 0
        assert inner.args == {"step": 1}
        assert outer.start <= inner.start and inner.end <= outer.end + 1e-9

    def test_retroactive_record_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("parent"):
            tracer.record("stage", 0.25, stage="repair")
        stage, parent = tracer.events()
        assert stage.parent == "parent"
        assert stage.duration == 0.25
        assert stage.args == {"stage": "repair"}
        assert parent.name == "parent"

    def test_span_durations_feed_registry_histogram(self):
        registry = MetricRegistry()
        tracer = Tracer(registry)
        with tracer.span("work"):
            pass
        tracer.record("work", 0.1)
        hist = registry.get("repro_span_seconds", span="work")
        assert hist is not None and hist.count == 2

    def test_max_events_bounds_trace_not_metrics(self):
        registry = MetricRegistry()
        tracer = Tracer(registry, max_events=2)
        for _ in range(5):
            tracer.record("tick", 0.01)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert registry.get("repro_span_seconds", span="tick").count == 5

    def test_chrome_trace_schema(self, tmp_path):
        tracer = Tracer()
        with tracer.span("build", method="PMHL"):
            tracer.record("build.labels", 0.05)
        trace = tracer.chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        assert {e["name"] for e in meta} >= {"process_name", "thread_name"}
        for event in complete:
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        child = next(e for e in complete if e["name"] == "build.labels")
        assert child["args"]["parent"] == "build"

        path = tracer.export_chrome(str(tmp_path / "trace.json"))
        with open(path) as handle:
            assert json.load(handle)["traceEvents"]

    def test_reset_clears_events(self):
        tracer = Tracer()
        tracer.record("x", 0.1)
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.dropped == 0


# ----------------------------------------------------------------------
# obs module: switch + no-op fast path
# ----------------------------------------------------------------------
class TestObsSwitch:
    def test_disabled_helpers_return_shared_noops(self):
        assert not obs.is_enabled()
        assert obs.span("anything", a=1) is obs.NOOP_SPAN
        assert obs.counter("c") is obs.NOOP_METRIC
        assert obs.gauge("g") is obs.NOOP_METRIC
        assert obs.histogram("h") is obs.NOOP_METRIC

    def test_disabled_records_nothing(self):
        with obs.span("ghost"):
            obs.record_span("ghost.child", 0.5)
            obs.counter("ghost_total").inc()
            obs.histogram("ghost_seconds").record(1.0)
        assert len(obs.tracer()) == 0
        assert obs.registry().names() == []

    def test_noop_metric_accepts_full_interface(self):
        metric = obs.NOOP_METRIC
        metric.inc()
        metric.dec()
        metric.set(3)
        metric.set_function(lambda: 1)
        metric.record(0.5)
        metric.observe(0.5)
        assert metric.value == 0.0

    def test_enabled_helpers_record(self):
        obs.enable()
        assert obs.is_enabled()
        with obs.span("real.work", n=2):
            obs.counter("real_total", "desc").inc()
        assert len(obs.tracer()) == 1
        assert obs.registry().get("real_total").value == 1.0
        assert obs.registry().get("repro_span_seconds", span="real.work").count == 1

    def test_reset_keeps_enabled_flag(self):
        obs.enable()
        obs.counter("x").inc()
        obs.reset()
        assert obs.is_enabled()
        assert obs.registry().names() == []

    def test_peak_rss_bytes(self):
        rss = obs.peak_rss_bytes()
        assert rss is None or rss > 0

    def test_export_prometheus_and_json(self):
        obs.enable()
        obs.counter("repro_demo_total").inc()
        assert "repro_demo_total 1" in obs.export_prometheus()
        assert "repro_demo_total" in obs.export_json()


# ----------------------------------------------------------------------
# Serving metrics: LatencyHistogram + qps window trimming
# ----------------------------------------------------------------------
class TestServingMetrics:
    def test_latency_histogram_snapshot_keys(self):
        hist = LatencyHistogram()
        hist.record(0.002)
        snap = hist.snapshot()
        for key in (
            "count", "mean_seconds", "min_seconds", "p50_seconds",
            "p95_seconds", "p99_seconds", "max_seconds",
            "bucket_bounds", "bucket_counts",
        ):
            assert key in snap
        assert snap["min_seconds"] == 0.002
        assert snap["count"] == 1.0

    def test_qps_counts_within_window(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock, window_seconds=2.0)
        for _ in range(6):
            metrics.record_query("cache", 0.001)
        assert metrics.qps() == pytest.approx(3.0)  # 6 queries / 2 s window

    def test_qps_trims_stale_entries(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock, window_seconds=2.0)
        for _ in range(6):
            metrics.record_query("cache", 0.001)
        clock.advance(10.0)
        assert metrics.qps() == 0.0
        # the stale timestamps were dropped, not just skipped
        assert len(metrics._recent) == 0

    def test_qps_sub_window(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock, window_seconds=2.0)
        metrics.record_query("cache", 0.001)  # t = 0.0
        clock.advance(1.5)
        metrics.record_query("cache", 0.001)  # t = 1.5
        clock.advance(0.1)                    # now 1.6
        assert metrics.qps(window_seconds=0.5) == pytest.approx(1 / 0.5)
        assert metrics.qps(window_seconds=5.0) == pytest.approx(2 / 5.0)

    def test_qps_zero_window(self):
        metrics = ServingMetrics(clock=FakeClock())
        assert metrics.qps(window_seconds=0.0) == 0.0

    def test_snapshot_counts(self):
        metrics = ServingMetrics(clock=FakeClock())
        metrics.record_query("labels", 0.001)
        metrics.record_query("cache", 0.002, from_cache=True)
        metrics.record_shed()
        metrics.record_batch(0.5)
        snap = metrics.snapshot()
        assert snap["queries_served"] == 2
        assert snap["queries_shed"] == 1
        assert snap["cache_hits"] == 1
        assert snap["by_stage"] == {"labels": 1, "cache": 1}
        assert snap["batches_applied"] == 1
        assert snap["maintenance_seconds"] == 0.5


# ----------------------------------------------------------------------
# Integration: instrumented build + serving registry agreement
# ----------------------------------------------------------------------
class TestServingIntegration:
    def test_registry_agrees_with_legacy_snapshot(self):
        obs.enable()
        graph = grid_road_network(6, 6, seed=7)
        index = create_index("PMHL", graph)
        index.build()

        registry = obs.registry()
        builds = registry.get("repro_index_builds_total", index=index.name)
        assert builds is not None and builds.value == 1.0
        span_names = {event.name for event in obs.tracer().events()}
        assert "pmhl.build" in span_names

        with ServingEngine(index, query_threads=2, cache_capacity=64) as engine:
            pairs = list(sample_query_pairs(graph, 30, seed=3))
            engine.query_batch(pairs)
            for source, target in pairs[:10]:  # repeats: some hit the cache
                engine.serve(source, target)
            batch = generate_update_batch(engine.index.graph, volume=5, seed=9)
            engine.submit_batch(batch)
            engine.wait_for_maintenance()
            engine.query_batch(pairs[:8])
            legacy = engine.metrics.snapshot()
            epoch_gauge = registry.get("repro_serving_epoch")
            assert epoch_gauge is not None
            assert epoch_gauge.value == float(engine.current_epoch) == 1.0

        # sum the per-stage series directly from the family tree
        family = registry.to_json()["repro_serving_queries_total"]["series"]
        served = sum(entry["value"] for entry in family)
        assert served == legacy["queries_served"]

        latency = registry.get("repro_serving_latency_seconds")
        assert latency.count == legacy["queries_served"]

        if legacy["cache_hits"]:
            hits = registry.get("repro_serving_cache_hits_total")
            assert hits is not None and hits.value == legacy["cache_hits"]

        batches = registry.get("repro_serving_maintenance_batches_total")
        assert batches.value == legacy["batches_applied"] == 1.0

        span_names = {event.name for event in obs.tracer().events()}
        assert "serving.install_batch" in span_names
        assert "pmhl.apply_batch" in span_names
        assert "serving.serve" in span_names
        assert "serving.serve_batch" in span_names
        # per-stage maintenance spans ride under apply_batch
        assert any(name.startswith("pmhl.apply_batch.") for name in span_names)
        stages = registry.get("repro_kernel_invalidations_total", index=index.name)
        assert stages is None or stages.value >= 1.0

    def test_disabled_engine_records_nothing(self):
        graph = grid_road_network(4, 4, seed=7)
        index = create_index("BiDijkstra", graph)
        index.build()
        with ServingEngine(index, query_threads=1) as engine:
            engine.serve(0, 5)
        assert obs.registry().names() == []
        assert len(obs.tracer()) == 0


# ----------------------------------------------------------------------
# CLI: the `obs` subcommand end-to-end (tiny workload)
# ----------------------------------------------------------------------
class TestObsCli:
    def test_obs_subcommand_writes_metrics_and_trace(self, tmp_path, capsys):
        from repro.experiments.cli import main

        metrics_out = tmp_path / "metrics.prom"
        json_out = tmp_path / "metrics.json"
        trace_out = tmp_path / "trace.json"
        code = main([
            "obs",
            "--methods", "PMHL",
            "--side", "8",
            "--queries", "40",
            "--batches", "1",
            "--batch-size", "5",
            "--metrics-out", str(metrics_out),
            "--json-out", str(json_out),
            "--trace-out", str(trace_out),
        ])
        assert code == 0
        text = metrics_out.read_text()
        assert "repro_serving_queries_total" in text
        assert "repro_index_builds_total" in text
        assert "repro_span_seconds_bucket" in text
        assert "repro_index_builds_total" in json.loads(json_out.read_text())
        trace = json.loads(trace_out.read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert "pmhl.build" in names
        assert "obs_cli.workload" in names
        out = capsys.readouterr().out
        assert "PMHL" in out

    def test_obs_subcommand_rejects_unknown_method(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["obs", "--methods", "NotAMethod"])
