"""Unit tests for the tree decomposition substrate (MDE, tree, LCA)."""

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.exceptions import GraphError
from repro.graph.generators import grid_road_network
from repro.graph.graph import Graph
from repro.graph.updates import generate_update_batch
from repro.treedec.mde import contract_graph, mde_order, update_shortcuts_bottom_up
from repro.treedec.tree import TreeDecomposition

from tests.conftest import paper_example_graph


class TestContraction:
    def test_order_covers_all_vertices(self):
        graph = paper_example_graph()
        result = contract_graph(graph)
        assert sorted(result.order) == sorted(graph.vertices())
        assert all(result.rank[result.order[i]] == i for i in range(len(result.order)))

    def test_neighbors_have_higher_rank(self):
        graph = grid_road_network(6, 6, seed=0)
        result = contract_graph(graph)
        for v in result.order:
            for u in result.neighbors[v]:
                assert result.rank[u] > result.rank[v]

    def test_explicit_order_respected(self):
        graph = paper_example_graph()
        order = sorted(graph.vertices())
        result = contract_graph(graph, order=order)
        assert result.order == order

    def test_explicit_order_must_cover_all(self):
        graph = paper_example_graph()
        with pytest.raises(GraphError):
            contract_graph(graph, order=[0, 1, 2])

    def test_tiered_order_puts_low_tier_first(self):
        graph = grid_road_network(5, 5, seed=1)
        boundary = {0, 4, 20, 24}
        tiers = {v: (1 if v in boundary else 0) for v in graph.vertices()}
        result = contract_graph(graph, tiers=tiers)
        boundary_ranks = [result.rank[v] for v in boundary]
        non_boundary_ranks = [result.rank[v] for v in graph.vertices() if v not in boundary]
        assert min(boundary_ranks) > max(non_boundary_ranks)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            contract_graph(Graph())

    def test_mde_order_is_permutation(self):
        graph = grid_road_network(4, 4, seed=0)
        order = mde_order(graph)
        assert sorted(order) == sorted(graph.vertices())

    def test_shortcut_preserves_distances_between_high_rank_vertices(self):
        """Contracting low vertices must preserve distances among the rest.

        The invariant checked: for every vertex v and higher neighbour u,
        sc(v, u) is the shortest distance between v and u in the subgraph
        induced by v, u and all vertices of rank lower than v... which for the
        top-most vertices means sc equals the true graph distance.
        """
        graph = paper_example_graph()
        result = contract_graph(graph)
        top = result.order[-1]
        second = result.order[-2]
        if top in result.shortcuts[second]:
            assert result.shortcuts[second][top] == pytest.approx(
                dijkstra_distance(graph, second, top)
            )

    def test_supporters_have_lower_rank(self):
        graph = grid_road_network(5, 5, seed=3)
        result = contract_graph(graph)
        for (u, w), supporters in result.supporters.items():
            for x in supporters:
                assert result.rank[x] < result.rank[u]
                assert result.rank[x] < result.rank[w]


class TestShortcutMaintenance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_update_matches_rebuild(self, seed):
        """After a batch update, maintained shortcuts equal rebuilt shortcuts."""
        graph = grid_road_network(6, 6, seed=seed)
        result = contract_graph(graph)
        order = list(result.order)

        batch = generate_update_batch(graph, volume=10, seed=seed)
        batch.apply(graph)
        update_shortcuts_bottom_up(result, graph, [u.key() for u in batch])

        rebuilt = contract_graph(graph, order=order)
        for v in order:
            for u in result.neighbors[v]:
                assert result.shortcuts[v][u] == pytest.approx(rebuilt.shortcuts[v][u])

    def test_update_with_no_changes_reports_nothing(self):
        graph = grid_road_network(4, 4, seed=0)
        result = contract_graph(graph)
        report = update_shortcuts_bottom_up(result, graph, [])
        assert report == {}

    def test_decrease_only_and_increase_only(self):
        for fraction in (0.0, 1.0):
            graph = grid_road_network(5, 5, seed=4)
            result = contract_graph(graph)
            order = list(result.order)
            batch = generate_update_batch(graph, volume=8, seed=4, decrease_fraction=fraction)
            batch.apply(graph)
            update_shortcuts_bottom_up(result, graph, [u.key() for u in batch])
            rebuilt = contract_graph(graph, order=order)
            for v in order:
                for u in result.neighbors[v]:
                    assert result.shortcuts[v][u] == pytest.approx(rebuilt.shortcuts[v][u])


class TestTreeDecomposition:
    def test_tree_structure_invariants(self):
        graph = grid_road_network(6, 6, seed=5)
        result = contract_graph(graph)
        tree = TreeDecomposition.from_contraction(result)

        assert tree.root == result.order[-1]
        assert tree.parent[tree.root] is None
        for v in result.order:
            if v == tree.root:
                continue
            parent = tree.parent[v]
            assert result.rank[parent] > result.rank[v]
            assert parent == min(result.neighbors[v], key=lambda u: result.rank[u])
            assert tree.depth[v] == tree.depth[parent] + 1
            assert tree.ancestors[v][-1] == v
            assert tree.ancestors[v][0] == tree.root

    def test_neighbors_are_proper_ancestors(self):
        """X(v).N must lie on the root-to-v path (the separator property)."""
        graph = grid_road_network(6, 6, seed=6)
        tree = TreeDecomposition.from_contraction(contract_graph(graph))
        for v in tree.top_down_order():
            ancestor_set = set(tree.ancestors[v][:-1])
            for u in tree.neighbors(v):
                assert u in ancestor_set

    def test_orders_are_consistent(self):
        graph = grid_road_network(5, 5, seed=7)
        tree = TreeDecomposition.from_contraction(contract_graph(graph))
        seen = set()
        for v in tree.top_down_order():
            parent = tree.parent[v]
            if parent is not None:
                assert parent in seen
            seen.add(v)
        seen = set()
        for v in tree.bottom_up_order():
            for child in tree.children[v]:
                assert child in seen
            seen.add(v)

    def test_subtree_and_sizes(self):
        graph = grid_road_network(5, 5, seed=8)
        tree = TreeDecomposition.from_contraction(contract_graph(graph))
        sizes = tree.subtree_sizes()
        assert sizes[tree.root] == graph.num_vertices
        for v in tree.top_down_order():
            assert sizes[v] == len(list(tree.subtree(v)))

    def test_lca_matches_naive(self):
        graph = grid_road_network(6, 6, seed=9)
        tree = TreeDecomposition.from_contraction(contract_graph(graph))

        def naive_lca(u, v):
            ancestors_u = tree.ancestors[u]
            ancestors_v = set(tree.ancestors[v])
            for x in reversed(ancestors_u):
                if x in ancestors_v:
                    return x
            raise AssertionError("no common ancestor")

        import random

        rng = random.Random(0)
        vertices = sorted(graph.vertices())
        for _ in range(100):
            u, v = rng.choice(vertices), rng.choice(vertices)
            assert tree.lca(u, v) == naive_lca(u, v)

    def test_branch_roots(self):
        graph = grid_road_network(6, 6, seed=10)
        tree = TreeDecomposition.from_contraction(contract_graph(graph))
        leaves = [v for v in tree.top_down_order() if not tree.children[v]]
        chosen = leaves[:3] + [tree.root]
        roots = tree.branch_roots(chosen)
        assert roots == [tree.root]

    def test_disconnected_graph_rejected(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(2, 3, 1.0)
        with pytest.raises(GraphError):
            TreeDecomposition.from_contraction(contract_graph(graph))

    def test_is_ancestor(self):
        graph = grid_road_network(4, 4, seed=11)
        tree = TreeDecomposition.from_contraction(contract_graph(graph))
        for v in tree.top_down_order():
            for ancestor in tree.ancestors[v]:
                assert tree.is_ancestor(ancestor, v)
            assert tree.is_ancestor(v, v)
