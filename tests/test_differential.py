"""Seeded randomized differential harness: every index vs. the Dijkstra oracle.

Random graphs × random update batches, with every registered method
cross-checked against :func:`repro.algorithms.dijkstra.dijkstra_distance` on
an independently maintained reference copy of the evolving graph.  The cases
are drawn from fixed seeds, and every assertion message carries the full
``(topology, graph_seed, update_seed, round, pair)`` coordinates, so any
failure is reproducible from the report alone::

    graph = random_connected_graph(36, 28, seed=<graph_seed>)
    batch = generate_update_batch(graph, 10, seed=<update_seed>)

The harness also saves/loads one snapshot per case mid-stream, so persistence
is differentially tested under the same random traffic.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.graph.generators import grid_road_network, random_connected_graph
from repro.graph.updates import generate_update_batch
from repro.registry import create_index, get_spec
from repro.store import load_index, save_index
from repro.throughput.workload import sample_query_pairs

#: All nine registered methods with small-graph construction parameters.
NINE_SPECS = {
    "BiDijkstra": get_spec("BiDijkstra"),
    "DCH": get_spec("DCH"),
    "DH2H": get_spec("DH2H"),
    "MHL": get_spec("MHL"),
    "TOAIN": get_spec("TOAIN", checkin_fraction=0.25),
    "N-CH-P": get_spec("N-CH-P", num_partitions=3, seed=0),
    "P-TD-P": get_spec("P-TD-P", num_partitions=3, seed=0),
    "PMHL": get_spec("PMHL", num_partitions=3, seed=0),
    "PostMHL": get_spec("PostMHL", bandwidth=8, expected_partitions=3),
}

#: (topology, graph seed) cases; irregular random graphs plus one road-like grid.
GRAPH_CASES = (
    ("random", 3),
    ("random", 11),
    ("grid", 7),
)

UPDATE_ROUNDS = 2
UPDATE_VOLUME = 10
QUERY_SAMPLE = 25

#: Absolute/relative slack for the oracle comparison: exact distances, but
#: the methods may associate path sums differently than a from-scratch
#: Dijkstra (the documented last-ulp effect, DESIGN.md §6).
REL_TOL = 1e-9


def _make_graph(topology: str, seed: int):
    if topology == "grid":
        return grid_road_network(6, 6, seed=seed)
    return random_connected_graph(36, 28, seed=seed)


def _context(topology, graph_seed, update_seed, round_index, pair):
    return (
        f"repro: topology={topology} graph_seed={graph_seed} "
        f"update_seed={update_seed} round={round_index} pair={pair}"
    )


def _check_against_oracle(index, oracle_graph, pairs, context_fn):
    scalar = [index.query(s, t) for s, t in pairs]
    batch = index.query_many(pairs)
    for pair, got_scalar, got_batch in zip(pairs, scalar, batch):
        expected = dijkstra_distance(oracle_graph, pair[0], pair[1])
        for plane, got in (("scalar", got_scalar), ("batch", got_batch)):
            if expected == math.inf:
                assert got == math.inf, f"{plane} {context_fn(pair)}"
            else:
                assert math.isclose(got, expected, rel_tol=REL_TOL, abs_tol=0.0), (
                    f"{plane}: got {got!r}, oracle {expected!r} — {context_fn(pair)}"
                )


@pytest.mark.parametrize("method", sorted(NINE_SPECS))
@pytest.mark.parametrize(
    "topology,graph_seed", GRAPH_CASES, ids=[f"{t}-{s}" for t, s in GRAPH_CASES]
)
def test_differential_updates(method, topology, graph_seed, tmp_path):
    graph = _make_graph(topology, graph_seed)
    oracle_graph = graph.copy()

    index = create_index(NINE_SPECS[method], graph)
    index.build()
    pairs = list(sample_query_pairs(graph, QUERY_SAMPLE, seed=graph_seed + 1))

    def fresh_context(pair):
        return _context(topology, graph_seed, None, "fresh", pair)

    _check_against_oracle(index, oracle_graph, pairs, fresh_context)

    for round_index in range(UPDATE_ROUNDS):
        update_seed = 100 * graph_seed + round_index
        batch = generate_update_batch(index.graph, UPDATE_VOLUME, seed=update_seed)
        oracle_batch = generate_update_batch(oracle_graph, UPDATE_VOLUME, seed=update_seed)
        index.apply_batch(batch)
        oracle_batch.apply(oracle_graph)

        def round_context(pair, _seed=update_seed, _round=round_index):
            return _context(topology, graph_seed, _seed, _round, pair)

        _check_against_oracle(index, oracle_graph, pairs, round_context)

    # Differential persistence: the post-stream state survives a round trip
    # and keeps matching the oracle bit-for-bit against the live index.
    path = str(tmp_path / "snap")
    save_index(index, path)
    loaded = load_index(path)
    assert index.query_many(pairs) == loaded.query_many(pairs), (
        f"persistence divergence — topology={topology} graph_seed={graph_seed}"
    )

    def loaded_context(pair):
        return _context(topology, graph_seed, "post-load", "final", pair)

    _check_against_oracle(loaded, oracle_graph, pairs, loaded_context)
