"""Tests for repro.cluster — sharded multi-process serving.

Covers the ISSUE 8 acceptance bars: bit-identical answers versus the
single-process :class:`~repro.serving.engine.ServingEngine` (fresh and
post-update, plus a seeded differential against the Dijkstra oracle),
epoch-barrier consistency under interleaved update/query batches (every shard
answers at the same epoch — no torn reads), worker-crash/hang recovery with
typed :class:`~repro.exceptions.ClusterWorkerError`, graceful shutdown
without orphan processes, the snapshot republish lifecycle, and the atomic
``save_index`` / ``export_snapshot`` write path the cluster depends on.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.cluster import ClusterEngine, ShardRouter
from repro.cluster.routing import _stable_hash
from repro.exceptions import (
    ClusterError,
    ClusterWorkerError,
    EngineStoppedError,
    VertexNotFoundError,
)
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_stream
from repro.registry import create_index, get_spec
from repro.serving.engine import ServingEngine
from repro.store import load_snapshot_graph, read_manifest, save_index
from repro.throughput.workload import sample_query_pairs

SIDE = 7
SEED = 7
QUERY_COUNT = 40


@pytest.fixture(scope="module")
def base_graph():
    return grid_road_network(SIDE, SIDE, seed=SEED)


@pytest.fixture(scope="module")
def pmhl_snapshot(base_graph, tmp_path_factory):
    """A built PMHL index persisted once for every test in the module."""
    index = create_index(
        get_spec("PMHL", num_partitions=4, seed=0), base_graph.copy()
    )
    index.build()
    path = str(tmp_path_factory.mktemp("cluster") / "gen-000000")
    save_index(index, path, atomic=True, generation=0)
    return path


@pytest.fixture(scope="module")
def query_pairs(base_graph):
    return list(sample_query_pairs(base_graph, QUERY_COUNT, seed=3))


@pytest.fixture(scope="module")
def update_batches(base_graph):
    return generate_update_stream(base_graph, 3, 10, seed=11)


def make_cluster(snapshot, tmp_path, **kwargs):
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("publish_dir", str(tmp_path / "gens"))
    return ClusterEngine(snapshot, **kwargs)


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestShardRouter:
    def test_partition_affinity(self):
        router = ShardRouter(3, {0: 0, 1: 0, 2: 1, 3: 2})
        assert router.partition_aware
        # Same source partition -> same worker, whatever the target.
        assert router.worker_for(0, 2) == router.worker_for(1, 3)

    def test_hash_fallback_is_deterministic_and_spread(self):
        router = ShardRouter(4)
        assert not router.partition_aware
        first = [router.worker_for(v, v + 1) for v in range(64)]
        assert first == [router.worker_for(v, v + 1) for v in range(64)]
        # The multiplicative mix must not send consecutive ids to one worker.
        assert len(set(first)) == 4

    def test_unknown_source_routes_by_target_partition(self):
        router = ShardRouter(2, {5: 1})
        assert router.worker_for(99, 5) == _stable_hash(1) % 2

    def test_split_preserves_positions(self):
        router = ShardRouter(2)
        pairs = [(1, 2), (2, 3), (3, 4), (4, 5)]
        assignments = router.split(pairs)
        seen = sorted(
            position for entries in assignments.values() for position, _ in entries
        )
        assert seen == [0, 1, 2, 3]
        for entries in assignments.values():
            for position, pair in entries:
                assert pairs[position] == pair

    def test_single_worker_takes_everything(self):
        router = ShardRouter(1, {0: 3})
        assert router.split([(0, 1), (9, 9)]).keys() == {0}

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


# ----------------------------------------------------------------------
# Bit-identical answers vs the single-process engine
# ----------------------------------------------------------------------
class TestBitIdentical:
    def test_fresh_matches_single_process(self, pmhl_snapshot, query_pairs, tmp_path):
        single = ServingEngine.from_snapshot(pmhl_snapshot, cache_capacity=0)
        with make_cluster(pmhl_snapshot, tmp_path) as cluster:
            assert cluster.partition_aware
            got = cluster.query_batch(query_pairs)
        with single:
            expected = single.query_batch(query_pairs)
        assert got == expected

    def test_post_update_matches_single_process(
        self, pmhl_snapshot, query_pairs, update_batches, tmp_path
    ):
        single = ServingEngine.from_snapshot(pmhl_snapshot, cache_capacity=0)
        with make_cluster(pmhl_snapshot, tmp_path) as cluster, single:
            for batch in update_batches:
                cluster.apply_batch(batch)
                single.submit_batch(batch)
            single.wait_for_maintenance()
            got = cluster.serve_batch(query_pairs)
            expected = single.serve_batch(query_pairs)
        assert [r.distance for r in got] == [r.distance for r in expected]
        assert {r.epoch for r in got} == {len(update_batches)}

    def test_seeded_differential_vs_dijkstra(
        self, pmhl_snapshot, update_batches, tmp_path
    ):
        with make_cluster(pmhl_snapshot, tmp_path) as cluster:
            for round_number, batch in enumerate([None, *update_batches[:2]]):
                if batch is not None:
                    cluster.apply_batch(batch)
                epoch = cluster.current_epoch
                graph = cluster.graph_at(epoch)
                pairs = list(sample_query_pairs(graph, 12, seed=100 + round_number))
                results = cluster.serve_batch(pairs)
                for (source, target), result in zip(pairs, results):
                    oracle = dijkstra_distance(graph, source, target)
                    assert result.distance == pytest.approx(oracle, rel=1e-12), (
                        f"seed={100 + round_number} pair=({source},{target}) "
                        f"epoch={epoch}"
                    )

    def test_unpartitioned_method_uses_hash_fallback(
        self, base_graph, query_pairs, tmp_path
    ):
        index = create_index(get_spec("DH2H"), base_graph.copy())
        index.build()
        snapshot = str(tmp_path / "dh2h")
        save_index(index, snapshot, atomic=True)
        with make_cluster(snapshot, tmp_path) as cluster:
            assert not cluster.partition_aware
            assert cluster.query_batch(query_pairs) == index.query_many(query_pairs)
            # Both shards actually served (hash spread, not all-on-one).
            busy = [w for w in cluster.worker_stats() if w["queries_served"] > 0]
            assert len(busy) == 2

    def test_scalar_serve_and_vertex_validation(
        self, pmhl_snapshot, query_pairs, tmp_path
    ):
        with make_cluster(pmhl_snapshot, tmp_path) as cluster:
            source, target = query_pairs[0]
            result = cluster.serve(source, target)
            assert result.distance == cluster.query(source, target)
            assert result.stage.startswith("shard")
            with pytest.raises(VertexNotFoundError):
                cluster.serve(source, 10_000)
            assert cluster.serve_batch([]) == []


# ----------------------------------------------------------------------
# Epoch barrier: no torn reads across an update broadcast
# ----------------------------------------------------------------------
class TestEpochBarrier:
    def test_every_shard_answers_at_the_same_epoch(
        self, pmhl_snapshot, query_pairs, update_batches, tmp_path
    ):
        """The acceptance bar: across update broadcasts, each served batch
        carries exactly one epoch and matches that epoch's Dijkstra oracle."""
        with make_cluster(pmhl_snapshot, tmp_path, num_workers=3) as cluster:
            observed = []
            errors = []
            stop = threading.Event()

            def serve_loop():
                try:
                    while not stop.is_set():
                        results = cluster.serve_batch(query_pairs)
                        observed.append(results)
                except Exception as exc:  # surfaced below; never swallowed
                    errors.append(exc)

            server = threading.Thread(target=serve_loop)
            server.start()
            try:
                for batch in update_batches:
                    cluster.apply_batch(batch)
                    time.sleep(0.05)  # let some batches serve at this epoch
            finally:
                stop.set()
                server.join()

            assert not errors, f"serve loop raised: {errors[0]!r}"
            assert observed
            epochs_seen = set()
            for results in observed:
                epochs = {r.epoch for r in results}
                assert len(epochs) == 1, f"torn batch: epochs {sorted(epochs)}"
                epochs_seen |= epochs
            # Answers are consistent with the graph of the epoch they report.
            for results in observed:
                epoch = results[0].epoch
                graph = cluster.graph_at(epoch)
                for result in results[:5]:
                    oracle = dijkstra_distance(graph, result.source, result.target)
                    assert result.distance == pytest.approx(oracle, rel=1e-12)
            # The stream actually crossed epochs (else the test proved nothing).
            assert len(epochs_seen) >= 2

    def test_worker_epochs_agree_after_each_broadcast(
        self, pmhl_snapshot, update_batches, tmp_path
    ):
        with make_cluster(pmhl_snapshot, tmp_path) as cluster:
            for expected, batch in enumerate(update_batches, start=1):
                cluster.apply_batch(batch)
                assert cluster.current_epoch == expected
                assert {w["epoch"] for w in cluster.worker_stats()} == {expected}

    def test_submitted_batches_drain_in_order(
        self, pmhl_snapshot, query_pairs, update_batches, tmp_path
    ):
        with make_cluster(pmhl_snapshot, tmp_path) as cluster:
            for batch in update_batches:
                cluster.submit_batch(batch)
            assert cluster.wait_for_maintenance(timeout=60)
            assert cluster.pending_batches == 0
            assert cluster.current_epoch == len(update_batches)
            assert not cluster.maintenance_errors
            results = cluster.serve_batch(query_pairs)
            assert {r.epoch for r in results} == {len(update_batches)}

    def test_update_report_aggregates_shard_stages(
        self, pmhl_snapshot, update_batches, tmp_path
    ):
        with make_cluster(pmhl_snapshot, tmp_path) as cluster:
            report = cluster.apply_batch(update_batches[0])
        assert report.stages
        assert report.stages[0].name == "edge_update"
        assert report.total_seconds > 0


# ----------------------------------------------------------------------
# Worker death / hang robustness
# ----------------------------------------------------------------------
class TestWorkerFailure:
    def test_crash_fails_batch_typed_then_recovers(
        self, pmhl_snapshot, query_pairs, tmp_path
    ):
        with make_cluster(pmhl_snapshot, tmp_path) as cluster:
            expected = cluster.query_batch(query_pairs)
            cluster.inject_worker_crash(0)
            time.sleep(0.2)
            with pytest.raises(ClusterWorkerError) as excinfo:
                cluster.query_batch(query_pairs)
            assert excinfo.value.worker_id == 0
            assert isinstance(excinfo.value, ClusterError)
            # The failed worker was respawned: full pool, identical answers.
            assert cluster.query_batch(query_pairs) == expected
            assert cluster.stats()["respawns"] == 1

    def test_hung_worker_hits_timeout_and_recovers(
        self, pmhl_snapshot, query_pairs, tmp_path
    ):
        with make_cluster(
            pmhl_snapshot, tmp_path, worker_timeout=1.0
        ) as cluster:
            expected = cluster.query_batch(query_pairs)
            cluster.inject_worker_hang(0, seconds=30.0)
            started = time.monotonic()
            with pytest.raises(ClusterWorkerError) as excinfo:
                cluster.query_batch(query_pairs)
            assert time.monotonic() - started < 10.0  # timeout, not the sleep
            assert "hung" in excinfo.value.reason or "died" in excinfo.value.reason
            assert cluster.query_batch(query_pairs) == expected

    def test_respawn_replays_journal_after_update(
        self, pmhl_snapshot, query_pairs, update_batches, tmp_path
    ):
        # publish_interval=0: no republish, so the respawn *must* replay the
        # journal over generation 0 to reach the current epoch.
        with make_cluster(
            pmhl_snapshot, tmp_path, publish_interval=0
        ) as cluster:
            cluster.apply_batch(update_batches[0])
            expected = cluster.query_batch(query_pairs)
            assert cluster.stats()["journal_batches"] == 1
            cluster.inject_worker_crash(1)
            time.sleep(0.2)
            with pytest.raises(ClusterWorkerError):
                cluster.query_batch(query_pairs)
            results = cluster.serve_batch(query_pairs)
            assert [r.distance for r in results] == expected
            assert {r.epoch for r in results} == {1}

    def test_respawn_uses_last_published_generation(
        self, pmhl_snapshot, query_pairs, update_batches, tmp_path
    ):
        with make_cluster(
            pmhl_snapshot, tmp_path, publish_interval=1
        ) as cluster:
            cluster.apply_batch(update_batches[0])
            expected = cluster.query_batch(query_pairs)
            # The republished generation is now the respawn base: no journal.
            assert cluster.stats()["journal_batches"] == 0
            cluster.inject_worker_crash(0)
            time.sleep(0.2)
            with pytest.raises(ClusterWorkerError):
                cluster.query_batch(query_pairs)
            assert cluster.query_batch(query_pairs) == expected

    def test_crash_during_update_broadcast_still_closes_barrier(
        self, pmhl_snapshot, query_pairs, update_batches, tmp_path
    ):
        with make_cluster(pmhl_snapshot, tmp_path) as cluster:
            cluster.inject_worker_crash(0)
            time.sleep(0.2)
            report = cluster.apply_batch(update_batches[0])
            assert report.stages  # surviving shard's timings
            assert cluster.current_epoch == 1
            results = cluster.serve_batch(query_pairs)
            assert {r.epoch for r in results} == {1}
            assert {w["epoch"] for w in cluster.worker_stats()} == {1}


# ----------------------------------------------------------------------
# Graceful shutdown: no orphan processes
# ----------------------------------------------------------------------
class TestShutdown:
    def test_stop_leaves_no_orphans(self, pmhl_snapshot, query_pairs, tmp_path):
        cluster = make_cluster(pmhl_snapshot, tmp_path, num_workers=3)
        cluster.start()
        cluster.query_batch(query_pairs)
        pids = [process.pid for process in cluster._dispatcher.processes()]
        assert len(pids) == 3
        cluster.stop()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)  # joined and reaped: the pid is gone

    def test_stop_is_idempotent_and_stopped_engine_rejects_work(
        self, pmhl_snapshot, query_pairs, update_batches, tmp_path
    ):
        cluster = make_cluster(pmhl_snapshot, tmp_path)
        cluster.start()
        cluster.stop()
        cluster.stop()
        with pytest.raises(EngineStoppedError):
            cluster.serve_batch(query_pairs)
        with pytest.raises(EngineStoppedError):
            cluster.submit_batch(update_batches[0])
        with pytest.raises(EngineStoppedError):
            cluster.apply_batch(update_batches[0])
        with pytest.raises(EngineStoppedError):
            cluster.publish_snapshot()

    def test_stop_kills_hung_worker(self, pmhl_snapshot, tmp_path):
        cluster = make_cluster(pmhl_snapshot, tmp_path)
        cluster.start()
        pids = [process.pid for process in cluster._dispatcher.processes()]
        cluster.inject_worker_hang(0, seconds=60.0)
        time.sleep(0.2)
        started = time.monotonic()
        cluster.stop()
        assert time.monotonic() - started < 30.0
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


# ----------------------------------------------------------------------
# Snapshot republish lifecycle + atomic writes
# ----------------------------------------------------------------------
class TestRepublish:
    def test_generation_published_after_each_window(
        self, pmhl_snapshot, update_batches, tmp_path
    ):
        publish_dir = tmp_path / "pub"
        with make_cluster(
            pmhl_snapshot, tmp_path, publish_dir=str(publish_dir), publish_interval=1
        ) as cluster:
            cluster.apply_batch(update_batches[0])
            cluster.apply_batch(update_batches[1])
            published = cluster.published_snapshots
            assert cluster.current_generation == 2
        assert [os.path.basename(p) for p in published] == ["gen-000001", "gen-000002"]
        manifest = read_manifest(published[1])
        assert manifest["generation"] == 2
        assert manifest["extras"]["epoch"] == 2
        assert manifest["extras"]["cluster_epoch"] == 2
        # Atomic write: no staging/retired directories left behind.
        leftovers = [n for n in os.listdir(publish_dir) if ".tmp" in n or ".old" in n]
        assert leftovers == []

    def test_publish_interval_batches_windows(
        self, pmhl_snapshot, update_batches, tmp_path
    ):
        with make_cluster(
            pmhl_snapshot, tmp_path, publish_interval=2
        ) as cluster:
            cluster.apply_batch(update_batches[0])
            assert cluster.published_snapshots == []
            cluster.apply_batch(update_batches[1])
            assert len(cluster.published_snapshots) == 1

    def test_late_joining_cluster_starts_from_published_generation(
        self, pmhl_snapshot, query_pairs, update_batches, tmp_path
    ):
        with make_cluster(
            pmhl_snapshot, tmp_path, publish_interval=1
        ) as cluster:
            cluster.apply_batch(update_batches[0])
            expected = cluster.query_batch(query_pairs)
            latest = cluster.published_snapshots[-1]
        # A brand-new cluster (a "late joiner") warm-starts from the published
        # generation and serves the updated weights bit-identically.
        with make_cluster(latest, tmp_path, num_workers=1) as fresh:
            assert fresh.current_generation == 1
            assert fresh.query_batch(query_pairs) == expected

    def test_manual_publish(self, pmhl_snapshot, tmp_path):
        with make_cluster(pmhl_snapshot, tmp_path) as cluster:
            path = cluster.publish_snapshot()
            assert cluster.current_generation == 1
            assert read_manifest(path)["generation"] == 1


class TestAtomicSnapshotWrites:
    def test_atomic_overwrite_replaces_whole_directory(self, base_graph, tmp_path):
        index = create_index(get_spec("DCH"), base_graph.copy())
        index.build()
        target = str(tmp_path / "snap")
        save_index(index, target, atomic=True, generation=1)
        before = read_manifest(target)
        save_index(index, target, atomic=True, generation=2)
        after = read_manifest(target)
        assert (before["generation"], after["generation"]) == (1, 2)
        assert [n for n in os.listdir(tmp_path) if ".tmp" in n or ".old" in n] == []
        assert load_snapshot_graph(target).num_edges == base_graph.num_edges

    def test_serving_export_snapshot_is_atomic_with_generation(
        self, base_graph, tmp_path
    ):
        index = create_index(get_spec("DCH"), base_graph.copy())
        engine = ServingEngine(index, cache_capacity=0, snapshot_limit=0)
        target = str(tmp_path / "export")
        engine.export_snapshot(target, generation=7)
        engine.export_snapshot(target, generation=8)  # atomic overwrite
        manifest = read_manifest(target)
        assert manifest["generation"] == 8
        assert manifest["extras"]["epoch"] == 0
        assert [n for n in os.listdir(tmp_path) if ".tmp" in n or ".old" in n] == []

    def test_generation_defaults_to_zero(self, base_graph, tmp_path):
        index = create_index(get_spec("DCH"), base_graph.copy())
        index.build()
        target = str(tmp_path / "plain")
        save_index(index, target)
        assert read_manifest(target)["generation"] == 0
