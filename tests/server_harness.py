"""Shared helpers for the network-query-plane test suites.

Kept out of the ``test_*`` modules so both the protocol fuzz suite and the
behavioural suite can reuse one harness: a bounded ``run`` wrapper (no async
test may ever hang CI), a server context manager, raw-socket helpers for
crafting malformed wire bytes, and a controllable blocking backend for the
backpressure/drain tests.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import List, Tuple

from repro.serving.engine import QueryResult
from repro.server.protocol import read_frame
from repro.server.server import QueryServer

#: Hard wall-clock guard on every async test body.
TEST_TIMEOUT = 30.0


def run(coro, timeout: float = TEST_TIMEOUT):
    """Run one async test body with a hard timeout (hangs become failures)."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


@contextlib.asynccontextmanager
async def running_server(backend, **server_kwargs):
    """Start a :class:`QueryServer` over ``backend``; always drain it."""
    server = QueryServer(backend, port=0, **server_kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


async def open_raw(server) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a raw stream connection to ``server`` (no client framing)."""
    host, port = server.address
    return await asyncio.open_connection(host, port)


async def drain_frames(reader: asyncio.StreamReader) -> List:
    """Read well-formed frames until the server closes the connection.

    The server only ever emits well-formed frames, so any decode failure
    here is itself a test failure.
    """
    frames = []
    while True:
        try:
            frames.append(await read_frame(reader))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return frames


async def close_writer(writer: asyncio.StreamWriter) -> None:
    with contextlib.suppress(ConnectionError, OSError):
        writer.close()
        await writer.wait_closed()


class BlockingBackend:
    """A stub backend whose queries park on an event until released.

    Lets the backpressure tests saturate the server's in-flight caps
    deterministically: admitted requests block inside the executor until
    :meth:`release` and every parked request then completes normally —
    which is also exactly what the drain test needs.
    """

    def __init__(self, epoch: int = 0) -> None:
        self._release = threading.Event()
        self._epoch = epoch
        self.served = 0
        self._lock = threading.Lock()

    # -- test controls -------------------------------------------------
    def release(self) -> None:
        self._release.set()

    # -- backend surface -----------------------------------------------
    @property
    def current_epoch(self) -> int:
        return self._epoch

    def serve_batch(self, pairs) -> List[QueryResult]:
        assert self._release.wait(timeout=TEST_TIMEOUT), "backend never released"
        with self._lock:
            self.served += len(pairs)
        return [
            QueryResult(source, target, 1.0, self._epoch, "stub", 0.0)
            for source, target in pairs
        ]

    def serve(self, source: int, target: int) -> QueryResult:
        return self.serve_batch([(source, target)])[0]

    def stats(self) -> dict:
        return {"stub": True, "served": self.served}


async def wait_for(predicate, timeout: float = 5.0, interval: float = 0.005) -> None:
    """Poll ``predicate`` on the event loop until true (bounded)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(interval)


def fake_clock(start: float = 1000.0):
    """A controllable monotonic clock for the admission controller."""

    class _Clock:
        def __init__(self) -> None:
            self.now = start

        def __call__(self) -> float:
            return self.now

        def advance(self, seconds: float) -> None:
            self.now += seconds

    return _Clock()


__all__ = [
    "TEST_TIMEOUT",
    "run",
    "running_server",
    "open_raw",
    "drain_frames",
    "close_writer",
    "BlockingBackend",
    "wait_for",
    "fake_clock",
]
