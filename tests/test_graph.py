"""Unit tests for the graph substrate (repro.graph.graph)."""

import math

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    InvalidWeightError,
    VertexNotFoundError,
)
from repro.graph.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_prebuilt_vertices(self):
        graph = Graph(5)
        assert graph.num_vertices == 5
        assert all(graph.has_vertex(v) for v in range(5))
        assert all(graph.degree(v) == 0 for v in range(5))

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_add_vertex_idempotent(self):
        graph = Graph()
        graph.add_vertex(3)
        graph.add_vertex(3)
        assert graph.num_vertices == 1

    def test_negative_vertex_id_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_vertex(-2)


class TestEdges:
    def test_add_edge_creates_vertices(self):
        graph = Graph()
        graph.add_edge(0, 1, 2.5)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 2.5
        assert graph.edge_weight(1, 0) == 2.5

    def test_add_edge_keeps_minimum_weight(self):
        graph = Graph()
        graph.add_edge(0, 1, 5.0)
        graph.add_edge(0, 1, 3.0)
        assert graph.edge_weight(0, 1) == 3.0
        graph.add_edge(0, 1, 7.0)
        assert graph.edge_weight(0, 1) == 3.0
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edge(2, 2, 1.0)

    @pytest.mark.parametrize("weight", [0, -1.0, math.inf, math.nan, "bad"])
    def test_invalid_weights_rejected(self, weight):
        graph = Graph()
        with pytest.raises(InvalidWeightError):
            graph.add_edge(0, 1, weight)

    def test_set_edge_weight(self):
        graph = Graph()
        graph.add_edge(0, 1, 4.0)
        graph.set_edge_weight(0, 1, 9.0)
        assert graph.edge_weight(0, 1) == 9.0
        assert graph.edge_weight(1, 0) == 9.0

    def test_set_edge_weight_missing_edge(self):
        graph = Graph(2)
        with pytest.raises(EdgeNotFoundError):
            graph.set_edge_weight(0, 1, 1.0)

    def test_edge_weight_or_default(self):
        graph = Graph(2)
        assert graph.edge_weight_or(0, 1) == math.inf
        assert graph.edge_weight_or(0, 1, -1.0) == -1.0

    def test_remove_edge(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 0
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(0, 1)

    def test_remove_vertex_removes_incident_edges(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.remove_vertex(1)
        assert not graph.has_vertex(1)
        assert graph.num_edges == 0

    def test_edges_iteration_unique(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.0)
        edges = sorted(graph.edges())
        assert edges == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_degree_and_neighbors(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 2, 2.0)
        assert graph.degree(0) == 2
        assert graph.neighbors(0) == {1: 1.0, 2: 2.0}
        with pytest.raises(VertexNotFoundError):
            graph.degree(99)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        clone = graph.copy()
        clone.set_edge_weight(0, 1, 9.0)
        assert graph.edge_weight(0, 1) == 1.0
        assert clone.edge_weight(0, 1) == 9.0

    def test_subgraph_keeps_internal_edges_only(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(2, 3, 1.0)
        sub = graph.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_vertex(3)

    def test_subgraph_unknown_vertex(self):
        graph = Graph(2)
        with pytest.raises(VertexNotFoundError):
            graph.subgraph([0, 5])


class TestConnectivity:
    def test_connected_components(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(2, 3, 1.0)
        graph.add_vertex(4)
        components = sorted(sorted(c) for c in graph.connected_components())
        assert components == [[0, 1], [2, 3], [4]]
        assert not graph.is_connected()

    def test_single_component(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        assert graph.is_connected()

    def test_empty_graph_is_connected(self):
        assert Graph().is_connected()


class TestCoordinates:
    def test_coordinates_roundtrip(self):
        graph = Graph(2)
        graph.set_coordinate(0, 1.5, 2.5)
        assert graph.coordinate(0) == (1.5, 2.5)
        assert graph.coordinate(1) is None
        assert not graph.has_coordinates()
        graph.set_coordinate(1, 0.0, 0.0)
        assert graph.has_coordinates()

    def test_contains_and_len(self):
        graph = Graph(3)
        assert 2 in graph
        assert 5 not in graph
        assert len(graph) == 3


class TestVersionCounter:
    """Every mutation path reachable from ``graph.updates`` must bump
    ``Graph.version`` — the counter frozen ``GraphSnapshot``\\ s key their
    staleness detection to (the regression suite for out-of-band edits)."""

    def test_every_mutator_bumps(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 2.0)
        version = graph.version
        graph.add_vertex(9)
        assert graph.version > version
        version = graph.version
        graph.add_edge(1, 2, 4.0)
        assert graph.version > version
        version = graph.version
        graph.set_edge_weight(0, 1, 3.0)
        assert graph.version > version
        version = graph.version
        # min-semantics improvement of an existing edge is a weight change
        graph.add_edge(0, 1, 1.0)
        assert graph.version > version
        version = graph.version
        graph.remove_edge(1, 2)
        assert graph.version > version
        version = graph.version
        graph.remove_vertex(9)
        assert graph.version > version

    def test_noop_mutations_do_not_bump(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 2.0)
        version = graph.version
        graph.add_vertex(0)  # already present
        graph.add_edge(0, 1, 5.0)  # min-semantics keeps the lighter weight
        assert graph.version == version

    def test_batch_apply_and_revert_bump(self):
        from repro.graph.updates import EdgeUpdate, UpdateBatch

        graph = Graph(3)
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 4.0)
        batch = UpdateBatch([EdgeUpdate(0, 1, 2.0, 6.0), EdgeUpdate(1, 2, 4.0, 1.0)])
        version = graph.version
        batch.apply(graph)
        assert graph.version > version
        version = graph.version
        batch.revert(graph)
        assert graph.version > version

    def test_copy_preserves_version(self):
        graph = Graph(2)
        graph.add_edge(0, 1, 2.0)
        copied = graph.copy()
        assert copied.version == graph.version
        copied.set_edge_weight(0, 1, 9.0)
        assert copied.version > graph.version

    def test_out_of_band_edit_invalidates_frozen_snapshot(self):
        """A weight edit outside ``apply_batch`` must refreeze the CSR
        snapshot before the next query — never serve a stale distance."""
        from repro.baselines.bidijkstra_index import BiDijkstraIndex

        graph = Graph(3)
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 4.0)
        index = BiDijkstraIndex(graph)
        index.build()
        assert index.query(0, 2) == 6.0  # freezes the snapshot
        graph.set_edge_weight(1, 2, 10.0)  # out of band: no apply_batch
        assert index.query(0, 2) == 12.0
