"""Batch query plane: equivalence with the scalar path on all nine indexes.

The contract under test:

* ``query_many`` / ``query_one_to_many`` return **bit-identical** distances to
  the scalar ``query`` loop on every index whose batch plane reuses the scalar
  arithmetic (eight of the nine methods), both freshly built and after
  ``apply_batch``;
* BiDijkstra's batch plane is the one documented exception: it runs a single
  truncated Dijkstra per distinct source, which is bit-identical to the
  canonical single-source path (``dijkstra_distance``) but may differ from the
  scalar *bidirectional* search in the final ulp because floating-point
  addition is not associative.  Its results are asserted bit-identical to the
  Dijkstra reference and within 1e-9 of the scalar path;
* the BiDijkstra one-to-many path is at least 2x faster than the equivalent
  scalar loop (the acceptance bar of the batch-plane redesign).
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.baselines.bidijkstra_index import BiDijkstraIndex
from repro.exceptions import VertexNotFoundError
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_batch
from repro.registry import create_index, get_spec, registered_methods
from repro.throughput.workload import sample_query_pairs

#: All nine registered methods with small-graph construction parameters.
NINE_SPECS = {
    "BiDijkstra": get_spec("BiDijkstra"),
    "DCH": get_spec("DCH"),
    "DH2H": get_spec("DH2H"),
    "MHL": get_spec("MHL"),
    "TOAIN": get_spec("TOAIN", checkin_fraction=0.25),
    "N-CH-P": get_spec("N-CH-P", num_partitions=4, seed=0),
    "P-TD-P": get_spec("P-TD-P", num_partitions=4, seed=0),
    "PMHL": get_spec("PMHL", num_partitions=4, seed=0),
    "PostMHL": get_spec("PostMHL", bandwidth=10, expected_partitions=4),
}

#: Methods whose batch plane must be bit-identical to the scalar path.
EXACT_METHODS = sorted(set(NINE_SPECS) - {"BiDijkstra"})


def _query_pairs(graph):
    pairs = list(sample_query_pairs(graph, 60, seed=3))
    # Edge cases: identical endpoints and a repeated source (grouping path).
    pairs += [(0, 0), (7, 7), (0, 5), (0, 9), (0, 13)]
    return pairs


@pytest.fixture(scope="module")
def built_indexes():
    """Every method built once on the same 10x10 grid."""
    base = grid_road_network(10, 10, seed=5)
    built = {}
    for name, spec in NINE_SPECS.items():
        index = create_index(spec, base.copy())
        index.build()
        built[name] = index
    return built


class TestRegistryCoversAllNine:
    def test_nine_methods_registered(self):
        assert set(registered_methods()) == set(NINE_SPECS)


class TestFreshEquivalence:
    @pytest.mark.parametrize("method", EXACT_METHODS)
    def test_query_many_bit_identical(self, built_indexes, method):
        index = built_indexes[method]
        pairs = _query_pairs(index.graph)
        scalar = [index.query(s, t) for s, t in pairs]
        assert index.query_many(pairs) == scalar

    @pytest.mark.parametrize("method", EXACT_METHODS)
    def test_query_one_to_many_bit_identical(self, built_indexes, method):
        index = built_indexes[method]
        pairs = _query_pairs(index.graph)
        source = pairs[0][0]
        targets = [t for _, t in pairs]
        scalar = [index.query(source, t) for t in targets]
        assert index.query_one_to_many(source, targets) == scalar

    def test_bidijkstra_batch_matches_dijkstra_reference(self, built_indexes):
        index = built_indexes["BiDijkstra"]
        pairs = _query_pairs(index.graph)
        batch = index.query_many(pairs)
        # Bit-identical to the canonical single-source scalar path...
        assert batch == [dijkstra_distance(index.graph, s, t) for s, t in pairs]
        # ...and within final-ulp rounding of the bidirectional scalar path.
        scalar = [index.query(s, t) for s, t in pairs]
        assert all(abs(a - b) <= 1e-9 * max(1.0, abs(a)) for a, b in zip(scalar, batch))


class TestPostUpdateEquivalence:
    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_equivalence_after_apply_batch(self, built_indexes, method):
        index = built_indexes[method]
        update = generate_update_batch(index.graph, volume=12, seed=9)
        index.apply_batch(update)
        pairs = _query_pairs(index.graph)
        scalar = [index.query(s, t) for s, t in pairs]
        batch = index.query_many(pairs)
        if method == "BiDijkstra":
            assert batch == [dijkstra_distance(index.graph, s, t) for s, t in pairs]
            assert all(
                abs(a - b) <= 1e-9 * max(1.0, abs(a)) for a, b in zip(scalar, batch)
            )
        else:
            assert batch == scalar
        # And the distances are correct, not merely self-consistent.
        oracle = [dijkstra_distance(index.graph, s, t) for s, t in pairs]
        assert all(
            abs(a - b) <= 1e-6 * max(1.0, abs(b)) for a, b in zip(batch, oracle)
        )


class TestBatchValidation:
    def test_unknown_vertices_raise(self, built_indexes):
        for method in ("BiDijkstra", "DH2H", "PMHL", "PostMHL", "N-CH-P"):
            index = built_indexes[method]
            with pytest.raises(VertexNotFoundError):
                index.query_one_to_many(0, [3, 10_000])
            with pytest.raises(VertexNotFoundError):
                index.query_many([(0, 3), (-5, 7)])

    def test_empty_batches(self, built_indexes):
        for index in built_indexes.values():
            assert index.query_many([]) == []
            assert index.query_one_to_many(0, []) == []

    def test_input_order_preserved(self, built_indexes):
        index = built_indexes["PostMHL"]
        pairs = [(5, 80), (3, 40), (5, 17), (3, 99), (5, 80)]
        assert index.query_many(pairs) == [index.query(s, t) for s, t in pairs]


class TestBiDijkstraBatchSpeedup:
    def test_one_to_many_at_least_2x_faster(self):
        """The acceptance bar on the quick grid dataset.

        200 targets from one source: the batch path runs one truncated
        Dijkstra, the scalar loop 200 bidirectional searches.  The measured
        gap is ~50-100x; the assertion keeps a wide margin for slow CI boxes.
        """
        graph = grid_road_network(22, 22, seed=13)
        index = BiDijkstraIndex(graph)
        index.build()
        targets = [t for _, t in sample_query_pairs(graph, 200, seed=4)]
        source = 0

        start = time.perf_counter()
        scalar = [index.query(source, t) for t in targets]
        scalar_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batch = index.query_one_to_many(source, targets)
        batch_seconds = time.perf_counter() - start

        assert all(abs(a - b) <= 1e-9 * max(1.0, abs(a)) for a, b in zip(scalar, batch))
        assert batch_seconds > 0
        assert scalar_seconds / batch_seconds >= 2.0, (
            f"batch path only {scalar_seconds / batch_seconds:.2f}x faster "
            f"({scalar_seconds:.4f}s scalar vs {batch_seconds:.4f}s batch)"
        )
