"""Tests for the live serving engine: correctness under concurrent updates,
stage routing, admission control, metrics and the reader-writer lock."""

from __future__ import annotations

import threading

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.baselines.bidijkstra_index import BiDijkstraIndex
from repro.core.pmhl import PMHLIndex
from repro.core.postmhl import PostMHLIndex
from repro.exceptions import (
    EngineStoppedError,
    QueryRejectedError,
    ServingError,
    VertexNotFoundError,
)
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_stream
from repro.labeling.h2h import DH2HIndex
from repro.serving.admission import AdmissionController, AlwaysAdmit
from repro.serving.driver import run_mixed_workload
from repro.serving.engine import ServingEngine
from repro.serving.metrics import LatencyHistogram, ServingMetrics
from repro.serving.router import LAST_STAGE, StageRouter
from repro.serving.rwlock import RWLock
from repro.throughput.workload import sample_query_pairs


def _serving_oracle_run(index, graph, *, query_threads, num_batches, seed=3):
    """Drive a mixed workload and replay every answer against Dijkstra."""
    engine = ServingEngine(
        index,
        query_threads=query_threads,
        snapshot_limit=num_batches + 1,
        cache_capacity=512,
    )
    pairs = list(sample_query_pairs(graph, 25, seed=5))
    batches = generate_update_stream(graph, num_batches, volume=8, seed=seed)
    with engine:
        report = run_mixed_workload(
            engine,
            pairs,
            duration_seconds=0.8,
            query_threads=query_threads,
            batches=batches,
            collect_results=True,
            seed=11,
        )
    assert report.batches_applied == num_batches
    assert engine.current_epoch == num_batches
    assert report.queries_served > 0
    mismatches = [
        result
        for result in report.results
        if abs(
            dijkstra_distance(engine.graph_at(result.epoch), result.source, result.target)
            - result.distance
        )
        > 1e-9
    ]
    assert mismatches == [], f"{len(mismatches)} stale/incorrect answers: {mismatches[:3]}"
    return report


class TestServingCorrectness:
    """The acceptance bar: zero incorrect distances under concurrent updates."""

    def test_postmhl_concurrent_updates(self):
        graph = grid_road_network(7, 7, seed=7)
        index = PostMHLIndex(graph, bandwidth=10, expected_partitions=4)
        report = _serving_oracle_run(index, graph, query_threads=2, num_batches=3)
        # The engine must actually have routed across stages, not just one.
        assert len(report.stats["by_stage"]) >= 1

    def test_pmhl_concurrent_updates(self):
        graph = grid_road_network(6, 6, seed=11)
        index = PMHLIndex(graph, num_partitions=4, seed=0)
        _serving_oracle_run(index, graph, query_threads=3, num_batches=2)

    def test_plain_index_concurrent_updates(self):
        # DH2H has no stage catalog: BiDijkstra fallback until each batch lands.
        graph = grid_road_network(6, 6, seed=3)
        index = DH2HIndex(graph)
        _serving_oracle_run(index, graph, query_threads=2, num_batches=2)

    def test_epochs_are_monotonic_per_client(self):
        graph = grid_road_network(6, 6, seed=5)
        index = PostMHLIndex(graph, bandwidth=10, expected_partitions=4)
        engine = ServingEngine(index, snapshot_limit=4)
        batches = generate_update_stream(graph, 2, volume=6, seed=1)
        epochs = []
        with engine:
            for batch in batches:
                epochs.append(engine.serve(0, 35).epoch)
                engine.submit_batch(batch)
                engine.wait_for_maintenance()
            epochs.append(engine.serve(0, 35).epoch)
        assert epochs == sorted(epochs)
        assert epochs[-1] == 2


class TestServingEngineBasics:
    def test_builds_unbuilt_index(self):
        graph = grid_road_network(4, 4, seed=1)
        index = BiDijkstraIndex(graph)
        engine = ServingEngine(index)
        assert index.is_built
        assert engine.serve(0, 15).distance == pytest.approx(
            dijkstra_distance(graph, 0, 15)
        )

    def test_serve_without_start_works(self):
        graph = grid_road_network(4, 4, seed=1)
        engine = ServingEngine(BiDijkstraIndex(graph))
        result = engine.serve(0, 5)
        assert result.epoch == 0
        assert result.stage in ("bidijkstra_fallback", "native")

    def test_submit_requires_running_engine(self):
        graph = grid_road_network(4, 4, seed=1)
        engine = ServingEngine(BiDijkstraIndex(graph))
        with pytest.raises(EngineStoppedError):
            engine.submit(0, 5)
        with pytest.raises(EngineStoppedError):
            engine.submit_batch(generate_update_stream(graph, 1, volume=2, seed=0)[0])

    def test_start_stop_idempotent(self):
        graph = grid_road_network(4, 4, seed=1)
        engine = ServingEngine(BiDijkstraIndex(graph))
        engine.start()
        engine.start()
        assert engine.is_running
        engine.stop()
        engine.stop()
        assert not engine.is_running

    def test_submit_future_roundtrip(self):
        graph = grid_road_network(4, 4, seed=1)
        with ServingEngine(BiDijkstraIndex(graph)) as engine:
            future = engine.submit(0, 15)
            assert future.result(timeout=10).distance == pytest.approx(
                dijkstra_distance(graph, 0, 15)
            )

    def test_maintenance_worker_survives_failed_batch(self):
        from repro.graph.updates import EdgeUpdate, UpdateBatch

        graph = grid_road_network(4, 4, seed=1)
        engine = ServingEngine(BiDijkstraIndex(graph), snapshot_limit=4)
        bad = UpdateBatch([EdgeUpdate(0, 15, 1.0, 2.0)])  # edge does not exist
        good_edge = next(iter(graph.edges()))
        good = UpdateBatch([EdgeUpdate(good_edge[0], good_edge[1], good_edge[2], good_edge[2] * 2)])
        with engine:
            engine.submit_batch(bad)
            engine.submit_batch(good)
            assert engine.wait_for_maintenance(timeout=10)
            # The failed batch is recorded; the good one still installed.
            assert len(engine.maintenance_errors) == 1
            assert engine.current_epoch == 1
            assert engine.serve(0, 15).epoch == 1
        assert engine.stats()["maintenance_errors"]

    def test_unknown_vertex_raises_library_error(self):
        graph = grid_road_network(4, 4, seed=1)
        index = PostMHLIndex(graph, bandwidth=8, expected_partitions=2)
        engine = ServingEngine(index)
        with pytest.raises(VertexNotFoundError):
            engine.serve(0, 10_000)
        with pytest.raises(VertexNotFoundError):
            engine.serve(-1, 3)
        # Failed validations are neither served nor shed.
        assert engine.metrics.queries_served == 0
        assert engine.metrics.queries_shed == 0

    def test_graph_at_missing_epoch(self):
        graph = grid_road_network(4, 4, seed=1)
        engine = ServingEngine(BiDijkstraIndex(graph), snapshot_limit=0)
        with pytest.raises(ServingError):
            engine.graph_at(0)

    def test_stats_shape(self):
        graph = grid_road_network(4, 4, seed=1)
        engine = ServingEngine(BiDijkstraIndex(graph))
        engine.serve(0, 3)
        stats = engine.stats()
        assert stats["queries_served"] == 1
        assert stats["epoch"] == 0
        assert "latency" in stats and "cache" in stats and "stages" in stats


class TestServeBatch:
    """The batch endpoint: one epoch, one routing decision, bulk cache."""

    def _engine(self, cache_capacity=512):
        graph = grid_road_network(7, 7, seed=7)
        index = PostMHLIndex(graph, bandwidth=10, expected_partitions=4)
        return graph, ServingEngine(
            index, snapshot_limit=8, cache_capacity=cache_capacity
        )

    def test_batch_results_share_one_epoch_and_match_oracle(self):
        graph, engine = self._engine()
        pairs = list(sample_query_pairs(graph, 30, seed=5))
        batches = generate_update_stream(graph, 3, volume=8, seed=3)
        with engine:
            for batch in batches:
                engine.submit_batch(batch)
                results = engine.serve_batch(pairs)
                epochs = {result.epoch for result in results}
                assert len(epochs) == 1, "a batch must be answered at a single epoch"
                epoch = epochs.pop()
                snapshot = engine.graph_at(epoch)
                for result in results:
                    oracle = dijkstra_distance(snapshot, result.source, result.target)
                    assert abs(oracle - result.distance) <= 1e-9
                engine.wait_for_maintenance()
        assert engine.current_epoch == len(batches)

    def test_single_stage_decision_per_batch(self):
        graph, engine = self._engine()
        pairs = list(sample_query_pairs(graph, 10, seed=6))
        results = engine.serve_batch(pairs)
        # No maintenance ran: the whole batch uses the fastest stage.
        assert {result.stage for result in results} == {"CROSS_BOUNDARY"}
        assert {result.epoch for result in results} == {0}

    def test_bulk_cache_probe_and_fill(self):
        graph, engine = self._engine()
        pairs = list(sample_query_pairs(graph, 10, seed=6))
        first = engine.serve_batch(pairs)
        assert not any(result.from_cache for result in first)
        second = engine.serve_batch(pairs)
        assert all(result.from_cache for result in second)
        assert {result.stage for result in second} == {"cache"}
        assert [r.distance for r in second] == [r.distance for r in first]

    def test_query_batch_matches_scalar_engine_queries(self):
        graph, engine = self._engine(cache_capacity=0)
        pairs = list(sample_query_pairs(graph, 15, seed=8))
        distances = engine.query_batch(pairs)
        assert distances == [engine.query(s, t) for s, t in pairs]

    def test_batch_validation_and_empty(self):
        _, engine = self._engine()
        assert engine.serve_batch([]) == []
        with pytest.raises(VertexNotFoundError):
            engine.serve_batch([(0, 3), (0, 10_000)])
        assert engine.metrics.queries_served == 0

    def test_batch_is_shed_as_a_whole(self):
        graph = grid_road_network(4, 4, seed=1)

        class ShedAll(AlwaysAdmit):
            def decide(self, inflight=0):
                from repro.serving.admission import AdmissionDecision

                return AdmissionDecision(False, "test", 0.0, 0.0)

        engine = ServingEngine(BiDijkstraIndex(graph), admission=ShedAll())
        with pytest.raises(QueryRejectedError):
            engine.serve_batch([(0, 1), (2, 3)])
        assert engine.metrics.queries_shed == 1

    def test_batch_under_concurrent_maintenance_stays_consistent(self):
        """Spam serve_batch while batches install; every answer must replay
        against the Dijkstra oracle of the epoch it reports."""
        graph, engine = self._engine()
        pairs = list(sample_query_pairs(graph, 12, seed=9))
        batches = generate_update_stream(graph, 3, volume=10, seed=5)
        collected = []
        with engine:
            for batch in batches:
                engine.submit_batch(batch)
                for _ in range(10):
                    collected.extend(engine.serve_batch(pairs))
            engine.wait_for_maintenance()
        mismatches = [
            result
            for result in collected
            if abs(
                dijkstra_distance(engine.graph_at(result.epoch), result.source, result.target)
                - result.distance
            )
            > 1e-9
        ]
        assert mismatches == [], f"{len(mismatches)} stale/incorrect batch answers"


class TestStageRouter:
    def test_multistage_validity_lifecycle(self):
        graph = grid_road_network(5, 5, seed=2)
        index = PostMHLIndex(graph, bandwidth=10, expected_partitions=4)
        index.build()
        router = StageRouter(index)

        # Fresh build: everything valid at epoch 0, fastest stage wins.
        best = router.best_valid_index_stage(0)
        assert best is not None and best.name == "CROSS_BOUNDARY"

        # A new epoch opens: only the live-graph stage is valid.
        router.begin_epoch(1)
        assert router.best_valid_index_stage(1) is None
        assert router.best_valid_stage(1) is router.graph_stage

        # U-Stage 2 completion releases the PCH query stage.
        router.release("overlay_shortcut_update", 1)
        assert router.best_valid_index_stage(1).name == "PCH"

        # Batch fully installed: back to the fastest stage.
        router.complete(1)
        assert router.best_valid_index_stage(1).name == "CROSS_BOUNDARY"

    def test_plain_index_fallback_catalog(self):
        graph = grid_road_network(4, 4, seed=2)
        index = DH2HIndex(graph)
        index.build()
        router = StageRouter(index)
        names = [stage.name for stage in router.stages]
        assert names == ["bidijkstra_fallback", "native"]
        assert router.stages[1].released_after == LAST_STAGE
        router.begin_epoch(1)
        # "native" is only released by complete(), never by a named stage.
        router.release("label_update", 1)
        assert router.best_valid_index_stage(1) is None
        router.complete(1)
        assert router.best_valid_index_stage(1).name == "native"


class TestAdmissionControl:
    def _controller(self, **kwargs):
        clock = [0.0]
        controller = AdmissionController(
            response_qos=0.1,
            window_seconds=1.0,
            min_samples=5,
            clock=lambda: clock[0],
            **kwargs,
        )
        return controller, clock

    def test_warming_up_admits_everything(self):
        controller, _ = self._controller()
        decision = controller.decide()
        assert decision.admitted and decision.reason == "warming_up"

    def test_sheds_when_offered_load_exceeds_qos_rate(self):
        controller, clock = self._controller()
        for _ in range(10):
            controller.observe_latency(0.05)  # half the QoS per query
        # Lemma 1 with deterministic 50 ms service and R*_q = 100 ms allows
        # ~6.7 qps; offer far more within the window.
        for _ in range(50):
            clock[0] += 0.01
            decision = controller.decide()
        assert not decision.admitted
        assert decision.reason == "offered_load"
        assert decision.arrival_rate > decision.sustainable_rate

    def test_admits_light_load(self):
        controller, clock = self._controller()
        for _ in range(10):
            controller.observe_latency(0.001)
        clock[0] += 10.0  # the arrival window is empty again
        decision = controller.decide()
        assert decision.admitted and decision.reason == "ok"

    def test_sheds_on_inflight_backlog(self):
        controller, clock = self._controller()
        for _ in range(10):
            controller.observe_latency(0.05)
        clock[0] += 10.0
        decision = controller.decide(inflight=10)  # 10 × 50ms ≫ R*_q
        assert not decision.admitted and decision.reason == "inflight_backlog"

    def test_engine_sheds_and_counts(self):
        graph = grid_road_network(4, 4, seed=1)

        class ShedAll(AlwaysAdmit):
            def decide(self, inflight=0):
                from repro.serving.admission import AdmissionDecision

                return AdmissionDecision(False, "test", 0.0, 0.0)

        engine = ServingEngine(BiDijkstraIndex(graph), admission=ShedAll())
        with pytest.raises(QueryRejectedError):
            engine.serve(0, 1)
        assert engine.metrics.queries_shed == 1


class TestMetrics:
    def test_histogram_quantiles_bracket_samples(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(0.001)
        histogram.record(0.5)
        assert histogram.count == 100
        assert 0.0005 < histogram.quantile(0.5) < 0.002
        assert histogram.quantile(0.99) <= 0.5
        assert histogram.quantile(1.0) == pytest.approx(0.5)
        assert histogram.mean == pytest.approx((99 * 0.001 + 0.5) / 100)

    def test_histogram_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_serving_metrics_accounting(self):
        clock = [0.0]
        metrics = ServingMetrics(clock=lambda: clock[0], window_seconds=1.0)
        for _ in range(10):
            clock[0] += 0.05
            metrics.record_query("CROSS_BOUNDARY", 0.002)
        metrics.record_query("cache", 0.0001, from_cache=True)
        metrics.record_shed()
        snapshot = metrics.snapshot()
        assert snapshot["queries_served"] == 11
        assert snapshot["queries_shed"] == 1
        assert snapshot["cache_hits"] == 1
        assert snapshot["by_stage"]["CROSS_BOUNDARY"] == 10
        assert metrics.qps() > 0


class TestRWLock:
    def test_readers_share_writers_exclude(self):
        lock = RWLock()
        assert lock.acquire_read()
        assert lock.acquire_read()
        assert lock.active_readers == 2
        assert not lock.acquire_write(timeout=0.01)
        lock.release_read()
        lock.release_read()
        assert lock.acquire_write(timeout=1.0)
        assert not lock.acquire_read(blocking=False)
        lock.release_write()
        assert lock.acquire_read(blocking=False)
        lock.release_read()

    def test_writer_blocks_until_reader_drains(self):
        lock = RWLock()
        lock.acquire_read()
        acquired = threading.Event()

        def writer():
            lock.acquire_write()
            acquired.set()
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        assert not acquired.wait(0.05)
        lock.release_read()
        assert acquired.wait(2.0)
        thread.join()

    def test_release_without_acquire_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestWorkloadDriver:
    def test_rejects_empty_pairs(self):
        graph = grid_road_network(4, 4, seed=1)
        engine = ServingEngine(BiDijkstraIndex(graph))
        with pytest.raises(ServingError):
            run_mixed_workload(engine, [], duration_seconds=0.1)

    def test_requires_running_engine_for_batches(self):
        graph = grid_road_network(4, 4, seed=1)
        engine = ServingEngine(BiDijkstraIndex(graph))
        batches = generate_update_stream(graph, 1, volume=2, seed=0)
        with pytest.raises(ServingError):
            run_mixed_workload(
                engine, [(0, 1)], duration_seconds=0.1, batches=batches
            )

    def test_pure_query_workload_needs_no_start(self):
        graph = grid_road_network(4, 4, seed=1)
        engine = ServingEngine(BiDijkstraIndex(graph))
        report = run_mixed_workload(
            engine, [(0, 15), (3, 12)], duration_seconds=0.15, query_threads=2
        )
        assert report.queries_served > 0
        assert report.batches_applied == 0
        assert report.measured_qps > 0
