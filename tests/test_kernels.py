"""Frozen query kernels: equivalence, staleness and lifecycle guarantees.

The contract under test (see DESIGN.md §7):

* with ``use_kernels=True`` (the default) every index answers scalar and
  batch queries through the frozen flat-array stores of ``repro.kernels``,
  and the results are **bit-identical** to the pure-Python reference path
  (``use_kernels=False``) on all nine methods — freshly built and after
  ``apply_batch``;
* a query after an update never reads a pre-freeze store: ``apply_batch``
  invalidates at entry, the kernel epoch advances, and post-update answers
  replay exactly against a fresh Dijkstra oracle;
* the CSR graph snapshot is additionally keyed to ``graph.version`` so even
  out-of-band graph mutation cannot be served from a stale snapshot;
* the vectorized numpy batch backend (used when the native C kernel is
  unavailable) is bit-identical too.
"""

from __future__ import annotations

import time

import pytest

try:
    import numpy
except ImportError:  # pragma: no cover - the no-numpy CI job
    numpy = None

from repro.algorithms.dijkstra import bidijkstra, dijkstra_distance
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_batch
from repro.kernels import LabelStore
from repro.registry import create_index, get_spec
from repro.serving.engine import ServingEngine
from repro.throughput.workload import sample_query_pairs

#: All nine registered methods with small-graph construction parameters.
NINE_SPECS = {
    "BiDijkstra": get_spec("BiDijkstra"),
    "DCH": get_spec("DCH"),
    "DH2H": get_spec("DH2H"),
    "MHL": get_spec("MHL"),
    "TOAIN": get_spec("TOAIN", checkin_fraction=0.25),
    "N-CH-P": get_spec("N-CH-P", num_partitions=4, seed=0),
    "P-TD-P": get_spec("P-TD-P", num_partitions=4, seed=0),
    "PMHL": get_spec("PMHL", num_partitions=4, seed=0),
    "PostMHL": get_spec("PostMHL", bandwidth=10, expected_partitions=4),
}

#: The methods whose labels freeze into a :class:`LabelStore` (the H2H family).
H2H_FAMILY = ("DH2H", "MHL", "PMHL", "PostMHL")

#: The equivalence/staleness tests run with or without numpy (kernels degrade
#: to the reference paths); the store-introspection and speedup tests don't.
needs_numpy = pytest.mark.skipif(
    numpy is None, reason="numpy-backed label stores unavailable"
)


def _query_pairs(graph):
    pairs = list(sample_query_pairs(graph, 60, seed=3))
    # Edge cases: identical endpoints and a repeated source (grouping path).
    pairs += [(0, 0), (7, 7), (0, 5), (0, 9), (0, 13)]
    return pairs


@pytest.fixture(scope="module")
def index_pairs():
    """Every method built twice on the same 10x10 grid: kernels on / off."""
    base = grid_road_network(10, 10, seed=5)
    built = {}
    for name, spec in NINE_SPECS.items():
        fast = create_index(spec, base.copy())
        fast.build()
        reference = create_index(spec, base.copy(), use_kernels=False)
        reference.build()
        built[name] = (fast, reference)
    return built


class TestFreshEquivalence:
    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_scalar_bit_identical(self, index_pairs, method):
        fast, reference = index_pairs[method]
        pairs = _query_pairs(fast.graph)
        assert [fast.query(s, t) for s, t in pairs] == [
            reference.query(s, t) for s, t in pairs
        ]

    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_query_many_bit_identical(self, index_pairs, method):
        fast, reference = index_pairs[method]
        pairs = _query_pairs(fast.graph)
        assert fast.query_many(pairs) == reference.query_many(pairs)

    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_query_one_to_many_bit_identical(self, index_pairs, method):
        fast, reference = index_pairs[method]
        pairs = _query_pairs(fast.graph)
        source = pairs[0][0]
        targets = [t for _, t in pairs]
        assert fast.query_one_to_many(source, targets) == reference.query_one_to_many(
            source, targets
        )

    def test_reference_path_freezes_nothing(self, index_pairs):
        for method, (_fast, reference) in index_pairs.items():
            assert reference._kernel_stores == {}, method
            assert reference._graph_snapshot_cache is None, method


class TestPostUpdateEquivalence:
    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_equivalence_and_correctness_after_apply_batch(self, index_pairs, method):
        fast, reference = index_pairs[method]
        pairs = _query_pairs(fast.graph)
        # Warm the frozen stores so the update provably invalidates them.
        fast.query_many(pairs[:5])
        epoch_before = fast.kernel_epoch

        # The two graph copies are identical, so the seeded batches coincide.
        fast.apply_batch(generate_update_batch(fast.graph, volume=12, seed=9))
        reference.apply_batch(generate_update_batch(reference.graph, volume=12, seed=9))
        assert fast.kernel_epoch > epoch_before

        scalar = [fast.query(s, t) for s, t in pairs]
        assert scalar == [reference.query(s, t) for s, t in pairs]
        assert fast.query_many(pairs) == reference.query_many(pairs)
        # Correct, not merely self-consistent: replay against a fresh oracle.
        oracle = [dijkstra_distance(fast.graph, s, t) for s, t in pairs]
        assert all(
            abs(a - b) <= 1e-6 * max(1.0, abs(b)) for a, b in zip(scalar, oracle)
        )


class TestStaleness:
    @needs_numpy
    def test_update_invalidates_frozen_label_store(self):
        graph = grid_road_network(8, 8, seed=2)
        index = create_index("DH2H", graph)
        index.build()
        pairs = _query_pairs(graph)
        index.query_many(pairs)  # freeze
        store_before = index._kernel_stores.get("labels")
        assert store_before is not None

        index.apply_batch(generate_update_batch(graph, volume=10, seed=4))
        # The pre-update store is gone; the next query freezes a new one and
        # answers from post-update state.
        assert index._kernel_stores.get("labels") is None or (
            index._kernel_stores["labels"] is not store_before
        )
        after = index.query_many(pairs)
        assert index._kernel_stores["labels"] is not store_before
        oracle = [dijkstra_distance(graph, s, t) for s, t in pairs]
        assert all(
            abs(a - b) <= 1e-6 * max(1.0, abs(b)) for a, b in zip(after, oracle)
        )

    def test_graph_snapshot_tracks_out_of_band_mutation(self):
        graph = grid_road_network(6, 6, seed=1)
        index = create_index("BiDijkstra", graph)
        index.build()
        # The snapshot search is a literal port of the live bidirectional one.
        assert index.query(0, 35) == bidijkstra(graph, 0, 35)
        # Mutate the graph directly — no apply_batch, no kernel invalidation.
        u, v, w = next(iter(graph.edges()))
        graph.set_edge_weight(u, v, w * 3.5)
        assert index.query(0, 35) == bidijkstra(graph, 0, 35)

    def test_serving_engine_never_reads_pre_freeze_store(self):
        graph = grid_road_network(8, 8, seed=7)
        index = create_index("MHL", graph)
        with ServingEngine(index, cache_capacity=0) as engine:
            pairs = _query_pairs(graph)[:10]
            for s, t in pairs:
                engine.serve(s, t)  # freezes epoch-0 stores
            for seed in (11, 12):
                engine.submit_batch(generate_update_batch(graph, volume=8, seed=seed))
            assert engine.wait_for_maintenance(timeout=60)
            for s, t in pairs:
                result = engine.serve(s, t)
                oracle = dijkstra_distance(engine.graph_at(result.epoch), s, t)
                assert abs(result.distance - oracle) <= 1e-6 * max(1.0, abs(oracle))
        assert engine.maintenance_errors == []


class TestVectorizedBackend:
    @needs_numpy
    def test_numpy_batch_path_bit_identical_without_native_kernel(self, monkeypatch):
        import repro.kernels.label_store as label_store_module

        monkeypatch.setattr(label_store_module, "native_kernel", lambda: None)
        graph = grid_road_network(8, 8, seed=3)
        index = create_index("DH2H", graph)
        index.build()
        reference = create_index("DH2H", graph.copy(), use_kernels=False)
        reference.build()
        pairs = _query_pairs(graph)
        store = index._label_store()
        assert isinstance(store, LabelStore) and store.query_fn is None
        assert index.query_many(pairs) == reference.query_many(pairs)
        source = pairs[0][0]
        targets = [t for _, t in pairs]
        assert index.query_one_to_many(source, targets) == reference.query_one_to_many(
            source, targets
        )


class TestKernelSpeedup:
    @needs_numpy
    def test_h2h_family_batch_at_least_2x_faster(self):
        """Conservative CI bar; bench_kernels.py records the real (~5-10x) gap."""
        base = grid_road_network(14, 14, seed=5)
        fast = create_index("DH2H", base.copy())
        fast.build()
        reference = create_index("DH2H", base.copy(), use_kernels=False)
        reference.build()
        pairs = list(sample_query_pairs(base, 3000, seed=6))
        fast.query_many(pairs[:4])  # freeze outside the timed region

        start = time.perf_counter()
        batch = fast.query_many(pairs)
        fast_seconds = time.perf_counter() - start
        start = time.perf_counter()
        expected = reference.query_many(pairs)
        reference_seconds = time.perf_counter() - start

        assert batch == expected
        assert fast_seconds > 0
        assert reference_seconds / fast_seconds >= 2.0, (
            f"kernel batch path only {reference_seconds / fast_seconds:.2f}x faster "
            f"({reference_seconds:.4f}s reference vs {fast_seconds:.4f}s kernels)"
        )
