"""Frozen query kernels: equivalence, staleness and lifecycle guarantees.

The contract under test (see DESIGN.md §7):

* with ``use_kernels=True`` (the default) every index answers scalar and
  batch queries through the frozen flat-array stores of ``repro.kernels``,
  and the results are **bit-identical** to the pure-Python reference path
  (``use_kernels=False``) on all nine methods — freshly built and after
  ``apply_batch``;
* a query after an update never reads a pre-freeze store: ``apply_batch``
  invalidates at entry, the kernel epoch advances, and post-update answers
  replay exactly against a fresh Dijkstra oracle;
* the CSR graph snapshot is additionally keyed to ``graph.version`` so even
  out-of-band graph mutation cannot be served from a stale snapshot;
* the vectorized numpy batch backend (used when the native C kernel is
  unavailable) is bit-identical too.
"""

from __future__ import annotations

import time

import pytest

try:
    import numpy
except ImportError:  # pragma: no cover - the no-numpy CI job
    numpy = None

from repro.algorithms.dijkstra import bidijkstra, dijkstra_distance
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_batch
from repro.kernels import LabelStore
from repro.registry import create_index, get_spec
from repro.serving.engine import ServingEngine
from repro.store.snapshot import load_index, save_index
from repro.throughput.workload import sample_query_pairs

#: All nine registered methods with small-graph construction parameters.
NINE_SPECS = {
    "BiDijkstra": get_spec("BiDijkstra"),
    "DCH": get_spec("DCH"),
    "DH2H": get_spec("DH2H"),
    "MHL": get_spec("MHL"),
    "TOAIN": get_spec("TOAIN", checkin_fraction=0.25),
    "N-CH-P": get_spec("N-CH-P", num_partitions=4, seed=0),
    "P-TD-P": get_spec("P-TD-P", num_partitions=4, seed=0),
    "PMHL": get_spec("PMHL", num_partitions=4, seed=0),
    "PostMHL": get_spec("PostMHL", bandwidth=10, expected_partitions=4),
}

#: The methods whose labels freeze into a :class:`LabelStore` (the H2H family).
H2H_FAMILY = ("DH2H", "MHL", "PMHL", "PostMHL")

#: The equivalence/staleness tests run with or without numpy (kernels degrade
#: to the reference paths); the store-introspection and speedup tests don't.
needs_numpy = pytest.mark.skipif(
    numpy is None, reason="numpy-backed label stores unavailable"
)


def _query_pairs(graph):
    pairs = list(sample_query_pairs(graph, 60, seed=3))
    # Edge cases: identical endpoints and a repeated source (grouping path).
    pairs += [(0, 0), (7, 7), (0, 5), (0, 9), (0, 13)]
    return pairs


@pytest.fixture(scope="module")
def index_pairs():
    """Every method built twice on the same 10x10 grid: kernels on / off."""
    base = grid_road_network(10, 10, seed=5)
    built = {}
    for name, spec in NINE_SPECS.items():
        fast = create_index(spec, base.copy())
        fast.build()
        reference = create_index(spec, base.copy(), use_kernels=False)
        reference.build()
        built[name] = (fast, reference)
    return built


class TestFreshEquivalence:
    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_scalar_bit_identical(self, index_pairs, method):
        fast, reference = index_pairs[method]
        pairs = _query_pairs(fast.graph)
        assert [fast.query(s, t) for s, t in pairs] == [
            reference.query(s, t) for s, t in pairs
        ]

    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_query_many_bit_identical(self, index_pairs, method):
        fast, reference = index_pairs[method]
        pairs = _query_pairs(fast.graph)
        assert fast.query_many(pairs) == reference.query_many(pairs)

    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_query_one_to_many_bit_identical(self, index_pairs, method):
        fast, reference = index_pairs[method]
        pairs = _query_pairs(fast.graph)
        source = pairs[0][0]
        targets = [t for _, t in pairs]
        assert fast.query_one_to_many(source, targets) == reference.query_one_to_many(
            source, targets
        )

    def test_reference_path_freezes_nothing(self, index_pairs):
        for method, (_fast, reference) in index_pairs.items():
            assert reference._kernel_stores == {}, method
            assert reference._graph_snapshot_cache is None, method


class TestPostUpdateEquivalence:
    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_equivalence_and_correctness_after_apply_batch(self, index_pairs, method):
        fast, reference = index_pairs[method]
        pairs = _query_pairs(fast.graph)
        # Warm the frozen stores so the update provably invalidates them.
        fast.query_many(pairs[:5])
        epoch_before = fast.kernel_epoch

        # The two graph copies are identical, so the seeded batches coincide.
        fast.apply_batch(generate_update_batch(fast.graph, volume=12, seed=9))
        reference.apply_batch(generate_update_batch(reference.graph, volume=12, seed=9))
        assert fast.kernel_epoch > epoch_before

        scalar = [fast.query(s, t) for s, t in pairs]
        assert scalar == [reference.query(s, t) for s, t in pairs]
        assert fast.query_many(pairs) == reference.query_many(pairs)
        # Correct, not merely self-consistent: replay against a fresh oracle.
        oracle = [dijkstra_distance(fast.graph, s, t) for s, t in pairs]
        assert all(
            abs(a - b) <= 1e-6 * max(1.0, abs(b)) for a, b in zip(scalar, oracle)
        )


class TestPostSnapshotLoadEquivalence:
    """Snapshot round-trips preserve the kernel contract: a loaded index
    answers bit-identically to the reference path and correctly vs a fresh
    Dijkstra oracle — through stores reattached from the persisted arenas."""

    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_loaded_index_bit_identical_and_correct(self, index_pairs, tmp_path, method):
        fast, reference = index_pairs[method]
        path = str(tmp_path / "snap")
        save_index(fast, path)
        loaded = load_index(path)
        pairs = _query_pairs(loaded.graph)
        scalar = [loaded.query(s, t) for s, t in pairs]
        assert scalar == [reference.query(s, t) for s, t in pairs]
        assert loaded.query_many(pairs) == reference.query_many(pairs)
        source = pairs[0][0]
        targets = [t for _, t in pairs]
        assert loaded.query_one_to_many(source, targets) == reference.query_one_to_many(
            source, targets
        )
        oracle = [dijkstra_distance(loaded.graph, s, t) for s, t in pairs]
        assert all(
            abs(a - b) <= 1e-6 * max(1.0, abs(b)) for a, b in zip(scalar, oracle)
        )

    @needs_numpy
    @pytest.mark.parametrize("method", ("BiDijkstra", "DCH", "DH2H", "TOAIN", "PMHL"))
    def test_loaded_stores_share_snapshot_mmap(self, tmp_path, method):
        """Warm-started stores execute over the snapshot's mmap'd buffers —
        the property cluster shards rely on to share one physical copy."""
        index = create_index(NINE_SPECS[method], grid_road_network(8, 8, seed=2))
        index.build()
        path = str(tmp_path / "snap")
        save_index(index, path)
        loaded = load_index(path)
        stores = {
            key: freezer() for key, freezer in loaded._kernel_exports().items()
        }
        assert stores, method
        for key, store in stores.items():
            assert store is not None, (method, key)
            arena = getattr(store, "arena", None)
            assert arena is not None, (method, key)
            assert arena.is_shared(), (method, key)


class TestStaleness:
    @needs_numpy
    def test_update_invalidates_frozen_label_store(self):
        graph = grid_road_network(8, 8, seed=2)
        index = create_index("DH2H", graph)
        index.build()
        pairs = _query_pairs(graph)
        index.query_many(pairs)  # freeze
        store_before = index._kernel_stores.get("labels")
        assert store_before is not None

        index.apply_batch(generate_update_batch(graph, volume=10, seed=4))
        # The pre-update store is gone; the next query freezes a new one and
        # answers from post-update state.
        assert index._kernel_stores.get("labels") is None or (
            index._kernel_stores["labels"] is not store_before
        )
        after = index.query_many(pairs)
        assert index._kernel_stores["labels"] is not store_before
        oracle = [dijkstra_distance(graph, s, t) for s, t in pairs]
        assert all(
            abs(a - b) <= 1e-6 * max(1.0, abs(b)) for a, b in zip(after, oracle)
        )

    def test_graph_snapshot_tracks_out_of_band_mutation(self):
        graph = grid_road_network(6, 6, seed=1)
        index = create_index("BiDijkstra", graph)
        index.build()
        # The snapshot search is a literal port of the live bidirectional one.
        assert index.query(0, 35) == bidijkstra(graph, 0, 35)
        # Mutate the graph directly — no apply_batch, no kernel invalidation.
        u, v, w = next(iter(graph.edges()))
        graph.set_edge_weight(u, v, w * 3.5)
        assert index.query(0, 35) == bidijkstra(graph, 0, 35)

    def test_serving_engine_never_reads_pre_freeze_store(self):
        graph = grid_road_network(8, 8, seed=7)
        index = create_index("MHL", graph)
        with ServingEngine(index, cache_capacity=0) as engine:
            pairs = _query_pairs(graph)[:10]
            for s, t in pairs:
                engine.serve(s, t)  # freezes epoch-0 stores
            for seed in (11, 12):
                engine.submit_batch(generate_update_batch(graph, volume=8, seed=seed))
            assert engine.wait_for_maintenance(timeout=60)
            for s, t in pairs:
                result = engine.serve(s, t)
                oracle = dijkstra_distance(engine.graph_at(result.epoch), s, t)
                assert abs(result.distance - oracle) <= 1e-6 * max(1.0, abs(oracle))
        assert engine.maintenance_errors == []


class TestVectorizedBackend:
    @needs_numpy
    def test_numpy_batch_path_bit_identical_without_native_kernel(self, monkeypatch):
        import repro.kernels.label_store as label_store_module

        monkeypatch.setattr(label_store_module, "native_kernel", lambda: None)
        graph = grid_road_network(8, 8, seed=3)
        index = create_index("DH2H", graph)
        index.build()
        reference = create_index("DH2H", graph.copy(), use_kernels=False)
        reference.build()
        pairs = _query_pairs(graph)
        store = index._label_store()
        assert isinstance(store, LabelStore) and store.query_fn is None
        assert index.query_many(pairs) == reference.query_many(pairs)
        source = pairs[0][0]
        targets = [t for _, t in pairs]
        assert index.query_one_to_many(source, targets) == reference.query_one_to_many(
            source, targets
        )


class TestNoCompilerFallback:
    @needs_numpy
    @pytest.mark.parametrize("method", ("BiDijkstra", "DCH", "TOAIN"))
    def test_search_kernels_fall_back_bit_identically(self, monkeypatch, method):
        """With the native kernel unavailable, the CSR stores run the
        pure-Python literal ports — same answers, bit for bit."""
        import repro.kernels.graph_snapshot as graph_snapshot_module
        import repro.kernels.label_store as label_store_module
        import repro.kernels.shortcut_store as shortcut_store_module

        for module in (
            graph_snapshot_module,
            label_store_module,
            shortcut_store_module,
        ):
            monkeypatch.setattr(module, "native_kernel", lambda: None)
        graph = grid_road_network(8, 8, seed=3)
        index = create_index(NINE_SPECS[method], graph)
        index.build()
        reference = create_index(NINE_SPECS[method], graph.copy(), use_kernels=False)
        reference.build()
        pairs = _query_pairs(graph)
        assert [index.query(s, t) for s, t in pairs] == [
            reference.query(s, t) for s, t in pairs
        ]
        assert index.query_many(pairs) == reference.query_many(pairs)
        # The fallback really was exercised: no capsule anywhere.
        frozen = list(index._kernel_stores.values())
        if index._graph_snapshot_cache is not None:
            frozen.append(index._graph_snapshot_cache)
        assert frozen, method
        assert all(getattr(store, "capsule", None) is None for store in frozen)


class TestNativeCompileCache:
    def test_build_tag_keyed_by_source_hash(self, monkeypatch):
        """An edited kernel source can never be served a stale binary: the
        cache directory embeds a hash of the exact source bytes."""
        from repro.kernels import native

        monkeypatch.delenv("REPRO_KERNEL_CFLAGS", raising=False)
        tag = native._build_tag(b"int answer(void) { return 42; }")
        edited = native._build_tag(b"int answer(void) { return 43; }")
        assert tag != edited
        assert native._build_tag(b"int answer(void) { return 42; }") == tag

    def test_build_tag_keyed_by_extra_cflags(self, monkeypatch):
        from repro.kernels import native

        monkeypatch.delenv("REPRO_KERNEL_CFLAGS", raising=False)
        plain = native._build_tag(b"source")
        monkeypatch.setenv("REPRO_KERNEL_CFLAGS", "-Wall -Werror")
        strict = native._build_tag(b"source")
        assert plain != strict


class TestArenaRoundTrip:
    @needs_numpy
    def test_pack_views_and_state_roundtrip(self, tmp_path):
        from repro.kernels.arena import Arena
        from repro.store.arrays import ArrayWriter, open_payload

        arrays = {
            "ids": numpy.arange(7, dtype=numpy.int64),
            "weights": numpy.linspace(0.0, 1.0, 13),
            "flags": numpy.asarray([1, 0, 1], dtype=numpy.uint8),
        }
        arena = Arena.pack(arrays)
        for name, expected in arrays.items():
            assert numpy.array_equal(arena[name], expected)
            # Zero-copy views into the one buffer at 64-byte offsets.
            assert arena[name].base is not None
            offset = arena[name].ctypes.data - arena.buffer.ctypes.data
            assert offset % 64 == 0
            assert arena[name].ctypes.data % 8 == 0

        writer = ArrayWriter("npz")
        state = arena.to_state(writer)
        writer.write(str(tmp_path))
        reader = open_payload(str(tmp_path), writer.filename, "npz")
        loaded = Arena.from_state(state, reader)
        for name, expected in arrays.items():
            assert numpy.array_equal(loaded[name], expected)
        # The payload writer aligns npz members, so the loaded arena is a
        # view over the snapshot's mmap — shared, not copied.
        assert loaded.is_shared()

    @needs_numpy
    def test_npz_members_are_aligned_mmap_views(self, tmp_path):
        """Every payload member — whatever odd sizes precede it — comes back
        as an 8-byte-aligned memmap view (the property the arena and the C
        kernels depend on; plain ``np.savez`` leaves this to chance)."""
        from repro.store.arrays import ArrayWriter, open_payload

        writer = ArrayWriter("npz")
        refs = []
        for size in (1, 3, 7, 11, 2, 5):
            refs.append(writer.put_ints(list(range(size))))
        writer.write(str(tmp_path))
        reader = open_payload(str(tmp_path), writer.filename, "npz")
        for ref in refs:
            member = reader.get_array(ref)
            assert isinstance(member, numpy.memmap)
            assert member.ctypes.data % 8 == 0


class TestKernelSpeedup:
    @needs_numpy
    def test_h2h_family_batch_at_least_2x_faster(self):
        """Conservative CI bar; bench_kernels.py records the real (~5-10x) gap."""
        base = grid_road_network(14, 14, seed=5)
        fast = create_index("DH2H", base.copy())
        fast.build()
        reference = create_index("DH2H", base.copy(), use_kernels=False)
        reference.build()
        pairs = list(sample_query_pairs(base, 3000, seed=6))
        fast.query_many(pairs[:4])  # freeze outside the timed region

        start = time.perf_counter()
        batch = fast.query_many(pairs)
        fast_seconds = time.perf_counter() - start
        start = time.perf_counter()
        expected = reference.query_many(pairs)
        reference_seconds = time.perf_counter() - start

        assert batch == expected
        assert fast_seconds > 0
        assert reference_seconds / fast_seconds >= 2.0, (
            f"kernel batch path only {reference_seconds / fast_seconds:.2f}x faster "
            f"({reference_seconds:.4f}s reference vs {fast_seconds:.4f}s kernels)"
        )

    @needs_numpy
    def test_ch_search_kernel_at_least_2x_faster(self):
        """Conservative CI bar for the native bidirectional-search kernel;
        bench_kernels.py records the real (~15x) gap on the bigger graph."""
        from repro.kernels.native import native_kernel

        if native_kernel() is None:
            pytest.skip("native kernel unavailable (no compiler)")
        base = grid_road_network(18, 18, seed=5)
        fast = create_index("DCH", base.copy())
        fast.build()
        reference = create_index("DCH", base.copy(), use_kernels=False)
        reference.build()
        pairs = list(sample_query_pairs(base, 300, seed=6))
        fast.query(*pairs[0])  # freeze outside the timed region

        start = time.perf_counter()
        scalar = [fast.query(s, t) for s, t in pairs]
        fast_seconds = time.perf_counter() - start
        start = time.perf_counter()
        expected = [reference.query(s, t) for s, t in pairs]
        reference_seconds = time.perf_counter() - start

        assert scalar == expected
        assert fast_seconds > 0
        assert reference_seconds / fast_seconds >= 2.0, (
            f"CH-search kernel only {reference_seconds / fast_seconds:.2f}x faster "
            f"({reference_seconds:.4f}s reference vs {fast_seconds:.4f}s kernels)"
        )
