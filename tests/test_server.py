"""Behavioural tests of the network query plane.

Covers the full satellite checklist for the serving front end: seeded
differential equivalence against an in-process :class:`ServingEngine` across
all nine methods (fresh and post-update), epoch consistency at the network
boundary under interleaved queries and batch updates, backpressure with
monotone queue-depth hints and a fake-clock Lemma-1 admission scenario,
graceful drain with zero dropped in-flight requests, the ``serve`` CLI
subcommand end-to-end, and the closed-loop async load generator.
"""

from __future__ import annotations

import asyncio
import math
import threading

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.exceptions import (
    QueryRejectedError,
    ServerBackpressureError,
    ServerClosedError,
)
from repro.graph.generators import load_dataset, random_connected_graph
from repro.graph.updates import generate_update_batch
from repro.registry import create_index
from repro.serving.admission import AdmissionController
from repro.serving.engine import ServingEngine
from repro.server import AsyncClient, LoadReport, run_closed_loop
from repro.server.loadgen import quantile
from repro.server.protocol import OP_QUERY, OP_RESULT, OP_RETRY, read_frame
from repro.throughput.workload import sample_query_pairs

from tests.conftest import paper_example_graph
from tests.server_harness import (
    BlockingBackend,
    close_writer,
    fake_clock,
    open_raw,
    run,
    running_server,
    wait_for,
)
from tests.test_differential import NINE_SPECS
from tests.test_server_protocol import make_frame


def build_engine(method: str = "BiDijkstra", graph=None, **engine_kwargs):
    index = create_index(NINE_SPECS.get(method, method), graph or paper_example_graph())
    index.build()
    return ServingEngine(index, cache_capacity=0, **engine_kwargs)


def as_tuples(batch):
    return [(u.u, u.v, u.old_weight, u.new_weight) for u in batch.updates]


# ----------------------------------------------------------------------
# End-to-end over a started engine
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_full_request_surface(self):
        async def main(engine):
            async with running_server(engine) as server:
                async with await AsyncClient.connect(*server.address) as client:
                    assert await client.ping() == 0

                    reply = await client.query(0, 7)
                    assert (reply.distance, reply.epoch) == (16.0, 0)
                    assert reply.stage

                    batch = await client.query_batch([(0, 7), (0, 9), (4, 10)])
                    assert batch.epoch == 0
                    assert batch.distances == [
                        dijkstra_distance(engine.graph, s, t)
                        for s, t in [(0, 7), (0, 9), (4, 10)]
                    ]

                    otm = await client.one_to_many(0, [7, 9])
                    assert otm.distances == [16.0, 2.0]

                    epoch = await client.apply_batch([(0, 8, 6.0, 3.0)])
                    assert epoch == 1
                    after = await client.query(0, 7)
                    assert after.epoch == 1
                    assert after.distance == dijkstra_distance(
                        engine.graph, 0, 7
                    )
                    assert after.distance < 16.0  # the cheaper edge shows up

                    stats = await client.stats()
                    assert stats["server"]["requests_total"] >= 5
                    assert stats["server"]["errors_total"] == 0
                    assert stats["backend"]["epoch"] == 1

        with build_engine() as engine:
            run(main(engine))

    def test_pipelined_requests_one_connection(self):
        pairs = [(0, 7), (0, 9), (4, 10), (1, 7), (0, 13)]

        async def main(engine):
            async with running_server(engine) as server:
                async with await AsyncClient.connect(*server.address) as client:
                    replies = await asyncio.gather(
                        *(client.query(s, t) for s, t in pairs)
                    )
                    got = [r.distance for r in replies]
                    oracle = [
                        dijkstra_distance(engine.graph, s, t) for s, t in pairs
                    ]
                    assert got == oracle

        with build_engine() as engine:
            run(main(engine))

    def test_many_clients_share_one_server(self):
        async def main(engine):
            async with running_server(engine) as server:
                clients = [
                    await AsyncClient.connect(*server.address) for _ in range(4)
                ]
                try:
                    replies = await asyncio.gather(
                        *(c.query(0, 9) for c in clients)
                    )
                    assert [r.distance for r in replies] == [2.0] * 4
                finally:
                    for client in clients:
                        await client.close()
                assert server.stats()["connections_total"] == 4

        with build_engine() as engine:
            run(main(engine))

    def test_unreachable_pair_serves_infinity(self):
        graph = random_connected_graph(8, 0, seed=5)
        graph.add_vertex(99)  # isolated vertex: no path to anything

        async def main(engine):
            async with running_server(engine) as server:
                async with await AsyncClient.connect(*server.address) as client:
                    assert (await client.query(0, 99)).distance == math.inf
                    batch = await client.query_batch([(0, 99), (99, 0)])
                    assert batch.distances == [math.inf, math.inf]

        with build_engine(graph=graph) as engine:
            run(main(engine))

    def test_client_close_rejects_pending(self):
        backend = BlockingBackend()

        async def main():
            async with running_server(backend) as server:
                client = await AsyncClient.connect(*server.address)
                pending = asyncio.ensure_future(client.query(1, 2))
                await asyncio.sleep(0.05)
                await client.close()
                with pytest.raises(ServerClosedError):
                    await pending
                backend.release()

        run(main())

    def test_client_context_manager_and_repr_roundtrip(self):
        async def main(engine):
            async with running_server(engine) as server:
                async with await AsyncClient.connect(*server.address) as client:
                    reply = await client.query(0, 9)
                    assert "2.0" in repr(reply.distance)
                # closed on exit: further requests fail fast
                with pytest.raises(ServerClosedError):
                    await client.query(0, 9)

        with build_engine() as engine:
            run(main(engine))


# ----------------------------------------------------------------------
# Satellite: seeded differential vs. in-process ServingEngine, nine methods
# ----------------------------------------------------------------------
GRAPH_SEED = 3
UPDATE_SEED = 41
QUERY_SAMPLE = 20


@pytest.mark.parametrize("method", sorted(NINE_SPECS))
def test_differential_network_vs_inprocess(method):
    """Server responses must be bit-identical to an in-process engine built
    from the same seed — fresh, and again after the same update batch."""
    graph = random_connected_graph(36, 28, seed=GRAPH_SEED)
    pairs = list(sample_query_pairs(graph, QUERY_SAMPLE, seed=GRAPH_SEED + 1))

    served = build_engine(method, graph.copy())
    local = build_engine(method, graph.copy())

    async def main():
        async with running_server(served) as server:
            async with await AsyncClient.connect(*server.address) as client:
                # Fresh build: batch plane and scalar plane.
                reply = await client.query_batch(pairs)
                assert reply.epoch == local.current_epoch == 0
                assert reply.distances == local.query_batch(pairs)
                for source, target in pairs[:3]:
                    got = await client.query(source, target)
                    assert got.distance == local.query(source, target)

                # Same seeded batch through both planes; identical epochs.
                batch = generate_update_batch(served.graph, 10, seed=UPDATE_SEED)
                local_batch = generate_update_batch(
                    local.graph, 10, seed=UPDATE_SEED
                )
                new_epoch = await client.apply_batch(as_tuples(batch))
                local.submit_batch(local_batch)
                assert local.wait_for_maintenance(timeout=30.0)
                assert new_epoch == local.current_epoch == 1

                reply = await client.query_batch(pairs)
                assert reply.epoch == 1
                assert reply.distances == local.query_batch(pairs)

    with served, local:
        run(main())


# ----------------------------------------------------------------------
# Satellite: epoch consistency at the network boundary
# ----------------------------------------------------------------------
def _epoch_graph_history(graph, rounds: int, volume: int = 5):
    """Expected graph state per epoch, plus the batch producing each epoch."""
    history = [graph.copy()]
    batches = []
    current = graph.copy()
    for round_index in range(rounds):
        batch = generate_update_batch(current, volume, seed=200 + round_index)
        batches.append(batch)
        batch.apply(current)
        history.append(current.copy())
    return history, batches


class TestEpochConsistency:
    ROUNDS = 4

    def _assert_interleaved_consistency(self, server_cm, graph, backend):
        """Queries racing batch updates must never observe a torn epoch:
        every batch reply's distances match the oracle for its single epoch."""
        history, batches = _epoch_graph_history(graph, self.ROUNDS)
        pairs = list(sample_query_pairs(graph, 8, seed=7))
        oracle = [
            {pair: dijkstra_distance(g, *pair) for pair in pairs} for g in history
        ]

        async def applier(server):
            async with await AsyncClient.connect(*server.address) as client:
                for batch in batches:
                    await client.apply_batch(as_tuples(batch))
                    await asyncio.sleep(0.01)

        async def querier(server, replies):
            async with await AsyncClient.connect(*server.address) as client:
                last_epoch = -1
                while True:
                    reply = await client.query_batch_with_retry(pairs)
                    replies.append(reply)
                    assert reply.epoch >= last_epoch, "epoch went backwards"
                    last_epoch = reply.epoch
                    if reply.epoch >= self.ROUNDS:
                        return
                    await asyncio.sleep(0)

        async def main():
            async with server_cm() as server:
                replies = []
                await asyncio.gather(
                    applier(server),
                    querier(server, replies),
                    querier(server, replies),
                )
                seen_epochs = {reply.epoch for reply in replies}
                for reply in replies:
                    expected = oracle[reply.epoch]
                    for pair, got in zip(pairs, reply.distances):
                        assert got == expected[pair], (
                            f"torn epoch {reply.epoch}: pair {pair} got {got!r}, "
                            f"oracle {expected[pair]!r}"
                        )
                assert self.ROUNDS in seen_epochs
                assert backend.current_epoch == self.ROUNDS

        run(main(), timeout=120.0)

    def test_serving_engine_no_torn_epochs(self):
        graph = paper_example_graph()
        with build_engine(graph=graph.copy()) as engine:
            import contextlib

            @contextlib.asynccontextmanager
            async def server_cm():
                async with running_server(engine) as server:
                    yield server

            self._assert_interleaved_consistency(server_cm, graph, engine)

    def test_cluster_engine_no_torn_epochs(self, tmp_path):
        from repro.cluster import ClusterEngine

        graph = paper_example_graph()
        index = create_index("BiDijkstra", graph.copy())
        index.build()
        # fork-before-loop: worker processes must exist before asyncio.run.
        with ClusterEngine.from_index(
            index, str(tmp_path), num_workers=2
        ) as engine:
            import contextlib

            @contextlib.asynccontextmanager
            async def server_cm():
                async with running_server(engine) as server:
                    yield server

            self._assert_interleaved_consistency(server_cm, graph, engine)


# ----------------------------------------------------------------------
# Satellite: backpressure + admission control at the network boundary
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_retry_queue_depth_hints_monotone(self):
        backend = BlockingBackend()

        async def main():
            async with running_server(
                backend, max_inflight=2, max_inflight_per_connection=8
            ) as server:
                reader, writer = await open_raw(server)
                import json

                payload = json.dumps({"source": 1, "target": 2}).encode()
                for seq in range(1, 9):
                    writer.write(make_frame(OP_QUERY, seq, payload))
                await writer.drain()

                # Two admitted requests park in the executor; the six
                # overflow frames shed immediately with growing depth hints.
                retries = [await read_frame(reader) for _ in range(6)]
                assert all(f.op == OP_RETRY for f in retries)
                depths = [f.payload["queue_depth"] for f in retries]
                assert depths == sorted(depths) and len(set(depths)) == 6
                waits = [f.payload["suggested_wait_seconds"] for f in retries]
                assert all(w > 0 for w in waits)
                assert all(
                    f.payload["reason"] == "queue_full" for f in retries
                )

                backend.release()
                results = [await read_frame(reader) for _ in range(2)]
                assert all(f.op == OP_RESULT for f in results)
                await close_writer(writer)

        run(main())

    def test_accepted_after_retry_succeeds(self):
        backend = BlockingBackend()

        async def main():
            async with running_server(backend, max_inflight=1) as server:
                client = await AsyncClient.connect(*server.address)
                try:
                    parked = asyncio.ensure_future(client.query(1, 2))
                    await wait_for(lambda: server.stats()["inflight"] == 1)
                    with pytest.raises(ServerBackpressureError) as excinfo:
                        await client.query(3, 4)
                    assert excinfo.value.queue_depth >= 1
                    assert excinfo.value.suggested_wait_seconds > 0

                    backend.release()
                    assert (await parked).distance == 1.0
                    # The retried request is now admitted and served.
                    retried = await client.query_with_retry(3, 4)
                    assert retried.distance == 1.0
                    assert client.retries == 0  # first shed raised; with_retry clean
                finally:
                    await client.close()

        run(main())

    def test_per_connection_cap_isolates_slow_client(self):
        backend = BlockingBackend()

        async def main():
            async with running_server(
                backend, max_inflight=64, max_inflight_per_connection=2
            ) as server:
                import json

                reader, writer = await open_raw(server)
                payload = json.dumps({"source": 1, "target": 2}).encode()
                for seq in range(1, 5):
                    writer.write(make_frame(OP_QUERY, seq, payload))
                await writer.drain()
                # The greedy connection sheds beyond its own cap...
                retries = [await read_frame(reader) for _ in range(2)]
                assert all(f.op == OP_RETRY for f in retries)

                # ...while a well-behaved client is still admitted.
                client = await AsyncClient.connect(*server.address)
                try:
                    other = asyncio.ensure_future(client.query(5, 6))
                    await wait_for(lambda: server.stats()["inflight"] == 3)
                    backend.release()
                    assert (await other).distance == 1.0
                finally:
                    await client.close()
                results = [await read_frame(reader) for _ in range(2)]
                assert all(f.op == OP_RESULT for f in results)
                await close_writer(writer)

        run(main())

    def test_fake_clock_admission_maps_to_retry(self):
        """Lemma-1 shedding surfaces as a RETRY frame; once the fake clock
        advances past the arrival window the same request is admitted."""
        clock = fake_clock()
        admission = AdmissionController(
            response_qos=0.05,
            window_seconds=1.0,
            min_samples=5,
            clock=clock,
        )
        for _ in range(60):  # warm estimator: mean service ~0.04s
            admission.observe_latency(0.04)
        engine = build_engine(admission=admission)
        # Sanity: the controller sheds under a frozen clock eventually.
        assert admission.sustainable_rate() < math.inf

        async def main():
            async with running_server(engine) as server:
                async with await AsyncClient.connect(*server.address) as client:
                    shed = None
                    for _ in range(200):
                        try:
                            await client.query(0, 9)
                        except ServerBackpressureError as exc:
                            shed = exc
                            break
                    assert shed is not None, "admission never shed"
                    assert shed.reason == "admission"
                    assert shed.queue_depth >= 1
                    assert shed.suggested_wait_seconds > 0

                    # Frozen clock: still overloaded, still shedding.
                    with pytest.raises(ServerBackpressureError):
                        await client.query(0, 9)

                    # Advance past the window: the backlog ages out and the
                    # retried query is admitted and served.
                    clock.advance(10.0)
                    reply = await client.query_with_retry(0, 9)
                    assert reply.distance == 2.0

        with engine:
            run(main())

    def test_engine_rejection_without_server_is_query_rejected(self):
        """Control check: the same condition in-process raises
        QueryRejectedError — the server's RETRY is a faithful mapping."""
        clock = fake_clock()
        admission = AdmissionController(
            response_qos=0.05, window_seconds=1.0, min_samples=5, clock=clock
        )
        for _ in range(60):
            admission.observe_latency(0.04)
        with build_engine(admission=admission) as engine:
            with pytest.raises(QueryRejectedError):
                for _ in range(200):
                    engine.query(0, 9)


# ----------------------------------------------------------------------
# Satellite: graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_delivers_all_inflight(self):
        backend = BlockingBackend()

        async def main():
            async with running_server(backend) as server:
                client = await AsyncClient.connect(*server.address)
                pending = [
                    asyncio.ensure_future(client.query(i, i + 1)) for i in range(5)
                ]
                await wait_for(lambda: server.stats()["inflight"] == 5)

                stop_task = asyncio.ensure_future(server.stop())
                await asyncio.sleep(0.05)
                assert not stop_task.done(), "stop() returned with work in flight"
                backend.release()
                await stop_task

                # Zero dropped: every parked request got its response.
                replies = await asyncio.gather(*pending)
                assert [r.distance for r in replies] == [1.0] * 5
                assert backend.served == 5
                await client.close()

        run(main())

    def test_drain_refuses_new_connections(self):
        backend = BlockingBackend()
        backend.release()

        async def main():
            async with running_server(backend) as server:
                host, port = server.address
            with pytest.raises(ConnectionError):
                reader, writer = await asyncio.open_connection(host, port)
                await close_writer(writer)

        run(main())

    def test_requests_during_drain_get_draining_retry(self):
        backend = BlockingBackend()

        async def main():
            async with running_server(backend) as server:
                import json

                client = await AsyncClient.connect(*server.address)
                reader, writer = await open_raw(server)

                parked = asyncio.ensure_future(client.query(1, 2))
                await wait_for(lambda: server.stats()["inflight"] == 1)
                stop_task = asyncio.ensure_future(server.stop())
                await wait_for(lambda: server.stats()["draining"])

                payload = json.dumps({"source": 3, "target": 4}).encode()
                writer.write(make_frame(OP_QUERY, 1, payload))
                await writer.drain()
                frame = await read_frame(reader)
                assert frame.op == OP_RETRY
                assert frame.payload["reason"] == "draining"

                backend.release()
                await stop_task
                assert (await parked).distance == 1.0
                await client.close()
                await close_writer(writer)

        run(main())

    def test_stop_is_idempotent(self):
        backend = BlockingBackend()
        backend.release()

        async def main():
            async with running_server(backend) as server:
                await server.stop()
                await server.stop()
                assert not server.is_serving

        run(main())


# ----------------------------------------------------------------------
# Satellite: `repro-experiments serve` CLI end-to-end
# ----------------------------------------------------------------------
def test_cli_serve_end_to_end(tmp_path):
    from repro.experiments.cli import main as cli_main

    announce = tmp_path / "addr"
    rc = []
    thread = threading.Thread(
        target=lambda: rc.append(
            cli_main(
                [
                    "serve",
                    "--method",
                    "BiDijkstra",
                    "--dataset",
                    "NY",
                    "--duration",
                    "6",
                    "--announce",
                    str(announce),
                ]
            )
        ),
        daemon=True,
    )
    thread.start()

    deadline = 60.0
    import time

    start = time.monotonic()
    while not announce.exists():
        assert time.monotonic() - start < deadline, "server never announced"
        assert thread.is_alive(), "serve CLI exited before announcing"
        time.sleep(0.05)
    host, port = announce.read_text().split()

    oracle_graph = load_dataset("NY")
    pairs = list(sample_query_pairs(oracle_graph, 5, seed=9))

    async def main():
        async with await AsyncClient.connect(host, int(port)) as client:
            assert await client.ping() == 0
            for source, target in pairs:
                reply = await client.query(source, target)
                # rel_tol matches the differential harness: the native
                # kernel may associate path sums differently than a
                # from-scratch Dijkstra (last-ulp effect, DESIGN.md §6).
                assert math.isclose(
                    reply.distance,
                    dijkstra_distance(oracle_graph, source, target),
                    rel_tol=1e-9,
                    abs_tol=0.0,
                )
            stats = await client.stats()
            assert stats["server"]["requests_total"] >= len(pairs)

    run(main())
    thread.join(timeout=60.0)
    assert not thread.is_alive(), "serve CLI failed to drain"
    assert rc == [0]


# ----------------------------------------------------------------------
# Satellite: closed-loop load generator
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_quantile_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert quantile(samples, 0.5) == 50.0
        assert quantile(samples, 0.99) == 99.0
        assert quantile(samples, 0.999) == 100.0
        assert quantile(samples, 0.001) == 1.0
        assert quantile([7.0], 0.5) == 7.0
        assert quantile([], 0.5) == 0.0

    def test_scalar_closed_loop(self):
        pairs = [(0, 7), (0, 9), (4, 10), (1, 7)]

        async def main(engine):
            async with running_server(engine) as server:
                host, port = server.address
                report = await run_closed_loop(
                    host,
                    port,
                    pairs,
                    duration_seconds=0.4,
                    concurrency=2,
                    label="scalar",
                )
                assert isinstance(report, LoadReport)
                assert report.label == "scalar"
                assert report.operations > 0
                assert report.queries == report.operations  # scalar plane
                assert report.qps > 0
                assert (
                    report.p50_seconds
                    <= report.p99_seconds
                    <= report.p999_seconds
                )
                payload = report.to_dict()
                assert payload["qps"] == report.qps
                assert "latencies" not in payload

        with build_engine() as engine:
            run(main(engine), timeout=60.0)

    def test_batch_closed_loop_amortises(self):
        pairs = [(0, 7), (0, 9), (4, 10), (1, 7)]

        async def main(engine):
            async with running_server(engine) as server:
                host, port = server.address
                report = await run_closed_loop(
                    host,
                    port,
                    pairs,
                    duration_seconds=0.4,
                    concurrency=2,
                    batch_size=8,
                    label="batch",
                )
                assert report.batch_size == 8
                assert report.queries == report.operations * 8
                assert report.qps > 0

        with build_engine() as engine:
            run(main(engine), timeout=60.0)

    def test_loadgen_counts_retries(self):
        backend = BlockingBackend()
        backend.release()

        async def main():
            async with running_server(backend, max_inflight=1) as server:
                host, port = server.address
                report = await run_closed_loop(
                    host,
                    port,
                    [(1, 2)],
                    duration_seconds=0.3,
                    concurrency=4,
                    label="contended",
                )
                assert report.operations > 0
                assert report.retries >= 0  # RETRYs absorbed, ops completed

        run(main(), timeout=60.0)
