"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.graph.generators import grid_road_network, random_connected_graph
from repro.graph.graph import Graph


def paper_example_graph() -> Graph:
    """A small fixed road network in the spirit of the paper's Figure 2.

    The exact figure weights are not fully recoverable from the text, so the
    tests use a deterministic 14-vertex network with comparable structure and
    verify every index against Dijkstra rather than against hard-coded
    distances.
    """
    graph = Graph(14)
    edges = [
        (0, 8, 6), (0, 9, 2), (8, 9, 3), (8, 11, 2), (9, 11, 7),
        (9, 10, 3), (10, 11, 2), (11, 13, 4), (10, 12, 5), (12, 13, 2),
        (1, 2, 2), (1, 10, 4), (2, 10, 3), (2, 3, 3), (3, 12, 2),
        (3, 4, 5), (4, 5, 2), (4, 13, 3), (5, 6, 3), (6, 13, 4),
        (6, 7, 2), (7, 12, 6), (5, 12, 8),
    ]
    for u, v, w in edges:
        graph.add_edge(u, v, float(w))
    return graph


def random_query_pairs(graph: Graph, count: int, seed: int = 0) -> List[Tuple[int, int]]:
    """Deterministic random (source, target) pairs over the graph's vertices."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    return [(rng.choice(vertices), rng.choice(vertices)) for _ in range(count)]


@pytest.fixture
def example_graph() -> Graph:
    return paper_example_graph()


@pytest.fixture
def small_grid() -> Graph:
    return grid_road_network(6, 6, seed=7)


@pytest.fixture
def medium_grid() -> Graph:
    return grid_road_network(10, 10, seed=11)


@pytest.fixture
def random_graph() -> Graph:
    return random_connected_graph(40, 30, seed=3)
