"""Protocol-level tests of the network query plane: codec + malformed-frame fuzz.

The fuzz classes drive seeded random malformed bytes at a live server —
truncated length prefixes, oversized lengths, bad version bytes, garbage
payloads, mid-frame disconnects, and fully random streams — and assert the
contract from ISSUE/DESIGN §12: every malformed input yields a *typed error
frame* or a *clean connection close*, never a crash and never a hang (each
scenario re-verifies the server still answers on a fresh connection, and
every await sits under a hard timeout).
"""

from __future__ import annotations

import asyncio
import json
import math
import random

import pytest

from repro.exceptions import (
    FrameTooLargeError,
    ProtocolError,
    ProtocolVersionError,
)
from repro.registry import create_index
from repro.serving.engine import ServingEngine
from repro.server import AsyncClient
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FIXED_BODY_BYTES,
    OP_APPLY_BATCH,
    OP_ERROR,
    OP_ONE_TO_MANY,
    OP_PING,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_RESULT,
    OP_RETRY,
    PROTOCOL_VERSION,
    decode_body,
    encode_frame,
    read_frame,
)

from tests.conftest import paper_example_graph
from tests.server_harness import (
    close_writer,
    drain_frames,
    open_raw,
    run,
    running_server,
)

FUZZ_SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def engine():
    """One started single-process engine shared by every protocol test."""
    index = create_index("BiDijkstra", paper_example_graph())
    index.build()
    with ServingEngine(index, cache_capacity=0) as running:
        yield running


def make_body(op: int, seq: int, raw_payload: bytes, version: int = PROTOCOL_VERSION):
    return bytes((version, op)) + seq.to_bytes(4, "big") + raw_payload


def make_frame(op: int, seq: int, raw_payload: bytes, version: int = PROTOCOL_VERSION):
    body = make_body(op, seq, raw_payload, version)
    return len(body).to_bytes(4, "big") + body


async def assert_alive(server) -> None:
    """The liveness probe every fuzz scenario ends with."""
    client = await AsyncClient.connect(*server.address)
    try:
        assert await client.ping() >= 0
    finally:
        await client.close()


# ----------------------------------------------------------------------
# Codec unit tests
# ----------------------------------------------------------------------
class TestCodec:
    def test_roundtrip_simple(self):
        payload = {"source": 3, "target": 9}
        frame = decode_body(encode_frame(OP_QUERY, 17, payload)[4:])
        assert (frame.op, frame.seq, frame.payload) == (OP_QUERY, 17, payload)

    def test_roundtrip_empty_payload(self):
        frame = decode_body(encode_frame(OP_PING, 1)[4:])
        assert frame.op == OP_PING and frame.seq == 1 and frame.payload is None

    def test_roundtrip_infinity_distance(self):
        # Unreachable pairs serve as inf; the stdlib JSON codec round-trips it.
        frame = decode_body(encode_frame(OP_RESULT, 2, {"distance": math.inf})[4:])
        assert frame.payload["distance"] == math.inf

    def test_seq_echo_bounds(self):
        frame = decode_body(encode_frame(OP_PING, 2**32 - 1)[4:])
        assert frame.seq == 2**32 - 1
        with pytest.raises(ProtocolError):
            encode_frame(OP_PING, 2**32)
        with pytest.raises(ProtocolError):
            encode_frame(0x1FF, 1)

    def test_encode_rejects_oversized(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame(OP_QUERY, 1, {"blob": "x" * 64}, max_frame_bytes=32)

    def test_decode_body_too_short(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_body(b"\x01\x01")
        assert not excinfo.value.recoverable

    def test_decode_bad_version(self):
        with pytest.raises(ProtocolVersionError) as excinfo:
            decode_body(make_body(OP_PING, 1, b"", version=9))
        assert excinfo.value.code == "bad_version"
        assert excinfo.value.found == 9

    def test_decode_garbage_json_is_recoverable_with_seq(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_body(make_body(OP_QUERY, 77, b"\xff\x00not-json"))
        assert excinfo.value.code == "bad_payload"
        assert excinfo.value.seq == 77
        assert excinfo.value.recoverable

    def test_read_frame_concatenated_stream(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(OP_PING, 1))
            reader.feed_data(encode_frame(OP_QUERY, 2, {"source": 0, "target": 1}))
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            assert (first.op, first.seq) == (OP_PING, 1)
            assert (second.op, second.seq) == (OP_QUERY, 2)

        run(main())

    def test_read_frame_oversized_prefix(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data((DEFAULT_MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            reader.feed_eof()
            with pytest.raises(FrameTooLargeError):
                await read_frame(reader)

        run(main())

    def test_read_frame_truncated_raises_incomplete(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data((20).to_bytes(4, "big") + b"\x01\x01abc")
            reader.feed_eof()
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame(reader)

        run(main())


# ----------------------------------------------------------------------
# Seeded malformed-frame fuzz against a live server
# ----------------------------------------------------------------------
class TestMalformedFrames:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_truncated_length_prefix_clean_close(self, engine, seed):
        async def main():
            async with running_server(engine) as server:
                rng = random.Random(seed)
                reader, writer = await open_raw(server)
                writer.write(rng.randbytes(rng.randint(1, 3)))
                writer.write_eof()
                assert await drain_frames(reader) == []  # clean close, no crash
                await close_writer(writer)
                await assert_alive(server)

        run(main())

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_oversized_length_prefix_typed_error(self, engine, seed):
        async def main():
            async with running_server(engine) as server:
                rng = random.Random(seed)
                length = DEFAULT_MAX_FRAME_BYTES + rng.randint(1, 2**24)
                reader, writer = await open_raw(server)
                writer.write(length.to_bytes(4, "big") + rng.randbytes(16))
                await writer.drain()
                frames = await drain_frames(reader)
                assert [f.op for f in frames] == [OP_ERROR]
                assert frames[0].payload["code"] == "frame_too_large"
                await close_writer(writer)
                await assert_alive(server)

        run(main())

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_bad_version_byte_typed_error(self, engine, seed):
        async def main():
            async with running_server(engine) as server:
                rng = random.Random(seed)
                version = rng.choice([0] + list(range(2, 256)))
                reader, writer = await open_raw(server)
                writer.write(make_frame(OP_PING, 5, b"", version=version))
                await writer.drain()
                frames = await drain_frames(reader)
                assert [f.op for f in frames] == [OP_ERROR]
                assert frames[0].payload["code"] == "bad_version"
                await close_writer(writer)
                await assert_alive(server)

        run(main())

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_garbage_payload_typed_error_keeps_connection(self, engine, seed):
        async def main():
            async with running_server(engine) as server:
                rng = random.Random(seed)
                garbage = rng.randbytes(rng.randint(1, 64))
                seq = rng.randint(1, 2**31)
                reader, writer = await open_raw(server)
                writer.write(make_frame(OP_QUERY, seq, garbage))
                # The stream stayed in sync, so the same connection must
                # still answer a valid request afterwards.
                writer.write(make_frame(OP_PING, seq + 1, b""))
                await writer.drain()
                error = await read_frame(reader)
                assert error.op == OP_ERROR
                assert error.payload["code"] == "bad_payload"
                assert error.seq == seq
                pong = await read_frame(reader)
                assert pong.op == OP_RESULT and pong.seq == seq + 1
                await close_writer(writer)
                await assert_alive(server)

        run(main())

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_mid_frame_disconnect_clean_close(self, engine, seed):
        async def main():
            async with running_server(engine) as server:
                rng = random.Random(seed)
                claimed = rng.randint(FIXED_BODY_BYTES + 10, 4096)
                sent = rng.randint(1, claimed - 1)
                reader, writer = await open_raw(server)
                writer.write(claimed.to_bytes(4, "big") + rng.randbytes(sent))
                writer.write_eof()
                assert await drain_frames(reader) == []
                await close_writer(writer)
                await assert_alive(server)

        run(main())

    @pytest.mark.parametrize("seed", range(5))
    def test_random_garbage_stream_never_crashes(self, engine, seed):
        async def main():
            async with running_server(engine) as server:
                rng = random.Random(1000 + seed)
                reader, writer = await open_raw(server)
                writer.write(rng.randbytes(rng.randint(1, 512)))
                writer.write_eof()
                frames = await drain_frames(reader)
                # Typed error frames or a clean close — nothing else.
                assert all(f.op in (OP_ERROR, OP_RETRY) for f in frames)
                await close_writer(writer)
                await assert_alive(server)

        run(main())

    def test_fuzz_barrage_on_one_connection(self, engine):
        """Alternate malformed and valid frames until the server closes us;
        every response is typed, and the server survives the whole barrage."""

        async def main():
            async with running_server(engine) as server:
                rng = random.Random(99)
                reader, writer = await open_raw(server)
                for index in range(20):
                    kind = rng.randrange(3)
                    if kind == 0:
                        writer.write(make_frame(OP_QUERY, index + 1, rng.randbytes(8)))
                    elif kind == 1:
                        payload = json.dumps({"source": 0, "target": 7}).encode()
                        writer.write(make_frame(OP_QUERY, index + 1, payload))
                    else:
                        writer.write(make_frame(rng.randint(0x20, 0x7F), index + 1, b"{}"))
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        break
                writer.write_eof()
                frames = await drain_frames(reader)
                assert frames, "server answered nothing on a syncable stream"
                assert all(f.op in (OP_RESULT, OP_ERROR, OP_RETRY) for f in frames)
                await close_writer(writer)
                await assert_alive(server)

        run(main())


# ----------------------------------------------------------------------
# Typed request-level errors (well-formed frames, bad content)
# ----------------------------------------------------------------------
BAD_PAYLOADS = [
    (OP_QUERY, None, "bad_payload"),
    (OP_QUERY, {"source": 0}, "bad_payload"),
    (OP_QUERY, {"source": "a", "target": 1}, "bad_payload"),
    (OP_QUERY, {"source": True, "target": 1}, "bad_payload"),
    (OP_QUERY_BATCH, {"pairs": []}, "bad_payload"),
    (OP_QUERY_BATCH, {"pairs": [[1, 2, 3]]}, "bad_payload"),
    (OP_QUERY_BATCH, {"pairs": "nope"}, "bad_payload"),
    (OP_ONE_TO_MANY, {"source": 0, "targets": []}, "bad_payload"),
    (OP_ONE_TO_MANY, {"source": 0, "targets": [1, "x"]}, "bad_payload"),
    (OP_APPLY_BATCH, {"updates": [[0, 8, 6.0]]}, "bad_payload"),
    (OP_APPLY_BATCH, {"updates": [[0, 8, "w", 3.0]]}, "bad_payload"),
    (OP_APPLY_BATCH, {}, "bad_payload"),
]


class TestTypedRequestErrors:
    @pytest.mark.parametrize(
        "op,payload,code",
        BAD_PAYLOADS,
        ids=[f"case{i}" for i in range(len(BAD_PAYLOADS))],
    )
    def test_bad_payload_shapes(self, engine, op, payload, code):
        async def main():
            async with running_server(engine) as server:
                reader, writer = await open_raw(server)
                raw = b"" if payload is None else json.dumps(payload).encode()
                writer.write(make_frame(op, 3, raw))
                writer.write(make_frame(OP_PING, 4, b""))
                await writer.drain()
                # Responses may interleave (pings answer inline, errors via
                # the task path) — match by echoed seq, not arrival order.
                by_seq = {}
                for _ in range(2):
                    frame = await read_frame(reader)
                    by_seq[frame.seq] = frame
                assert by_seq[3].op == OP_ERROR
                assert by_seq[3].payload["code"] == code
                assert by_seq[4].op == OP_RESULT  # connection still usable
                await close_writer(writer)

        run(main())

    def test_unknown_op_typed_error(self, engine):
        async def main():
            async with running_server(engine) as server:
                reader, writer = await open_raw(server)
                writer.write(make_frame(0x55, 9, b"{}"))
                await writer.drain()
                error = await read_frame(reader)
                assert error.op == OP_ERROR and error.seq == 9
                assert error.payload["code"] == "unknown_op"
                await close_writer(writer)

        run(main())

    def test_zero_length_frame_rejected(self, engine):
        async def main():
            async with running_server(engine) as server:
                reader, writer = await open_raw(server)
                writer.write((0).to_bytes(4, "big"))
                await writer.drain()
                frames = await drain_frames(reader)
                assert [f.op for f in frames] == [OP_ERROR]
                assert frames[0].payload["code"] == "malformed_frame"
                await close_writer(writer)
                await assert_alive(server)

        run(main())

    def test_vertex_not_found(self, engine):
        async def main():
            async with running_server(engine) as server:
                client = await AsyncClient.connect(*server.address)
                try:
                    from repro.exceptions import RemoteServerError

                    with pytest.raises(RemoteServerError) as excinfo:
                        await client.query(0, 999_999)
                    assert excinfo.value.code == "vertex_not_found"
                    # Typed failure, connection intact.
                    assert (await client.query(0, 7)).distance == 16.0
                finally:
                    await client.close()

        run(main())

    def test_apply_batch_unknown_edge_typed_error(self, engine):
        async def main():
            async with running_server(engine) as server:
                client = await AsyncClient.connect(*server.address)
                try:
                    from repro.exceptions import RemoteServerError

                    with pytest.raises(RemoteServerError) as excinfo:
                        await client.apply_batch([(0, 13, 1.0, 2.0)])
                    assert excinfo.value.code == "edge_not_found"
                finally:
                    await client.close()

        run(main())

    def test_apply_batch_invalid_weight_typed_error(self, engine):
        async def main():
            async with running_server(engine) as server:
                client = await AsyncClient.connect(*server.address)
                try:
                    from repro.exceptions import RemoteServerError

                    with pytest.raises(RemoteServerError) as excinfo:
                        await client.apply_batch([(0, 8, 6.0, -1.0)])
                    assert excinfo.value.code == "invalid_weight"
                finally:
                    await client.close()

        run(main())

    def test_apply_on_stopped_engine_typed_error(self):
        index = create_index("BiDijkstra", paper_example_graph())
        index.build()
        stopped = ServingEngine(index, cache_capacity=0)  # never started

        async def main():
            async with running_server(stopped) as server:
                client = await AsyncClient.connect(*server.address)
                try:
                    from repro.exceptions import RemoteServerError

                    with pytest.raises(RemoteServerError) as excinfo:
                        await client.apply_batch([(0, 8, 6.0, 3.0)])
                    assert excinfo.value.code == "engine_stopped"
                    # Queries need no maintenance worker — still served.
                    assert (await client.query(0, 9)).distance == 2.0
                finally:
                    await client.close()

        run(main())
