"""Unit tests for the throughput substrate: parallel model, QoS bounds, simulator, evaluator."""

import math

import pytest

from repro.base import StageTiming, UpdateReport
from repro.core.postmhl import PostMHLIndex
from repro.exceptions import WorkloadError
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_batch
from repro.labeling.h2h import DH2HIndex
from repro.throughput.evaluator import ThroughputEvaluator, measure_query_cost
from repro.throughput.parallel import (
    cumulative_release_times,
    lpt_makespan,
    parallel_speedup,
    report_wall_seconds,
    stage_wall_seconds,
)
from repro.throughput.qos import (
    StageSegment,
    build_segments,
    interval_service_moments,
    lemma1_max_throughput,
    multistage_max_throughput,
    pollaczek_khinchine_response,
    qos_constrained_rate,
)
from repro.throughput.queue_sim import QueueSimulator
from repro.throughput.workload import (
    poisson_arrival_times,
    sample_query_pairs,
)
from repro.partitioning.natural_cut import natural_cut_partition


class TestParallelModel:
    def test_single_worker_is_sequential(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_many_workers_bounded_by_longest_job(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 10) == pytest.approx(3.0)

    def test_two_workers(self):
        # LPT: 3 -> w1, 2 -> w2, 1 -> w2 => makespan 3
        assert lpt_makespan([1.0, 2.0, 3.0], 2) == pytest.approx(3.0)

    def test_empty_jobs(self):
        assert lpt_makespan([], 4) == 0.0
        assert lpt_makespan([0.0, 0.0], 4) == 0.0

    def test_invalid_workers(self):
        with pytest.raises(WorkloadError):
            lpt_makespan([1.0], 0)

    def test_speedup_monotone_in_workers(self):
        times = [0.5, 0.4, 0.3, 0.2, 0.1, 0.6, 0.7, 0.8]
        speedups = [parallel_speedup(times, p) for p in (1, 2, 4, 8, 16)]
        assert speedups[0] == pytest.approx(1.0)
        for a, b in zip(speedups, speedups[1:]):
            assert b >= a - 1e-9
        # Plateau: more workers than jobs cannot help further.
        assert parallel_speedup(times, 8) == pytest.approx(parallel_speedup(times, 160))

    def test_stage_and_report_wall_seconds(self):
        report = UpdateReport(
            stages=[
                StageTiming("serial", 1.0),
                StageTiming("parallel", 4.0, parallel_times=[1.0, 1.0, 1.0, 1.0]),
            ]
        )
        assert stage_wall_seconds(report.stages[1], 4) == pytest.approx(1.0)
        assert report_wall_seconds(report, 4) == pytest.approx(2.0)
        assert report_wall_seconds(report, 1) == pytest.approx(5.0)
        assert cumulative_release_times(report, 4) == pytest.approx([1.0, 2.0])


class TestQoSBounds:
    def test_pk_formula_matches_mm1(self):
        """With exponential service (variance = mean²) P-K reduces to M/M/1."""
        mean = 0.01
        rate = 50.0
        response = pollaczek_khinchine_response(rate, mean, mean ** 2)
        expected = mean / (1.0 - rate * mean)
        assert response == pytest.approx(expected)

    def test_pk_unstable_queue(self):
        assert pollaczek_khinchine_response(200.0, 0.01, 0.0) == math.inf

    def test_qos_rate_zero_when_service_exceeds_qos(self):
        assert qos_constrained_rate(0.5, 0.0, 0.1) == 0.0

    def test_lemma1_zero_when_update_exceeds_interval(self):
        assert lemma1_max_throughput(0.001, 0.0, 61.0, 60.0, 1.0) == 0.0

    def test_lemma1_capacity_term(self):
        # Deterministic fast queries, generous QoS: capacity term dominates.
        value = lemma1_max_throughput(0.01, 0.0, 30.0, 60.0, 10.0)
        assert value == pytest.approx((60.0 - 30.0) / (0.01 * 60.0))

    def test_lemma1_qos_term(self):
        # Tight QoS with slow queries: the QoS term dominates.
        value = lemma1_max_throughput(0.05, 0.0025, 1.0, 60.0, 0.2)
        qos_term = 2 * (0.2 - 0.05) / (0.0025 + 2 * 0.2 * 0.05 - 0.05 ** 2)
        assert value == pytest.approx(qos_term)

    def test_interval_moments(self):
        segments = [
            StageSegment(0.0, 1.0, 0.2, 0.0),
            StageSegment(1.0, 3.0, 0.1, 0.0),
        ]
        mean, second = interval_service_moments(segments)
        assert mean == pytest.approx((1 * 0.2 + 2 * 0.1) / 3)
        assert second == pytest.approx((1 * 0.04 + 2 * 0.01) / 3)

    def test_multistage_reduces_to_lemma1_with_single_stage(self):
        tq, vq, tu, dt, rq = 0.01, 0.0, 5.0, 60.0, 1.0
        segments = [
            StageSegment(0.0, tu, tq, vq),
            StageSegment(tu, dt, tq, vq),
        ]
        value = multistage_max_throughput(segments, dt, rq, tu)
        # Same query cost in both segments -> capacity is the full interval.
        assert value == pytest.approx(min(
            qos_constrained_rate(tq, vq, rq), (dt / tq) / dt
        ))

    def test_multistage_zero_when_update_too_slow(self):
        segments = [StageSegment(0.0, 60.0, 0.01, 0.0)]
        assert multistage_max_throughput(segments, 60.0, 1.0, 61.0) == 0.0

    def test_faster_final_stage_increases_throughput(self):
        slow = [StageSegment(0.0, 10.0, 0.01, 0.0), StageSegment(10.0, 60.0, 0.01, 0.0)]
        fast = [StageSegment(0.0, 10.0, 0.01, 0.0), StageSegment(10.0, 60.0, 0.0001, 0.0)]
        assert multistage_max_throughput(fast, 60.0, 1.0, 10.0) > multistage_max_throughput(
            slow, 60.0, 1.0, 10.0
        )

    def test_build_segments_covers_interval(self):
        segments = build_segments(
            release_times=[0.5, 2.0, 100.0],
            stage_names=["a", "b", "c"],
            mean_services=[0.1, 0.01, 0.001],
            service_variances=[0.0, 0.0, 0.0],
            update_interval=10.0,
        )
        assert segments[0].start == 0.0
        assert segments[-1].end == 10.0
        total = sum(s.length for s in segments)
        assert total == pytest.approx(10.0)


class TestWorkload:
    def test_poisson_arrivals_rate(self):
        times = poisson_arrival_times(100.0, 10.0, seed=1)
        assert 800 <= len(times) <= 1200
        assert all(0 <= t < 10.0 for t in times)
        assert times == sorted(times)

    def test_poisson_zero_rate(self):
        assert poisson_arrival_times(0.0, 10.0) == []

    def test_sample_pairs_uniform(self):
        graph = grid_road_network(5, 5, seed=0)
        workload = sample_query_pairs(graph, 50, seed=0)
        assert len(workload) == 50
        for s, t in workload:
            assert graph.has_vertex(s) and graph.has_vertex(t)

    def test_sample_pairs_same_partition_bias(self):
        graph = grid_road_network(8, 8, seed=1)
        partitioning = natural_cut_partition(graph, 4, seed=1)
        workload = sample_query_pairs(
            graph, 100, seed=1, partitioning=partitioning, same_partition_fraction=1.0
        )
        assert all(
            partitioning.partition_of(s) == partitioning.partition_of(t)
            for s, t in workload
        )
        workload = sample_query_pairs(
            graph, 100, seed=2, partitioning=partitioning, same_partition_fraction=0.0
        )
        assert all(
            partitioning.partition_of(s) != partitioning.partition_of(t)
            for s, t in workload
        )

    def test_sample_pairs_validation(self):
        graph = grid_road_network(3, 3, seed=0)
        with pytest.raises(WorkloadError):
            sample_query_pairs(graph, -1)
        with pytest.raises(WorkloadError):
            sample_query_pairs(graph, 5, same_partition_fraction=0.5)


class TestQueueSimulator:
    def test_low_rate_meets_qos(self):
        segments = [StageSegment(0.0, 10.0, 0.01, 0.0)]
        simulator = QueueSimulator(segments, 10.0)
        result = simulator.run(arrival_rate=5.0, num_intervals=2, response_qos=0.5, seed=0)
        assert not result.qos_violated
        assert result.completed == result.arrivals

    def test_overload_violates_qos(self):
        segments = [StageSegment(0.0, 10.0, 0.05, 0.0)]
        simulator = QueueSimulator(segments, 10.0)
        result = simulator.run(arrival_rate=100.0, num_intervals=2, response_qos=0.5, seed=0)
        assert result.qos_violated

    def test_max_throughput_close_to_analytic(self):
        mean = 0.02
        segments = [StageSegment(0.0, 10.0, mean, 0.0)]
        simulator = QueueSimulator(segments, 10.0)
        simulated = simulator.max_throughput(response_qos=0.5, num_intervals=2, seed=3)
        analytic = qos_constrained_rate(mean, 0.0, 0.5)
        capacity = 1.0 / mean
        assert simulated <= capacity * 1.05
        assert simulated >= 0.3 * min(analytic, capacity)

    def test_service_time_lookup(self):
        segments = [
            StageSegment(0.0, 5.0, 0.1, 0.0),
            StageSegment(5.0, 10.0, 0.01, 0.0),
        ]
        simulator = QueueSimulator(segments, 10.0)
        assert simulator.service_time_at(1.0) == 0.1
        assert simulator.service_time_at(7.0) == 0.01


class TestEvaluator:
    def test_measure_query_cost(self):
        graph = grid_road_network(5, 5, seed=0)
        from repro.algorithms.dijkstra import bidijkstra

        mean, variance = measure_query_cost(
            lambda s, t: bidijkstra(graph, s, t), [(0, 24), (3, 20), (5, 19)]
        )
        assert mean > 0
        assert variance >= 0

    def test_evaluator_validation(self):
        with pytest.raises(WorkloadError):
            ThroughputEvaluator(update_interval=0, response_qos=1.0)
        with pytest.raises(WorkloadError):
            ThroughputEvaluator(update_interval=1.0, response_qos=0)
        with pytest.raises(WorkloadError):
            ThroughputEvaluator(update_interval=1.0, response_qos=1.0, threads=0)

    def test_multistage_index_beats_plain_dh2h(self):
        """The core claim (shape): PostMHL sustains at least DH2H's throughput."""
        graph_a = grid_road_network(8, 8, seed=4)
        graph_b = graph_a.copy()
        workload = sample_query_pairs(graph_a, 30, seed=4)
        evaluator = ThroughputEvaluator(
            update_interval=2.0, response_qos=0.2, threads=4, query_sample_size=20
        )

        dh2h = DH2HIndex(graph_a)
        dh2h.build()
        postmhl = PostMHLIndex(graph_b, bandwidth=12, expected_partitions=4)
        postmhl.build()

        batch_a = generate_update_batch(graph_a, volume=10, seed=4)
        batch_b = generate_update_batch(graph_b, volume=10, seed=4)
        result_dh2h = evaluator.evaluate(dh2h, batch_a, workload)
        result_post = evaluator.evaluate(postmhl, batch_b, workload)

        assert result_post.max_throughput > 0
        assert result_post.max_throughput >= 0.5 * result_dh2h.max_throughput

    def test_qps_evolution_monotone(self):
        graph = grid_road_network(8, 8, seed=5)
        index = PostMHLIndex(graph, bandwidth=12, expected_partitions=4)
        index.build()
        workload = sample_query_pairs(graph, 20, seed=5)
        evaluator = ThroughputEvaluator(
            update_interval=1.0, response_qos=0.5, threads=4, query_sample_size=10
        )
        report = index.apply_batch(generate_update_batch(graph, volume=10, seed=5))
        samples = evaluator.qps_evolution(index, report, workload, num_points=10)
        assert len(samples) == 10
        values = [qps for _, qps in samples]
        for a, b in zip(values, values[1:]):
            assert b >= a - 1e-9
