"""Unit tests for the partitioning package."""

import pytest

from repro.exceptions import PartitioningError
from repro.graph.generators import grid_road_network, random_connected_graph
from repro.partitioning.base import Partitioning, partitioning_from_sets
from repro.partitioning.bfs_grow import bfs_partition, refine_boundary
from repro.partitioning.kdtree import kdtree_partition
from repro.partitioning.natural_cut import natural_cut_partition
from repro.partitioning.ordering import (
    boundary_first_order,
    boundary_first_tiers,
    rank_of,
    restrict_order,
)
from repro.partitioning.td_partition import td_partition
from repro.treedec.mde import contract_graph
from repro.treedec.tree import TreeDecomposition


class TestPartitioningBase:
    def test_from_sets(self):
        graph = grid_road_network(4, 4, seed=0)
        groups = [list(range(0, 8)), list(range(8, 16))]
        partitioning = partitioning_from_sets(graph, groups)
        assert partitioning.num_partitions == 2
        assert partitioning.partition_vertices(0) == list(range(0, 8))
        assert partitioning.partition_of(9) == 1

    def test_duplicate_assignment_rejected(self):
        graph = grid_road_network(3, 3, seed=0)
        with pytest.raises(PartitioningError):
            partitioning_from_sets(graph, [[0, 1], [1, 2]])

    def test_missing_vertex_rejected(self):
        graph = grid_road_network(3, 3, seed=0)
        with pytest.raises(PartitioningError):
            Partitioning(graph, {0: 0})

    def test_empty_partition_rejected(self):
        graph = grid_road_network(3, 3, seed=0)
        assignment = {v: 0 for v in graph.vertices()}
        assignment[0] = 2  # ids 0 and 2 used, 1 missing -> non-contiguous
        with pytest.raises(PartitioningError):
            Partitioning(graph, assignment)

    def test_boundary_definition(self):
        graph = grid_road_network(4, 4, seed=0)
        partitioning = partitioning_from_sets(
            graph, [list(range(0, 8)), list(range(8, 16))]
        )
        for pid in range(2):
            for b in partitioning.boundary(pid):
                assert partitioning.partition_of(b) == pid
                assert any(
                    partitioning.partition_of(u) != pid
                    for u in graph.neighbors(b)
                )
        inter = partitioning.inter_edges()
        assert all(
            partitioning.partition_of(u) != partitioning.partition_of(v)
            for u, v, _ in inter
        )
        assert partitioning.edge_cut() == len(inter)

    def test_statistics(self):
        graph = grid_road_network(4, 4, seed=0)
        partitioning = partitioning_from_sets(
            graph, [list(range(0, 8)), list(range(8, 16))]
        )
        assert partitioning.sizes() == [8, 8]
        assert partitioning.imbalance() == pytest.approx(1.0)
        assert partitioning.max_boundary_size() >= 1
        assert partitioning.validate() == []


@pytest.mark.parametrize("partitioner", ["bfs", "kdtree", "natural"])
@pytest.mark.parametrize("k", [2, 4, 8])
class TestPartitioners:
    def _run(self, partitioner, graph, k):
        if partitioner == "bfs":
            return bfs_partition(graph, k, seed=1)
        if partitioner == "kdtree":
            return kdtree_partition(graph, k)
        return natural_cut_partition(graph, k, seed=1)

    def test_cover_and_balance(self, partitioner, k):
        graph = grid_road_network(10, 10, seed=3)
        partitioning = self._run(partitioner, graph, k)
        assert partitioning.num_partitions == k
        assert sum(partitioning.sizes()) == graph.num_vertices
        assert partitioning.validate() == []
        assert partitioning.imbalance() < 2.5

    def test_boundary_not_everything(self, partitioner, k):
        graph = grid_road_network(10, 10, seed=4)
        partitioning = self._run(partitioner, graph, k)
        assert len(partitioning.all_boundary()) < graph.num_vertices


class TestPartitionerEdgeCases:
    def test_single_partition(self):
        graph = grid_road_network(4, 4, seed=0)
        partitioning = bfs_partition(graph, 1, seed=0)
        assert partitioning.num_partitions == 1
        assert partitioning.all_boundary() == set()

    def test_too_many_partitions_rejected(self):
        graph = grid_road_network(2, 2, seed=0)
        with pytest.raises(PartitioningError):
            bfs_partition(graph, 10, seed=0)
        with pytest.raises(PartitioningError):
            kdtree_partition(graph, 10)

    def test_kdtree_requires_coordinates(self):
        graph = random_connected_graph(20, 10, seed=0)
        with pytest.raises(PartitioningError):
            kdtree_partition(graph, 2)

    def test_refinement_never_worse(self):
        graph = grid_road_network(8, 8, seed=5)
        initial = bfs_partition(graph, 4, seed=5)
        refined = refine_boundary(initial)
        assert refined.edge_cut() <= initial.edge_cut()
        assert refined.validate() == []


class TestBoundaryFirstOrdering:
    def test_boundary_ranks_are_highest(self):
        graph = grid_road_network(8, 8, seed=6)
        partitioning = natural_cut_partition(graph, 4, seed=6)
        order = boundary_first_order(graph, partitioning)
        rank = rank_of(order)
        boundary = partitioning.all_boundary()
        max_non_boundary = max(rank[v] for v in graph.vertices() if v not in boundary)
        min_boundary = min(rank[v] for v in boundary)
        assert min_boundary > max_non_boundary

    def test_restrict_order_preserves_relative_order(self):
        order = [5, 3, 8, 1, 2]
        assert restrict_order(order, [1, 8, 5]) == [5, 8, 1]

    def test_tiers(self):
        graph = grid_road_network(6, 6, seed=7)
        partitioning = natural_cut_partition(graph, 4, seed=7)
        tiers = boundary_first_tiers(partitioning)
        for v in graph.vertices():
            assert tiers[v] == (1 if v in partitioning.all_boundary() else 0)


class TestTDPartitioning:
    def _tree(self, rows=10, cols=10, seed=8):
        graph = grid_road_network(rows, cols, seed=seed)
        return graph, TreeDecomposition.from_contraction(contract_graph(graph))

    def test_structure_valid(self):
        graph, tree = self._tree()
        result = td_partition(tree, bandwidth=12, expected_partitions=4)
        assert result.validate() == []
        assert result.num_partitions >= 1
        # Partition = root plus its descendants, boundary = root's neighbour set.
        for pid, root in enumerate(result.roots):
            assert set(result.partition_vertices[pid]) == set(tree.subtree(root))
            assert result.boundary[pid] == sorted(tree.neighbors(root))
            assert len(result.boundary[pid]) <= 12

    def test_boundary_vertices_are_overlay(self):
        graph, tree = self._tree(seed=9)
        result = td_partition(tree, bandwidth=12, expected_partitions=4)
        for boundary in result.boundary:
            for b in boundary:
                assert b in result.overlay_vertices

    def test_partition_sizes_within_bounds(self):
        graph, tree = self._tree(seed=10)
        ke = 4
        result = td_partition(tree, bandwidth=12, expected_partitions=ke,
                              beta_lower=0.1, beta_upper=2.0)
        ideal = tree.num_vertices / ke
        for size in result.sizes():
            assert 0.1 * ideal <= size <= 2.0 * ideal

    def test_subtrees_are_disjoint(self):
        graph, tree = self._tree(seed=11)
        result = td_partition(tree, bandwidth=12, expected_partitions=6)
        seen = set()
        for members in result.partition_vertices:
            assert not (seen & set(members))
            seen.update(members)

    def test_invalid_parameters(self):
        graph, tree = self._tree(4, 4, seed=0)
        with pytest.raises(PartitioningError):
            td_partition(tree, bandwidth=0, expected_partitions=2)
        with pytest.raises(PartitioningError):
            td_partition(tree, bandwidth=5, expected_partitions=0)
        with pytest.raises(PartitioningError):
            td_partition(tree, bandwidth=5, expected_partitions=2, beta_lower=3, beta_upper=2)

    def test_impossible_constraints_give_no_partitions(self):
        graph, tree = self._tree(5, 5, seed=1)
        result = td_partition(tree, bandwidth=1, expected_partitions=2,
                              beta_lower=0.99, beta_upper=1.0)
        assert result.num_partitions == 0
        assert result.overlay_vertices == set(graph.vertices())
