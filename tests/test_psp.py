"""Unit tests for the PSP framework: overlay, no-boundary and post-boundary indexes."""

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.graph.generators import grid_road_network, highway_network
from repro.graph.updates import generate_update_batch, generate_update_stream
from repro.partitioning.natural_cut import natural_cut_partition
from repro.partitioning.ordering import boundary_first_order
from repro.psp.no_boundary import NCHPIndex, NoBoundaryPSPIndex
from repro.psp.overlay import OverlayIndex, build_overlay_graph
from repro.psp.partition_family import PartitionIndexFamily
from repro.psp.post_boundary import PostBoundaryPSPIndex, PTDPIndex

from tests.conftest import random_query_pairs


def build_family(graph, k=4, seed=0, with_labels=True):
    partitioning = natural_cut_partition(graph, k, seed=seed)
    order = boundary_first_order(graph, partitioning)
    family = PartitionIndexFamily(partitioning, order, with_labels=with_labels)
    family.build()
    return partitioning, order, family


class TestOverlay:
    def test_overlay_preserves_boundary_distances(self):
        graph = grid_road_network(8, 8, seed=1)
        partitioning, order, family = build_family(graph)
        overlay = OverlayIndex(partitioning, family, order)
        overlay.build()
        boundary = sorted(partitioning.all_boundary())
        for b1 in boundary[:6]:
            for b2 in boundary[-6:]:
                assert overlay.query(b1, b2) == pytest.approx(
                    dijkstra_distance(graph, b1, b2)
                ), (b1, b2)

    def test_overlay_graph_vertices_are_boundary(self):
        graph = grid_road_network(8, 8, seed=2)
        partitioning, order, family = build_family(graph)
        overlay_graph = build_overlay_graph(partitioning, family)
        assert set(overlay_graph.vertices()) == partitioning.all_boundary()

    def test_boundary_pair_distances_match_global(self):
        graph = grid_road_network(8, 8, seed=3)
        partitioning, order, family = build_family(graph)
        overlay = OverlayIndex(partitioning, family, order)
        overlay.build()
        for pid in range(partitioning.num_partitions):
            distances = overlay.boundary_pair_distances(pid)
            for (b1, b2), d in list(distances.items())[:20]:
                assert d == pytest.approx(dijkstra_distance(graph, b1, b2))

    def test_overlay_update_keeps_boundary_distances(self):
        graph = grid_road_network(8, 8, seed=4)
        partitioning, order, family = build_family(graph)
        overlay = OverlayIndex(partitioning, family, order)
        overlay.build()

        batch = generate_update_batch(graph, volume=12, seed=4)
        batch.apply(graph)
        # Maintain partitions then feed boundary changes into the overlay.
        changed_boundary = {}
        per_partition = {}
        for update in batch:
            pu, pv = partitioning.partition_of(update.u), partitioning.partition_of(update.v)
            if pu == pv:
                per_partition.setdefault(pu, []).append(update)
        for pid, updates in per_partition.items():
            changed_edges = family.apply_edge_updates(pid, updates)
            changed_report = family.update_shortcuts(pid, changed_edges)
            family.update_labels(pid, changed_report.keys())
            boundary = partitioning.boundary(pid)
            for v, neighbours in changed_report.items():
                if v in boundary:
                    for u in neighbours:
                        if u in boundary:
                            changed_boundary[(v, u)] = family.contractions[pid].shortcuts[v][u]
        inter = [
            u for u in batch
            if partitioning.partition_of(u.u) != partitioning.partition_of(u.v)
        ]
        overlay.apply_updates(inter, changed_boundary)

        boundary = sorted(partitioning.all_boundary())
        for b1 in boundary[:5]:
            for b2 in boundary[-5:]:
                assert overlay.query(b1, b2) == pytest.approx(
                    dijkstra_distance(graph, b1, b2)
                )


class TestPartitionFamily:
    def test_partition_queries_are_local_distances(self):
        graph = grid_road_network(8, 8, seed=5)
        partitioning, order, family = build_family(graph)
        for pid in range(partitioning.num_partitions):
            subgraph = family.graphs[pid]
            members = partitioning.partition_vertices(pid)
            for s in members[:4]:
                for t in members[-4:]:
                    assert family.query(pid, s, t) == pytest.approx(
                        dijkstra_distance(subgraph, s, t)
                    )

    def test_ch_family_matches_h2h_family(self):
        graph = grid_road_network(7, 7, seed=6)
        partitioning, order, family_h2h = build_family(graph, with_labels=True)
        family_ch = PartitionIndexFamily(partitioning, order, with_labels=False)
        family_ch.build()
        for pid in range(partitioning.num_partitions):
            members = partitioning.partition_vertices(pid)
            for s in members[:3]:
                for t in members[-3:]:
                    assert family_ch.query(pid, s, t) == pytest.approx(
                        family_h2h.query(pid, s, t)
                    )

    def test_index_size_positive(self):
        graph = grid_road_network(6, 6, seed=7)
        _, _, family = build_family(graph)
        assert family.index_size() > 0


@pytest.mark.parametrize("index_cls", [NoBoundaryPSPIndex, PostBoundaryPSPIndex])
@pytest.mark.parametrize("underlying", ["h2h", "ch"])
class TestPSPIndexCorrectness:
    def test_queries_match_dijkstra(self, index_cls, underlying):
        graph = grid_road_network(8, 8, seed=8)
        index = index_cls(graph, num_partitions=4, underlying=underlying, seed=8)
        index.build()
        for s, t in random_query_pairs(graph, 40, seed=8):
            assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t)), (s, t)

    def test_queries_after_updates(self, index_cls, underlying):
        graph = grid_road_network(7, 7, seed=9)
        index = index_cls(graph, num_partitions=4, underlying=underlying, seed=9)
        index.build()
        for batch in generate_update_stream(graph, num_batches=3, volume=8, seed=9):
            index.apply_batch(batch)
            for s, t in random_query_pairs(graph, 25, seed=9):
                assert index.query(s, t) == pytest.approx(
                    dijkstra_distance(graph, s, t)
                ), (s, t)


class TestPSPBaselines:
    def test_nchp_and_ptdp_names(self):
        graph = grid_road_network(5, 5, seed=0)
        assert NCHPIndex(graph).name == "N-CH-P"
        assert PTDPIndex(graph).name == "P-TD-P"

    def test_nchp_on_highway_network(self):
        graph = highway_network(clusters=4, cluster_size=16, seed=1)
        index = NCHPIndex(graph, num_partitions=4, seed=1)
        index.build()
        for s, t in random_query_pairs(graph, 30, seed=1):
            assert index.query(s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_ptdp_update_report_stages(self):
        graph = grid_road_network(6, 6, seed=2)
        index = PTDPIndex(graph, num_partitions=4, seed=2)
        index.build()
        report = index.apply_batch(generate_update_batch(graph, volume=8, seed=2))
        names = [s.name for s in report.stages]
        assert names == [
            "edge_update",
            "partition_update",
            "overlay_update",
            "post_boundary_update",
        ]
        assert report.total_seconds >= 0.0

    def test_index_sizes_ordering(self):
        """Post-boundary stores strictly more than no-boundary (extra {L'_i})."""
        graph = grid_road_network(6, 6, seed=3)
        no_boundary = NoBoundaryPSPIndex(graph.copy(), num_partitions=4, seed=3)
        no_boundary.build()
        post_boundary = PostBoundaryPSPIndex(graph.copy(), num_partitions=4, seed=3)
        post_boundary.build()
        assert post_boundary.index_size() > no_boundary.index_size()

    def test_same_partition_queries(self):
        graph = grid_road_network(8, 8, seed=10)
        index = PostBoundaryPSPIndex(graph, num_partitions=4, seed=10)
        index.build()
        partitioning = index.partitioning
        for pid in range(partitioning.num_partitions):
            members = partitioning.partition_vertices(pid)
            for s in members[:4]:
                for t in members[-4:]:
                    assert index.query(s, t) == pytest.approx(
                        dijkstra_distance(graph, s, t)
                    )
