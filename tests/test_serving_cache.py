"""Cache and epoch-invalidation coverage: stale-epoch rejection, per-partition
invalidation on ``apply_batch``, and hit/miss accounting under a mixed
query/update workload."""

from __future__ import annotations

import pytest

from repro.algorithms.dijkstra import dijkstra_distance
from repro.core.pmhl import PMHLIndex
from repro.graph.generators import grid_road_network
from repro.graph.updates import EdgeUpdate, UpdateBatch, generate_update_stream
from repro.serving.cache import OVERLAY, EpochDistanceCache
from repro.serving.engine import ServingEngine
from repro.throughput.workload import sample_query_pairs


class TestEpochDistanceCache:
    def test_hit_and_miss_accounting(self):
        cache = EpochDistanceCache(capacity=8)
        assert cache.get(1, 2, epoch=0) is None
        cache.put(1, 2, 5.0, epoch=0, tags=(0, 1))
        assert cache.get(1, 2, epoch=0) == 5.0
        assert cache.get(2, 1, epoch=0) == 5.0  # canonical key: order-insensitive
        stats = cache.snapshot()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_stale_epoch_rejection_drops_entry(self):
        cache = EpochDistanceCache(capacity=8)
        cache.put(1, 2, 5.0, epoch=0)
        assert cache.get(1, 2, epoch=1) is None
        assert cache.stats.stale_rejections == 1
        assert len(cache) == 0  # the stale entry is gone, not just skipped
        # And a lookup at the original epoch is now a plain miss.
        assert cache.get(1, 2, epoch=0) is None
        assert cache.stats.stale_rejections == 1

    def test_partition_invalidation_is_selective(self):
        cache = EpochDistanceCache(capacity=8)
        cache.put(1, 2, 5.0, epoch=0, tags=(0,))
        cache.put(3, 4, 6.0, epoch=0, tags=(1,))
        cache.put(5, 6, 7.0, epoch=0, tags=(0, 1))
        cache.put(7, 8, 8.0, epoch=0, tags=(None,))  # overlay-tagged
        removed = cache.invalidate_partitions({0})
        assert removed == 2
        assert cache.get(3, 4, epoch=0) == 6.0
        assert cache.get(7, 8, epoch=0) == 8.0
        assert cache.get(1, 2, epoch=0) is None
        # None in the affected set matches OVERLAY-tagged entries.
        assert cache.invalidate_partitions({None}) == 1
        assert cache.stats.invalidated == 3

    def test_overlay_sentinel_normalisation(self):
        cache = EpochDistanceCache(capacity=8)
        cache.put(1, 2, 5.0, epoch=0, tags=(None,))
        assert cache.invalidate_partitions({OVERLAY}) == 1

    def test_lru_eviction(self):
        cache = EpochDistanceCache(capacity=2)
        cache.put(1, 2, 1.0, epoch=0)
        cache.put(3, 4, 2.0, epoch=0)
        assert cache.get(1, 2, epoch=0) == 1.0  # refresh (1, 2)
        cache.put(5, 6, 3.0, epoch=0)  # evicts (3, 4), the LRU entry
        assert cache.get(3, 4, epoch=0) is None
        assert cache.get(1, 2, epoch=0) == 1.0
        assert cache.stats.evictions == 1

    def test_invalidate_all(self):
        cache = EpochDistanceCache(capacity=8)
        cache.put(1, 2, 1.0, epoch=0)
        cache.put(3, 4, 2.0, epoch=0)
        assert cache.invalidate_all() == 2
        assert len(cache) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EpochDistanceCache(capacity=0)


class TestEngineCacheIntegration:
    def _engine(self, graph, **kwargs):
        index = PMHLIndex(graph, num_partitions=4, seed=0)
        return ServingEngine(index, snapshot_limit=8, **kwargs)

    def test_repeat_query_hits_cache_within_epoch(self):
        graph = grid_road_network(6, 6, seed=7)
        engine = self._engine(graph)
        first = engine.serve(0, 35)
        second = engine.serve(0, 35)
        assert not first.from_cache
        assert second.from_cache and second.stage == "cache"
        assert second.distance == first.distance
        assert engine.cache.stats.hits == 1

    def test_apply_batch_invalidates_affected_partitions_only(self):
        graph = grid_road_network(6, 6, seed=7)
        engine = self._engine(graph)
        index = engine.index
        partitioning = index.partitioning

        # One intra-partition update confined to the partition of vertex 0.
        pid = partitioning.partition_of(0)
        edge = next(
            (u, v, w)
            for u, v, w in graph.edges()
            if partitioning.partition_of(u) == pid
            and partitioning.partition_of(v) == pid
        )
        u, v, w = edge
        batch = UpdateBatch([EdgeUpdate(u, v, w, w * 2.0)])

        # Warm the cache with a pair inside the affected partition and a pair
        # entirely outside it.
        inside = [x for x in partitioning.partition_vertices(pid)][:2]
        outside_pid = next(p for p in range(partitioning.num_partitions) if p != pid)
        outside = [x for x in partitioning.partition_vertices(outside_pid)][:2]
        engine.serve(inside[0], inside[1])
        engine.serve(outside[0], outside[1])
        assert len(engine.cache) == 2

        with engine:
            engine.submit_batch(batch)
            engine.wait_for_maintenance()

        # The affected partition's entry is eagerly evicted; the other remains
        # resident but is epoch-stale.
        assert (inside[0], inside[1]) not in engine.cache
        assert (outside[0], outside[1]) in engine.cache
        assert engine.cache.stats.invalidated == 1

        # Serving the untouched pair again rejects the stale entry and
        # recomputes at the new epoch — still exactly the Dijkstra answer.
        result = engine.serve(outside[0], outside[1])
        assert not result.from_cache
        assert result.epoch == 1
        assert engine.cache.stats.stale_rejections == 1
        assert result.distance == pytest.approx(
            dijkstra_distance(engine.graph_at(1), outside[0], outside[1])
        )

    def test_mixed_workload_accounting_consistency(self):
        graph = grid_road_network(6, 6, seed=9)
        engine = self._engine(graph)
        pairs = list(sample_query_pairs(graph, 10, seed=2))
        batches = generate_update_stream(graph, 2, volume=5, seed=4)
        with engine:
            for batch in batches:
                for source, target in pairs:
                    engine.serve(source, target)
                    engine.serve(source, target)  # immediate repeat: cache hit
                engine.submit_batch(batch)
                engine.wait_for_maintenance()
        stats = engine.cache.snapshot()
        assert stats["hits"] > 0
        assert stats["misses"] > 0
        assert stats["hits"] + stats["misses"] == engine.metrics.queries_served
        # Every cache answer was correct for its epoch (sanity via metrics):
        assert engine.metrics.snapshot()["by_stage"]["cache"] == stats["hits"]

    def test_cache_disabled(self):
        graph = grid_road_network(5, 5, seed=3)
        index = PMHLIndex(graph, num_partitions=4, seed=0)
        engine = ServingEngine(index, cache_capacity=0)
        engine.serve(0, 20)
        engine.serve(0, 20)
        assert engine.cache is None
        assert "cache" not in engine.stats()
