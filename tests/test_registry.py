"""Typed index registry: specs, factory, config binding and the deprecated shims."""

from __future__ import annotations

import pytest

from repro import IndexSpec, PAPER_METHODS, create_index, get_spec, registered_methods
from repro.core.pmhl import PMHLIndex, PMHLSpec
from repro.core.postmhl import PostMHLIndex, PostMHLSpec
from repro.experiments.config import DEFAULT_CONFIG
from repro.experiments.methods import ALL_METHODS, QUICK_METHODS, build_method, method_names
from repro.graph.generators import grid_road_network
from repro.registry import experiment_methods, spec_class, spec_from_config

QUICK = DEFAULT_CONFIG.quick()


@pytest.fixture()
def graph():
    return grid_road_network(6, 6, seed=2)


class TestSpecs:
    def test_specs_are_frozen_and_typed(self):
        spec = PMHLSpec(num_partitions=8, seed=3)
        assert spec.num_partitions == 8
        with pytest.raises(Exception):  # dataclasses.FrozenInstanceError
            spec.num_partitions = 2

    def test_replace_returns_new_spec(self):
        spec = PostMHLSpec()
        other = spec.replace(bandwidth=20)
        assert other.bandwidth == 20
        assert spec.bandwidth == 12
        assert isinstance(other, PostMHLSpec)

    def test_replace_rejects_unknown_parameters(self):
        with pytest.raises(TypeError, match="no parameter"):
            PMHLSpec().replace(bandwidth=20)

    def test_get_spec_lookup_is_case_insensitive_with_aliases(self):
        assert isinstance(get_spec("pmhl"), PMHLSpec)
        assert spec_class("NCHP") is spec_class("N-CH-P")
        assert spec_class("ptdp") is spec_class("P-TD-P")

    def test_unknown_method_lists_known_names(self):
        with pytest.raises(ValueError, match="known methods"):
            get_spec("FancyIndex")

    def test_unknown_parameter_lists_accepted_names(self):
        with pytest.raises(TypeError, match="accepted"):
            get_spec("PMHL", bandwidth=3)


class TestCreateIndex:
    def test_from_name_with_overrides(self, graph):
        index = create_index("PMHL", graph, num_partitions=2, seed=5)
        assert isinstance(index, PMHLIndex)
        assert index.num_partitions == 2
        assert index.seed == 5
        assert not index.is_built

    def test_from_spec_instance(self, graph):
        spec = PostMHLSpec(bandwidth=8, expected_partitions=2)
        index = create_index(spec, graph)
        assert isinstance(index, PostMHLIndex)
        assert index.bandwidth == 8

    def test_from_spec_with_overrides(self, graph):
        index = create_index(PostMHLSpec(), graph, bandwidth=9)
        assert index.bandwidth == 9

    def test_every_registered_method_constructs_and_builds(self, graph):
        for name in registered_methods():
            index = create_index(name, graph.copy())
            index.build()
            assert index.is_built
            assert index.name == name

    def test_registry_exposes_spec_base(self):
        for name in registered_methods():
            assert issubclass(spec_class(name), IndexSpec)


class TestConfigBinding:
    def test_spec_from_config_maps_experiment_knobs(self):
        spec = spec_from_config("PMHL", QUICK)
        assert spec.num_partitions == QUICK.partition_number
        assert spec.seed == QUICK.seed
        spec = spec_from_config("PostMHL", QUICK)
        assert spec.bandwidth == QUICK.bandwidth
        assert spec.expected_partitions == QUICK.expected_partitions
        spec = spec_from_config("TOAIN", QUICK)
        assert spec.checkin_fraction == QUICK.toain_checkin_fraction

    def test_paper_methods_order(self):
        assert experiment_methods() == list(PAPER_METHODS)
        assert PAPER_METHODS[0] == "BiDijkstra"
        assert PAPER_METHODS[-1] == "PostMHL"
        assert set(PAPER_METHODS) <= set(registered_methods())


class TestDeprecatedShims:
    """`build_method`/`method_names` keep working but warn (back-compat)."""

    def test_build_method_builds_every_method_and_warns(self, graph):
        for name in ALL_METHODS:
            with pytest.warns(DeprecationWarning, match="create_index"):
                index = build_method(name, graph.copy(), QUICK)
            assert index.name == name
            index.build()
            assert index.is_built

    def test_method_names_warns_and_matches_registry(self):
        with pytest.warns(DeprecationWarning, match="experiment_methods"):
            names = method_names()
        assert names == experiment_methods()
        with pytest.warns(DeprecationWarning):
            quick_names = method_names(quick=True)
        assert set(quick_names) <= set(names)

    def test_build_method_unknown_name_still_value_error(self, graph):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                build_method("FancyIndex", graph, QUICK)

    def test_constants_preserved(self):
        assert ALL_METHODS == PAPER_METHODS
        assert QUICK_METHODS == ALL_METHODS
