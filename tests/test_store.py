"""Persistence suite for ``repro.store`` (see DESIGN.md §8).

The contract under test:

* every registered method round-trips through ``save_index``/``load_index``
  with **bit-identical** scalar / ``query_many`` / ``query_one_to_many``
  results — freshly built and after ``apply_batch``;
* a loaded index is a full peer of the original: it accepts further update
  batches (the kernel epoch advances, reattached stores are invalidated) and
  keeps answering exactly like the original under the same updates;
* ``IndexSpec`` overrides are honored on load (``use_kernels=False`` flips a
  loaded index onto the pure reference path) and unknown overrides fail fast;
* corruption and version skew raise *typed* errors — a truncated payload, a
  schema-version mismatch and a graph-fingerprint mismatch each surface as
  their own ``repro.exceptions`` class instead of wrong distances;
* the serving engine exports epoch-consistent snapshots and warm-starts from
  them, and the experiment build cache reuses snapshots correctly.
"""

from __future__ import annotations

import json
import os

import pytest

try:
    import numpy
except ImportError:  # pragma: no cover - the no-numpy CI job
    numpy = None

from repro.algorithms.dijkstra import dijkstra_distance
from repro.exceptions import (
    SnapshotFormatError,
    SnapshotGraphMismatchError,
    SnapshotUnsupportedError,
    SnapshotVersionError,
)
from repro.graph.generators import grid_road_network
from repro.graph.updates import generate_update_batch
from repro.registry import create_index, get_spec
from repro.serving.engine import ServingEngine
from repro.store import (
    graph_fingerprint,
    load_index,
    read_manifest,
    save_index,
)
from repro.throughput.workload import sample_query_pairs

#: All nine registered methods with small-graph construction parameters.
NINE_SPECS = {
    "BiDijkstra": get_spec("BiDijkstra"),
    "DCH": get_spec("DCH"),
    "DH2H": get_spec("DH2H"),
    "MHL": get_spec("MHL"),
    "TOAIN": get_spec("TOAIN", checkin_fraction=0.25),
    "N-CH-P": get_spec("N-CH-P", num_partitions=4, seed=0),
    "P-TD-P": get_spec("P-TD-P", num_partitions=4, seed=0),
    "PMHL": get_spec("PMHL", num_partitions=4, seed=0),
    "PostMHL": get_spec("PostMHL", bandwidth=10, expected_partitions=4),
}

GRID_SIDE = 8
UPDATE_VOLUME = 12


def _base_graph():
    return grid_road_network(GRID_SIDE, GRID_SIDE, seed=5)


def _query_pairs(graph):
    pairs = list(sample_query_pairs(graph, 40, seed=3))
    return pairs + [(0, 0), (0, 5), (0, 9), (0, 13)]


def _assert_equivalent(original, loaded, pairs):
    """Scalar, one-to-many and pair-batch answers must match bit-for-bit."""
    assert original.query_many(pairs) == loaded.query_many(pairs)
    source = pairs[0][0]
    targets = [t for _, t in pairs]
    assert original.query_one_to_many(source, targets) == loaded.query_one_to_many(
        source, targets
    )
    sample = pairs[:10]
    assert [original.query(s, t) for s, t in sample] == [
        loaded.query(s, t) for s, t in sample
    ]


@pytest.fixture(scope="module")
def built_indexes():
    """Every method built once on the same grid (module-shared, read-mostly)."""
    base = _base_graph()
    built = {}
    for name, spec in NINE_SPECS.items():
        index = create_index(spec, base.copy())
        index.build()
        built[name] = index
    return built


@pytest.fixture(scope="module")
def snapshot_dirs(built_indexes, tmp_path_factory):
    root = tmp_path_factory.mktemp("snapshots")
    paths = {}
    for name, index in built_indexes.items():
        path = str(root / name.replace("/", "_"))
        save_index(index, path)
        paths[name] = path
    return paths


class TestRoundTripFresh:
    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_bit_identical_queries(self, built_indexes, snapshot_dirs, method):
        original = built_indexes[method]
        loaded = load_index(snapshot_dirs[method])
        _assert_equivalent(original, loaded, _query_pairs(original.graph))

    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_loaded_metadata(self, built_indexes, snapshot_dirs, method):
        original = built_indexes[method]
        loaded = load_index(snapshot_dirs[method])
        assert loaded.is_built
        assert loaded.name == original.name
        assert loaded.index_size() == original.index_size()
        assert loaded.graph.num_vertices == original.graph.num_vertices
        assert loaded.graph.num_edges == original.graph.num_edges
        assert graph_fingerprint(loaded.graph) == graph_fingerprint(original.graph)

    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_load_onto_supplied_graph(self, built_indexes, snapshot_dirs, method):
        """A caller-supplied graph with matching fingerprint is accepted."""
        original = built_indexes[method]
        graph = original.graph.copy()
        loaded = load_index(snapshot_dirs[method], graph=graph)
        assert loaded.graph is graph
        _assert_equivalent(original, loaded, _query_pairs(graph)[:20])

    def test_manifest_contents(self, snapshot_dirs):
        manifest = read_manifest(snapshot_dirs["PMHL"])
        assert manifest["method"] == "PMHL"
        assert manifest["spec"]["num_partitions"] == 4
        assert manifest["graph"]["num_vertices"] == GRID_SIDE * GRID_SIDE
        assert manifest["graph"]["fingerprint"].startswith("sha256:")

    def test_use_kernels_override_honored(self, built_indexes, snapshot_dirs):
        for method in ("DH2H", "PMHL"):
            original = built_indexes[method]
            pure = load_index(snapshot_dirs[method], use_kernels=False)
            assert pure.use_kernels is False
            assert pure._kernel_stores == {}
            pairs = _query_pairs(original.graph)[:20]
            assert original.query_many(pairs) == pure.query_many(pairs)
            # The pure path must not have frozen anything while answering.
            assert pure._kernel_stores == {}

    def test_unknown_override_rejected(self, snapshot_dirs):
        with pytest.raises(TypeError):
            load_index(snapshot_dirs["DH2H"], bananas=3)

    def test_double_round_trip(self, built_indexes, tmp_path):
        """A *loaded* index re-saves correctly (the lazily materialised
        structures serialize again) and stays bit-identical two hops out."""
        original = built_indexes["PMHL"]
        first = str(tmp_path / "first")
        save_index(original, first)
        loaded = load_index(first)
        second = str(tmp_path / "second")
        save_index(loaded, second)
        twice = load_index(second)
        pairs = _query_pairs(original.graph)[:20]
        _assert_equivalent(original, twice, pairs)
        # ... and the twice-loaded index still accepts updates.
        batch_a = generate_update_batch(original.graph, UPDATE_VOLUME, seed=6)
        batch_b = generate_update_batch(twice.graph, UPDATE_VOLUME, seed=6)
        fresh = create_index(NINE_SPECS["PMHL"], _base_graph().copy())
        fresh.build()
        fresh.apply_batch(batch_a)
        twice.apply_batch(batch_b)
        assert fresh.query_many(pairs) == twice.query_many(pairs)

    def test_json_backend_round_trip(self, built_indexes, tmp_path):
        """The pure-JSON payload (the no-numpy fallback) is equivalent."""
        for method in ("DH2H", "PostMHL"):
            original = built_indexes[method]
            path = str(tmp_path / f"json-{method}")
            save_index(original, path, backend="json")
            assert read_manifest(path)["payload_backend"] == "json"
            loaded = load_index(path)
            _assert_equivalent(original, loaded, _query_pairs(original.graph)[:20])


class TestRoundTripPostUpdate:
    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_save_after_apply_batch(self, method, tmp_path):
        """An index that has lived through updates snapshots its *current* state."""
        base = _base_graph()
        index = create_index(NINE_SPECS[method], base.copy())
        index.build()
        batch = generate_update_batch(index.graph, UPDATE_VOLUME, seed=2)
        index.apply_batch(batch)

        path = str(tmp_path / "snap")
        save_index(index, path)
        loaded = load_index(path)
        pairs = _query_pairs(index.graph)
        _assert_equivalent(index, loaded, pairs)
        # Sanity against a fresh Dijkstra oracle on the updated graph (the
        # serving suite's tolerance: maintained labels may associate path
        # sums differently than a from-scratch search).
        for source, target in pairs[:10]:
            oracle = dijkstra_distance(loaded.graph, source, target)
            assert abs(loaded.query_many([(source, target)])[0] - oracle) <= 1e-9

    @pytest.mark.parametrize("method", sorted(NINE_SPECS))
    def test_update_after_load(self, built_indexes, snapshot_dirs, method, tmp_path):
        """A loaded index accepts ``apply_batch`` and stays equivalent.

        This exercises the kernel-epoch lifecycle after a load: the first
        queries answer through the *reattached* stores, the update bumps the
        epoch and drops them, and post-update queries answer through freshly
        frozen stores — never through pre-update state.
        """
        # A private original: the module-shared one must stay pristine.
        original = create_index(NINE_SPECS[method], _base_graph().copy())
        original.build()
        loaded = load_index(snapshot_dirs[method])

        pairs = _query_pairs(loaded.graph)
        loaded.query_many(pairs[:5])  # warm the reattached stores
        epoch_before = loaded.kernel_epoch

        batch_original = generate_update_batch(original.graph, UPDATE_VOLUME, seed=4)
        batch_loaded = generate_update_batch(loaded.graph, UPDATE_VOLUME, seed=4)
        original.apply_batch(batch_original)
        loaded.apply_batch(batch_loaded)

        assert loaded.kernel_epoch > epoch_before
        _assert_equivalent(original, loaded, pairs)


class TestCorruptionAndSkew:
    @pytest.fixture()
    def snapshot(self, tmp_path):
        index = create_index(NINE_SPECS["DH2H"], _base_graph().copy())
        index.build()
        path = str(tmp_path / "snap")
        save_index(index, path)
        return path

    def test_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotFormatError):
            load_index(str(tmp_path / "nowhere"))

    def test_truncated_payload(self, snapshot):
        payload = os.path.join(snapshot, read_manifest(snapshot)["payload"])
        size = os.path.getsize(payload)
        with open(payload, "rb+") as handle:
            handle.truncate(size // 2)
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)

    def test_missing_payload(self, snapshot):
        os.remove(os.path.join(snapshot, read_manifest(snapshot)["payload"]))
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)

    def test_corrupt_state_json(self, snapshot):
        with open(os.path.join(snapshot, "state.json"), "w") as handle:
            handle.write("{not json")
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)

    def test_corrupt_manifest(self, snapshot):
        with open(os.path.join(snapshot, "manifest.json"), "w") as handle:
            handle.write("]")
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)

    def test_wrong_format_tag(self, snapshot):
        manifest_path = os.path.join(snapshot, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format"] = "something-else"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)

    def test_schema_version_skew(self, snapshot):
        manifest_path = os.path.join(snapshot, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["schema_version"] = 999
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(SnapshotVersionError) as excinfo:
            load_index(snapshot)
        assert excinfo.value.found == 999

    def test_graph_fingerprint_mismatch(self, snapshot):
        drifted = _base_graph()
        edge = next(iter(drifted.edges()))
        drifted.set_edge_weight(edge[0], edge[1], edge[2] + 1.0)
        with pytest.raises(SnapshotGraphMismatchError):
            load_index(snapshot, graph=drifted)

    def test_resave_over_existing_snapshot(self, snapshot):
        """Overwriting a snapshot in place stays loadable."""
        index = load_index(snapshot)
        save_index(index, snapshot)
        reloaded = load_index(snapshot)
        assert reloaded.query(0, 9) == index.query(0, 9)

    def test_interrupted_overwrite_reads_as_incomplete(self, snapshot):
        """``save_index`` drops the manifest before touching any file, so a
        crash mid-overwrite can never pair an old manifest with new payload
        bytes — the directory reads as a typed format error instead."""
        os.remove(os.path.join(snapshot, "manifest.json"))
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)

    def test_unbuilt_index_rejected(self, tmp_path):
        index = create_index(NINE_SPECS["DH2H"], _base_graph())
        with pytest.raises(SnapshotUnsupportedError):
            save_index(index, str(tmp_path / "snap"))

    def test_unregistered_index_rejected(self, tmp_path):
        from repro.hierarchy.ch import CHIndex

        index = CHIndex(_base_graph())
        index.build()
        with pytest.raises(SnapshotUnsupportedError):
            save_index(index, str(tmp_path / "snap"))

    def test_direct_construction_records_actual_params(self, tmp_path):
        """A registry-less index (no ``spec`` attached) must record the
        parameters it was *actually* built with, not the method defaults."""
        from repro.core.postmhl import PostMHLIndex

        index = PostMHLIndex(_base_graph(), bandwidth=9, expected_partitions=3)
        index.build()
        path = str(tmp_path / "snap")
        save_index(index, path)
        manifest = read_manifest(path)
        assert manifest["spec"]["bandwidth"] == 9
        assert manifest["spec"]["expected_partitions"] == 3
        loaded = load_index(path)
        assert loaded.bandwidth == 9
        assert loaded.expected_partitions == 3
        pairs = _query_pairs(index.graph)[:15]
        assert index.query_many(pairs) == loaded.query_many(pairs)


class TestFingerprint:
    def test_insensitive_to_iteration_order(self):
        a = _base_graph()
        b = _base_graph()
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_sensitive_to_weights_and_structure(self):
        a = _base_graph()
        b = _base_graph()
        edge = next(iter(b.edges()))
        b.set_edge_weight(edge[0], edge[1], edge[2] * 2)
        assert graph_fingerprint(a) != graph_fingerprint(b)
        c = _base_graph()
        c.add_vertex(10_000)
        assert graph_fingerprint(a) != graph_fingerprint(c)


class TestServingIntegration:
    def test_export_and_warm_start(self, tmp_path):
        """Export from a live engine mid-stream, then warm-start a twin.

        The warm-started engine must answer every query exactly like the
        exporting engine did at the exported epoch (Dijkstra oracle on the
        exported graph), without rebuilding the index.
        """
        index = create_index(NINE_SPECS["PMHL"], _base_graph().copy())
        path = str(tmp_path / "engine-snap")
        with ServingEngine(index, cache_capacity=0) as engine:
            for seed in (1, 2):
                engine.submit_batch(
                    generate_update_batch(index.graph, UPDATE_VOLUME, seed=seed)
                )
            exported_epoch = engine.export_snapshot(path)
            assert exported_epoch == 2
        assert read_manifest(path)["extras"]["epoch"] == 2

        warm = ServingEngine.from_snapshot(path, cache_capacity=0)
        assert warm.index.is_built
        pairs = _query_pairs(warm.index.graph)[:15]
        with warm:
            for source, target in pairs:
                result = warm.serve(source, target)
                oracle = dijkstra_distance(warm.index.graph, source, target)
                assert abs(result.distance - oracle) <= 1e-9

    def test_export_on_stopped_engine(self, tmp_path):
        index = create_index(NINE_SPECS["DH2H"], _base_graph().copy())
        engine = ServingEngine(index, cache_capacity=0)
        path = str(tmp_path / "stopped-snap")
        assert engine.export_snapshot(path) == 0
        loaded = load_index(path)
        assert loaded.query(0, 9) == index.query(0, 9)


class TestBuildCache:
    def test_miss_then_hit(self, tmp_path):
        from repro.experiments import build_cache

        build_cache.set_cache_dir(str(tmp_path))
        try:
            spec = NINE_SPECS["DH2H"]
            graph = _base_graph()
            first = build_cache.load_or_build(spec, graph)
            assert os.path.isdir(
                os.path.join(str(tmp_path), build_cache.cache_key(spec, graph))
            )
            second = build_cache.load_or_build(spec, graph)
            # The hit is a fresh, isolated instance on its own graph copy.
            assert second is not first
            assert second.graph is not graph
            pairs = _query_pairs(graph)[:15]
            assert first.query_many(pairs) == second.query_many(pairs)
        finally:
            build_cache.set_cache_dir(None)

    def test_disabled_without_directory(self):
        from repro.experiments import build_cache

        build_cache.set_cache_dir(None)
        if build_cache.CACHE_ENV in os.environ:  # pragma: no cover - env guard
            pytest.skip("REPRO_BUILD_CACHE set in the environment")
        index = build_cache.load_or_build(NINE_SPECS["DH2H"], _base_graph())
        assert index.is_built

    def test_key_separates_params_and_graph(self):
        from repro.experiments import build_cache

        graph = _base_graph()
        key_a = build_cache.cache_key(get_spec("PMHL", num_partitions=2), graph)
        key_b = build_cache.cache_key(get_spec("PMHL", num_partitions=4), graph)
        assert key_a != key_b
        other = grid_road_network(GRID_SIDE, GRID_SIDE, seed=6)
        key_c = build_cache.cache_key(get_spec("PMHL", num_partitions=2), other)
        assert key_a != key_c


class TestLazyDictConcurrency:
    def test_concurrent_first_touch_sees_full_contents(self):
        """Racing first reads (warm-started multi-thread serving) must never
        observe a partially materialised dict."""
        import threading
        import time

        from repro.store.codec import LazyDict

        def loader(target):
            for i in range(500):
                target[i] = i
                if i == 1:
                    time.sleep(0.02)  # widen the window racing readers hit

        lazy = LazyDict(loader)
        errors = []
        started = threading.Barrier(6)

        def reader():
            try:
                started.wait()
                assert lazy[499] == 499
                assert len(lazy) == 500
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


@pytest.mark.skipif(numpy is None, reason="npz payloads require numpy")
class TestKernelReattachment:
    def test_stores_attached_without_refreeze(self, built_indexes, snapshot_dirs):
        """The persisted stores are live immediately after the load."""
        loaded = load_index(snapshot_dirs["DH2H"])
        assert "labels" in loaded._kernel_stores
        store = loaded._kernel_stores["labels"]
        loaded.query(0, 9)
        assert loaded._kernel_stores["labels"] is store  # no refreeze happened

    def test_attached_store_dropped_on_update(self, snapshot_dirs):
        loaded = load_index(snapshot_dirs["DH2H"])
        attached = loaded._kernel_stores["labels"]
        batch = generate_update_batch(loaded.graph, UPDATE_VOLUME, seed=9)
        loaded.apply_batch(batch)
        refrozen = loaded._label_store()
        assert refrozen is not attached
