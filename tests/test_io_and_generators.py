"""Tests for graph I/O, synthetic generators, update batches and validation."""

import pytest

from repro.exceptions import DisconnectedGraphError, GraphError
from repro.graph.generators import (
    DATASET_SPECS,
    dataset_names,
    grid_road_network,
    highway_network,
    load_dataset,
    random_connected_graph,
)
from repro.graph.graph import Graph
from repro.graph.io import (
    read_dimacs_co,
    read_dimacs_gr,
    read_edge_list,
    write_dimacs_co,
    write_dimacs_gr,
    write_edge_list,
)
from repro.graph.updates import (
    EdgeUpdate,
    UpdateBatch,
    generate_update_batch,
    generate_update_stream,
    split_intra_inter,
)
from repro.graph.validation import assert_valid, graph_stats, validate_graph
from repro.partitioning.natural_cut import natural_cut_partition


class TestGenerators:
    def test_grid_network_is_connected_and_planarish(self):
        graph = grid_road_network(10, 12, seed=1)
        assert graph.num_vertices == 120
        assert graph.is_connected()
        assert graph.has_coordinates()
        stats = graph_stats(graph)
        assert 1.5 <= stats.avg_degree <= 4.5

    def test_grid_network_deterministic(self):
        a = grid_road_network(6, 6, seed=3)
        b = grid_road_network(6, 6, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())
        c = grid_road_network(6, 6, seed=4)
        assert sorted(a.edges()) != sorted(c.edges())

    def test_grid_invalid_dimensions(self):
        with pytest.raises(GraphError):
            grid_road_network(0, 5)

    def test_random_connected_graph(self):
        graph = random_connected_graph(30, 20, seed=2)
        assert graph.num_vertices == 30
        assert graph.is_connected()
        with pytest.raises(GraphError):
            random_connected_graph(0, 5)

    def test_highway_network_structure(self):
        graph = highway_network(clusters=3, cluster_size=16, seed=5)
        assert graph.is_connected()
        assert graph.num_vertices >= 3 * 16
        with pytest.raises(GraphError):
            highway_network(clusters=0, cluster_size=4)

    def test_dataset_specs_and_loading(self):
        assert dataset_names() == ["NY", "GD", "FLA", "SC", "EC", "W", "CTR", "USA"]
        assert dataset_names(small_only=True) == ["NY", "GD", "FLA", "SC"]
        sizes = [DATASET_SPECS[name].num_vertices for name in dataset_names()]
        assert sizes == sorted(sizes)
        ny = load_dataset("ny")
        assert ny.num_vertices == DATASET_SPECS["NY"].num_vertices
        with pytest.raises(GraphError):
            load_dataset("MARS")


class TestDimacsIO:
    def test_gr_roundtrip(self, tmp_path):
        graph = grid_road_network(5, 5, seed=1)
        path = tmp_path / "net.gr"
        write_dimacs_gr(graph, path, comment="test network")
        loaded = read_dimacs_gr(path)
        assert loaded.num_vertices == graph.num_vertices
        assert sorted(loaded.edges()) == pytest.approx(sorted(graph.edges()))

    def test_gzip_roundtrip(self, tmp_path):
        graph = grid_road_network(4, 4, seed=2)
        path = tmp_path / "net.gr.gz"
        write_dimacs_gr(graph, path)
        loaded = read_dimacs_gr(path)
        assert loaded.num_edges == graph.num_edges

    def test_co_roundtrip(self, tmp_path):
        graph = grid_road_network(4, 4, seed=3)
        gr, co = tmp_path / "net.gr", tmp_path / "net.co"
        write_dimacs_gr(graph, gr)
        write_dimacs_co(graph, co)
        loaded = read_dimacs_gr(gr)
        read_dimacs_co(co, loaded)
        assert loaded.coordinate(0) == graph.coordinate(0)

    def test_malformed_gr_rejected(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 2\na 1 2\n")
        with pytest.raises(GraphError):
            read_dimacs_gr(path)
        path.write_text("a 1 2 5\n")
        with pytest.raises(GraphError):
            read_dimacs_gr(path)

    def test_edge_list_roundtrip(self, tmp_path):
        graph = grid_road_network(4, 4, seed=4)
        path = tmp_path / "net.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert sorted(loaded.edges()) == pytest.approx(sorted(graph.edges()))

    def test_malformed_edge_list(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2\n")
        with pytest.raises(GraphError):
            read_edge_list(path)


class TestUpdateBatches:
    def test_generate_batch_respects_volume_and_factors(self):
        graph = grid_road_network(6, 6, seed=5)
        before = {(u, v): w for u, v, w in graph.edges()}
        batch = generate_update_batch(graph, volume=10, seed=5)
        assert len(batch) == 10
        keys = {u.key() for u in batch}
        assert len(keys) == 10
        for update in batch:
            assert update.old_weight == before[update.key()]
            assert update.new_weight in (
                pytest.approx(update.old_weight * 0.5),
                pytest.approx(update.old_weight * 2.0),
            )

    def test_volume_bounds(self):
        graph = grid_road_network(3, 3, seed=0)
        with pytest.raises(GraphError):
            generate_update_batch(graph, volume=-1)
        with pytest.raises(GraphError):
            generate_update_batch(graph, volume=graph.num_edges + 1)

    def test_apply_and_revert(self):
        graph = grid_road_network(5, 5, seed=6)
        snapshot = sorted(graph.edges())
        batch = generate_update_batch(graph, volume=8, seed=6)
        batch.apply(graph)
        assert sorted(graph.edges()) != snapshot
        batch.revert(graph)
        assert sorted(graph.edges()) == pytest.approx(snapshot)

    def test_increase_decrease_views(self):
        graph = grid_road_network(5, 5, seed=7)
        batch = generate_update_batch(graph, volume=10, seed=7)
        assert len(batch.increases) + len(batch.decreases) == len(batch)

    def test_update_stream_tracks_evolution(self):
        graph = grid_road_network(5, 5, seed=8)
        stream = generate_update_stream(graph, num_batches=3, volume=5, seed=8)
        assert len(stream) == 3
        # The original graph is untouched by stream generation.
        evolved = graph.copy()
        for batch in stream:
            for update in batch:
                assert update.old_weight == pytest.approx(
                    evolved.edge_weight(update.u, update.v)
                )
            batch.apply(evolved)

    def test_split_intra_inter(self):
        graph = grid_road_network(6, 6, seed=9)
        partitioning = natural_cut_partition(graph, 4, seed=9)
        batch = generate_update_batch(graph, volume=12, seed=9)
        intra, inter = split_intra_inter(batch, partitioning.vertex_partition)
        assert len(intra) + len(inter) == len(batch)
        for update in intra:
            assert partitioning.partition_of(update.u) == partitioning.partition_of(update.v)
        for update in inter:
            assert partitioning.partition_of(update.u) != partitioning.partition_of(update.v)

    def test_apply_missing_edge_raises(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        batch = UpdateBatch([EdgeUpdate(1, 2, 1.0, 2.0)])
        from repro.exceptions import EdgeNotFoundError

        with pytest.raises(EdgeNotFoundError):
            batch.apply(graph)


class TestValidation:
    def test_stats(self):
        graph = grid_road_network(4, 4, seed=0)
        stats = graph_stats(graph)
        assert stats.num_vertices == 16
        assert stats.is_connected
        assert stats.min_weight > 0

    def test_validate_connected_graph(self):
        graph = grid_road_network(4, 4, seed=0)
        assert validate_graph(graph) == []
        assert_valid(graph)

    def test_disconnected_rejected(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(2, 3, 1.0)
        with pytest.raises(DisconnectedGraphError):
            validate_graph(graph)
        assert validate_graph(graph, require_connected=False) == []

    def test_isolated_vertices_reported(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        problems = validate_graph(graph, require_connected=False)
        assert any("isolated" in p for p in problems)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            validate_graph(Graph())
