"""Unit tests for the index-free search algorithms (repro.algorithms.dijkstra)."""

import math

import pytest

from repro.algorithms.dijkstra import (
    all_pairs_boundary_distances,
    astar,
    bidijkstra,
    dijkstra,
    dijkstra_distance,
    dijkstra_path,
    restricted_dijkstra,
)
from repro.exceptions import VertexNotFoundError
from repro.graph.generators import grid_road_network, random_connected_graph
from repro.graph.graph import Graph

from tests.conftest import paper_example_graph, random_query_pairs


class TestDijkstra:
    def test_simple_triangle(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(0, 2, 5.0)
        assert dijkstra_distance(graph, 0, 2) == 2.0

    def test_source_equals_target(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        assert dijkstra_distance(graph, 0, 0) == 0.0

    def test_unreachable_returns_inf(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(2, 3, 1.0)
        assert dijkstra_distance(graph, 0, 3) == math.inf

    def test_unknown_source_raises(self):
        graph = Graph(2)
        with pytest.raises(VertexNotFoundError):
            dijkstra(graph, 42)

    def test_full_distance_map(self):
        graph = paper_example_graph()
        settled = dijkstra(graph, 0)
        assert settled[0] == 0.0
        assert len(settled) == graph.num_vertices

    def test_early_stop_with_targets(self):
        graph = grid_road_network(8, 8, seed=1)
        full = dijkstra(graph, 0)
        partial = dijkstra(graph, 0, targets=[5, 10])
        assert partial[5] == full[5]
        assert partial[10] == full[10]
        assert len(partial) <= len(full)


class TestDijkstraPath:
    def test_path_endpoints_and_length(self):
        graph = paper_example_graph()
        distance, path = dijkstra_path(graph, 0, 7)
        assert path[0] == 0 and path[-1] == 7
        total = sum(graph.edge_weight(path[i], path[i + 1]) for i in range(len(path) - 1))
        assert total == pytest.approx(distance)

    def test_path_unreachable(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_vertex(2)
        distance, path = dijkstra_path(graph, 0, 2)
        assert distance == math.inf and path == []

    def test_trivial_path(self):
        graph = Graph(1)
        assert dijkstra_path(graph, 0, 0) == (0.0, [0])


class TestBiDijkstraAndAStar:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bidijkstra_matches_dijkstra_grid(self, seed):
        graph = grid_road_network(7, 7, seed=seed)
        for s, t in random_query_pairs(graph, 25, seed=seed):
            assert bidijkstra(graph, s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_bidijkstra_matches_dijkstra_random(self):
        graph = random_connected_graph(60, 60, seed=5)
        for s, t in random_query_pairs(graph, 30, seed=5):
            assert bidijkstra(graph, s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_bidijkstra_same_vertex(self):
        graph = paper_example_graph()
        assert bidijkstra(graph, 3, 3) == 0.0

    def test_astar_matches_dijkstra_with_coordinates(self):
        graph = grid_road_network(7, 7, seed=3)
        for s, t in random_query_pairs(graph, 20, seed=3):
            assert astar(graph, s, t) == pytest.approx(dijkstra_distance(graph, s, t))

    def test_astar_without_coordinates_falls_back(self):
        graph = paper_example_graph()
        assert astar(graph, 0, 7) == pytest.approx(dijkstra_distance(graph, 0, 7))


class TestRestrictedSearch:
    def test_restricted_to_subset(self):
        graph = Graph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(0, 3, 1.0)
        graph.add_edge(3, 2, 1.0)
        settled = restricted_dijkstra(graph, 0, allowed=[0, 1, 2])
        assert settled[2] == 2.0

    def test_source_outside_subset_raises(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        with pytest.raises(VertexNotFoundError):
            restricted_dijkstra(graph, 0, allowed=[1, 2])


class TestBoundaryDistances:
    def test_all_pairs_boundary(self):
        graph = grid_road_network(6, 6, seed=2)
        boundary = [0, 5, 30, 35]
        pairs = all_pairs_boundary_distances(graph, boundary)
        for b1 in boundary:
            for b2 in boundary:
                if b1 == b2:
                    continue
                assert pairs[(b1, b2)] == pytest.approx(dijkstra_distance(graph, b1, b2))
                assert pairs[(b1, b2)] == pairs[(b2, b1)]

    def test_single_boundary_vertex(self):
        graph = grid_road_network(3, 3, seed=2)
        assert all_pairs_boundary_distances(graph, [4]) == {}
