"""Thin setup.py shim for environments without the ``wheel`` package.

``pip install -e .`` requires PEP 660 wheels; in fully offline environments
without the ``wheel`` distribution the legacy ``python setup.py develop``
path provided by this shim installs the package in editable mode instead.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
