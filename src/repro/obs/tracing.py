"""Span-based tracing with thread-local nesting and Chrome trace export.

A *span* is one named, timed region of work::

    with tracer.span("pmhl.build.no_boundary", partition=3):
        ...

Spans nest through a thread-local stack, so a build phase opened inside an
index build records the build as its parent and the exported trace renders
as a flame chart.  Stage timings that were already measured elsewhere (the
``StageTiming`` objects every ``apply_batch`` produces) enter retroactively
via :meth:`Tracer.record` — the event is back-dated by its duration, which
keeps it inside its enclosing span's window.

:meth:`Tracer.export_chrome` writes the Chrome trace-event JSON format
(``{"traceEvents": [...]}`` with ``ph: "X"`` complete events, timestamps and
durations in microseconds), loadable in ``chrome://tracing`` or Perfetto.

Every completed span also records its duration into the owning registry's
``repro_span_seconds{span="..."}`` histogram, so the metrics dump carries the
same per-stage accounting the trace shows on a timeline.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import Histogram, MetricRegistry

#: Histogram fed with every completed span's duration.
SPAN_HISTOGRAM = "repro_span_seconds"


@dataclass(frozen=True)
class SpanEvent:
    """One completed span, in the tracer's ``perf_counter`` timeline."""

    name: str
    #: Start offset in seconds since the tracer's origin.
    start: float
    duration: float
    thread_id: int
    thread_name: str
    #: Nesting depth on its thread at entry (0 = root).
    depth: int
    #: Name of the enclosing span, or ``None`` for roots.
    parent: Optional[str]
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class _Span:
    """Context manager recording one live span into its tracer."""

    __slots__ = ("_tracer", "name", "args", "_start", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        end = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._tracer._complete(
            self.name, self._start, end - self._start,
            self._depth, self._parent, self.args,
        )
        return False


class Tracer:
    """Collects completed spans; thread-safe, bounded, export-on-demand.

    ``max_events`` bounds memory: once reached, further events are counted in
    :attr:`dropped` instead of stored (their durations still reach the span
    histogram, so the metrics stay complete even when the trace truncates).
    """

    def __init__(
        self, registry: Optional[MetricRegistry] = None, max_events: int = 200_000
    ) -> None:
        self._registry = registry
        self._max_events = max_events
        self._lock = threading.Lock()
        self._events: List[SpanEvent] = []
        self._local = threading.local()
        self._origin = time.perf_counter()
        self._wall_origin = time.time()
        self.dropped = 0
        self._span_histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **args: object) -> _Span:
        """Context manager timing one region of work (nests per thread)."""
        return _Span(self, name, args)

    def record(self, name: str, seconds: float, **args: object) -> None:
        """Retroactively record a span that just finished, back-dated by
        ``seconds`` so it sits inside the currently open span's window."""
        end = time.perf_counter()
        stack = self._stack()
        self._complete(
            name, end - seconds, seconds,
            len(stack), stack[-1] if stack else None, args,
        )

    def _complete(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        parent: Optional[str],
        args: Dict[str, object],
    ) -> None:
        thread = threading.current_thread()
        event = SpanEvent(
            name=name,
            start=start - self._origin,
            duration=duration,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            depth=depth,
            parent=parent,
            args=dict(args),
        )
        with self._lock:
            if len(self._events) < self._max_events:
                self._events.append(event)
            else:
                self.dropped += 1
            histogram = self._span_histograms.get(name)
            if histogram is None and self._registry is not None:
                histogram = self._registry.histogram(
                    SPAN_HISTOGRAM, "Wall time of every completed span", span=name
                )
                self._span_histograms[name] = histogram
        if histogram is not None:
            histogram.record(duration)

    # ------------------------------------------------------------------
    def events(self) -> List[SpanEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self._span_histograms.clear()
            self.dropped = 0
            self._origin = time.perf_counter()
            self._wall_origin = time.time()

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event JSON object (``ph: "X"``)."""
        pid = os.getpid()
        events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        thread_names: Dict[int, str] = {}
        for event in self.events():
            thread_names.setdefault(event.thread_id, event.thread_name)
            args = {
                key: value
                if isinstance(value, (str, int, float, bool)) or value is None
                else str(value)
                for key, value in event.args.items()
            }
            if event.parent is not None:
                args.setdefault("parent", event.parent)
            events.append(
                {
                    "name": event.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": event.start * 1e6,
                    "dur": event.duration * 1e6,
                    "pid": pid,
                    "tid": event.thread_id,
                    "args": args,
                }
            )
        for tid, name in thread_names.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "wall_origin_unix": self._wall_origin,
                "dropped_events": self.dropped,
            },
        }

    def export_chrome(self, path: str) -> str:
        """Write :meth:`chrome_trace` to ``path``; returns the path."""
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
        return path
