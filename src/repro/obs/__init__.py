"""``repro.obs`` — the observability spine of the package.

One process-wide :class:`~repro.obs.metrics.MetricRegistry` (labeled
counters / gauges / histograms with JSON and Prometheus-text exposition) and
one process-wide :class:`~repro.obs.tracing.Tracer` (nested spans exported as
Chrome trace-event JSON).  Every layer publishes through the module-level
helpers below::

    from repro import obs

    with obs.span("pmhl.build.partition_labels", partition=3):
        ...
    obs.counter("repro_kernel_freezes_total", index="PMHL", store="labels").inc()

Observability is **off by default**.  The helpers collapse to no-ops while
disabled — ``span`` returns a shared inert context manager, the metric
helpers return a shared inert metric — so the instrumented hot paths pay one
flag check and nothing else (asserted <3 % serving overhead in
``benchmarks/bench_obs.py``).  Enable with :func:`enable`, or set
``REPRO_OBS=1`` in the environment before the process starts.  Enable
*before* constructing the objects you want observed: gauge callbacks (e.g.
the serving engine's epoch/cache gauges) register at construction time.

See DESIGN.md §10 for the span taxonomy and the metric name catalogue.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.tracing import SpanEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "SpanEvent",
    "Tracer",
    "enable",
    "disable",
    "is_enabled",
    "registry",
    "tracer",
    "span",
    "record_span",
    "counter",
    "gauge",
    "histogram",
    "peak_rss_bytes",
    "export_prometheus",
    "export_json",
    "export_chrome_trace",
    "reset",
]

_enabled: bool = os.environ.get("REPRO_OBS", "").strip().lower() not in (
    "", "0", "false", "no", "off",
)
_registry = MetricRegistry()
_tracer = Tracer(_registry)


class _NoopSpan:
    """Inert span returned by :func:`span` while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


class _NoopMetric:
    """Inert counter/gauge/histogram returned while disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn) -> None:
        pass

    def record(self, value: float) -> None:
        pass

    observe = record

    @property
    def value(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()
NOOP_METRIC = _NoopMetric()


# ----------------------------------------------------------------------
# Switch
# ----------------------------------------------------------------------
def is_enabled() -> bool:
    """Whether instrumentation currently records anything."""
    return _enabled


def enable() -> None:
    """Turn observability on (equivalent to starting with ``REPRO_OBS=1``)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn observability off; already-recorded data is kept until :func:`reset`."""
    global _enabled
    _enabled = False


# ----------------------------------------------------------------------
# Accessors
# ----------------------------------------------------------------------
def registry() -> MetricRegistry:
    """The process-wide metric registry (real even while disabled)."""
    return _registry


def tracer() -> Tracer:
    """The process-wide tracer (real even while disabled)."""
    return _tracer


# ----------------------------------------------------------------------
# Recording helpers (the no-op fast path lives here)
# ----------------------------------------------------------------------
def span(name: str, **args: object):
    """Timed, nesting span context manager; inert while disabled."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, **args)


def record_span(name: str, seconds: float, **args: object) -> None:
    """Retroactively record an already-measured span; no-op while disabled."""
    if _enabled:
        _tracer.record(name, seconds, **args)


def counter(name: str, description: str = "", **labels: object):
    if not _enabled:
        return NOOP_METRIC
    return _registry.counter(name, description, **labels)


def gauge(name: str, description: str = "", **labels: object):
    if not _enabled:
        return NOOP_METRIC
    return _registry.gauge(name, description, **labels)


def histogram(name: str, description: str = "", **labels: object):
    if not _enabled:
        return NOOP_METRIC
    return _registry.histogram(name, description, **labels)


# ----------------------------------------------------------------------
# Process introspection
# ----------------------------------------------------------------------
def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or ``None`` if unavailable.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both normalise
    to bytes here.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(usage)
    return int(usage) * 1024


# ----------------------------------------------------------------------
# Exposition / lifecycle
# ----------------------------------------------------------------------
def export_prometheus() -> str:
    """Prometheus text dump of the registry."""
    return _registry.to_prometheus()


def export_json() -> Dict[str, object]:
    """JSON-able dump of the registry."""
    return _registry.to_json()


def export_chrome_trace(path: str) -> str:
    """Write the collected spans as Chrome trace-event JSON to ``path``."""
    return _tracer.export_chrome(path)


def reset() -> None:
    """Clear all recorded metrics and spans (the enabled flag is untouched).

    Primarily for tests and benchmark harnesses; the registry and tracer
    objects themselves are kept, so previously handed-out metric instances
    become orphans and must be re-fetched.
    """
    _registry.reset()
    _tracer.reset()
