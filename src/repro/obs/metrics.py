"""Process-wide metric registry: labeled counters, gauges and histograms.

The registry is the single sink every instrumented layer publishes into —
index builds (``repro.base``), maintenance stages, kernel freezes
(``repro.kernels``), snapshot save/load (``repro.store``) and the serving
engine (``repro.serving``) all meet here instead of each keeping a private
counter silo.  Two exposition formats are built in: a JSON tree
(:meth:`MetricRegistry.to_json`) for programmatic consumers and the
Prometheus text format (:meth:`MetricRegistry.to_prometheus`) for scrape
endpoints and humans.

:class:`Histogram` is the generalised form of the serving layer's original
``LatencyHistogram`` (log-spaced buckets, O(1) recording, fixed memory);
``repro.serving.metrics.LatencyHistogram`` is now a thin latency-flavoured
subclass, so both layers share one implementation and one set of quantile
semantics.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: Canonical sorted ``((key, value), ...)`` form of one label set.
LabelKey = Tuple[Tuple[str, str], ...]

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_INVALID_LABEL_CHARS.sub("_", key)}="{_escape_label(value)}"'
        for key, value in labels
    )
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing labeled counter."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Labeled gauge: a settable value or a live callback."""

    __slots__ = ("name", "labels", "_value", "_fn", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn()`` at read time (last registration wins)."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return float("nan")
        return self._value


class Histogram:
    """Log-bucketed histogram with approximate quantiles.

    Buckets are geometrically spaced between ``min_value`` and ``max_value``
    (default 1 µs – 10 s, 10 buckets per decade), which keeps the quantile
    error within one bucket width (~26 %) at any scale — plenty for
    p50/p95/p99 reporting — with O(1) recording and fixed memory.  Values at
    or below ``min_value`` land in bucket 0; values above ``max_value`` land
    in the overflow bucket (exported as ``le="+Inf"``).

    The exact minimum and maximum observed values are tracked alongside the
    buckets, so ``quantile(0.0)`` / ``quantile(1.0)`` return true extremes
    rather than bucket bounds.  Pass ``thread_safe=True`` (the registry does)
    when recorders race; the serving layer records under its own lock and
    keeps the lock-free default.
    """

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 10.0,
        buckets_per_decade: int = 10,
        thread_safe: bool = False,
    ) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("require 0 < min_value < max_value")
        self._min_value = min_value
        self._per_decade = buckets_per_decade
        decades = math.log10(max_value / min_value)
        self._num_buckets = int(math.ceil(decades * buckets_per_decade)) + 1
        self._counts = [0] * (self._num_buckets + 1)  # +1 overflow bucket
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._min_seen = math.inf
        self._lock = threading.Lock() if thread_safe else None
        # Fixed at construction; labels/name are attached by the registry.
        self.name = ""
        self.labels: LabelKey = ()

    def _bucket(self, value: float) -> int:
        if value <= self._min_value:
            return 0
        index = int(math.log10(value / self._min_value) * self._per_decade)
        return min(index, self._num_buckets)  # clamp into the overflow bucket

    def _bucket_upper(self, index: int) -> float:
        if index >= self._num_buckets:
            return math.inf
        return self._min_value * 10.0 ** ((index + 1) / self._per_decade)

    def _record(self, value: float) -> None:
        self._counts[self._bucket(value)] += 1
        self._total += 1
        self._sum += value
        if value > self._max:
            self._max = value
        if value < self._min_seen:
            self._min_seen = value

    def record(self, value: float) -> None:
        lock = self._lock
        if lock is None:
            self._record(value)
        else:
            with lock:
                self._record(value)

    #: Prometheus-style alias.
    observe = record

    @property
    def count(self) -> int:
        return self._total

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    @property
    def max(self) -> float:
        return self._max

    @property
    def min(self) -> float:
        return self._min_seen if self._total else 0.0

    def bucket_bounds(self) -> List[float]:
        """Upper bound of every bucket (the overflow bucket's is ``inf``)."""
        return [self._bucket_upper(index) for index in range(len(self._counts))]

    def bucket_counts(self) -> List[int]:
        return list(self._counts)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (upper bound of the containing bucket).

        ``quantile(0.0)`` returns the exact minimum observed value (not a
        bucket bound), and the rank is floored at one sample so empty
        leading buckets can never satisfy the cumulative test.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._total == 0:
            return 0.0
        if q == 0.0:
            return self._min_seen
        rank = max(1.0, q * self._total)
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if not bucket_count:
                continue
            cumulative += bucket_count
            if cumulative >= rank:
                return min(self._bucket_upper(index), self._max)
        return self._max

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": float(self._total),
            "mean": self.mean,
            "min": self.min,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self._max,
            "sum": self._sum,
            "bucket_bounds": self.bucket_bounds(),
            "bucket_counts": self.bucket_counts(),
        }


class _Family:
    """All instances of one metric name (one per label set)."""

    __slots__ = ("name", "kind", "description", "instances")

    def __init__(self, name: str, kind: str, description: str) -> None:
        self.name = name
        self.kind = kind
        self.description = description
        self.instances: Dict[LabelKey, object] = {}


class MetricRegistry:
    """Thread-safe registry of labeled metrics with pluggable exposition.

    Metrics are created on first use and shared afterwards::

        registry.counter("repro_index_builds_total", index="PMHL").inc()

    A name is bound to one metric kind for the registry's lifetime —
    re-registering it as a different kind raises ``ValueError`` (a mixed
    family would be un-expositable).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _get(self, name: str, kind: str, description: str, labels: Dict[str, object]):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, description)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"cannot re-register as {kind}"
                )
            if description and not family.description:
                family.description = description
            instance = family.instances.get(key)
            if instance is None:
                if kind == "counter":
                    instance = Counter(name, key)
                elif kind == "gauge":
                    instance = Gauge(name, key)
                else:
                    instance = Histogram(thread_safe=True)
                    instance.name = name
                    instance.labels = key
                family.instances[key] = instance
            return instance

    def counter(self, name: str, description: str = "", **labels: object) -> Counter:
        return self._get(name, "counter", description, labels)

    def gauge(self, name: str, description: str = "", **labels: object) -> Gauge:
        return self._get(name, "gauge", description, labels)

    def histogram(self, name: str, description: str = "", **labels: object) -> Histogram:
        return self._get(name, "histogram", description, labels)

    def get(self, name: str, **labels: object):
        """Existing metric instance or ``None`` (never creates)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.instances.get(_label_key(labels))

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def _collect(self) -> List[_Family]:
        with self._lock:
            families = []
            for name in sorted(self._families):
                source = self._families[name]
                copy = _Family(source.name, source.kind, source.description)
                copy.instances = dict(source.instances)
                families.append(copy)
            return families

    def to_json(self) -> Dict[str, object]:
        """JSON-able tree: ``{name: {type, description, series: [...]}}``."""
        out: Dict[str, object] = {}
        for family in self._collect():
            series = []
            for key in sorted(family.instances):
                instance = family.instances[key]
                entry: Dict[str, object] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry.update(instance.snapshot())
                else:
                    entry["value"] = instance.value
                series.append(entry)
            out[family.name] = {
                "type": family.kind,
                "description": family.description,
                "series": series,
            }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self._collect():
            name = _INVALID_NAME_CHARS.sub("_", family.name)
            if family.description:
                lines.append(f"# HELP {name} {family.description}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.instances):
                instance = family.instances[key]
                if family.kind == "histogram":
                    lines.extend(self._prometheus_histogram(name, key, instance))
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} {_format_value(instance.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _prometheus_histogram(
        name: str, key: LabelKey, histogram: Histogram
    ) -> Iterable[str]:
        cumulative = 0
        for upper, count in zip(histogram.bucket_bounds(), histogram.bucket_counts()):
            cumulative += count
            le = "+Inf" if upper == math.inf else _format_value(upper)
            bucket_labels = _format_labels(key + (("le", le),))
            yield f"{name}_bucket{bucket_labels} {cumulative}"
        suffix = _format_labels(key)
        yield f"{name}_sum{suffix} {_format_value(histogram.sum)}"
        yield f"{name}_count{suffix} {histogram.count}"
