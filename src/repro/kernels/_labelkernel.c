/* Native hub-scan kernel for frozen H2H-family label stores.
 *
 * The store is an immutable CSR snapshot of one H2HLabels instance plus the
 * Euler-tour LCA arrays of its tree decomposition:
 *
 *   comp[r]        component id of row r (forest support),
 *   first[r]       first Euler-tour position of row r,
 *   logs[i]        floor(log2(i)) lookup for the sparse-table RMQ,
 *   tbl_flat/off   sparse-table levels, entries packed as depth<<shift|row
 *                  so the range-minimum over depths is an integer minimum,
 *   pos_indptr/..  CSR of the per-node hub positions X(v).pos,
 *   dis_indptr/..  CSR of the per-row distance arrays X(v).dis.
 *
 * query(rs, rt) performs exactly the reference Python arithmetic — LCA via
 * RMQ, then min over i in pos[lca] of dis_s[i] + dis_t[i] — so results are
 * bit-identical to H2HLabels.query.  one_to_many/pairs loop the same body in
 * C, writing into a caller-provided float64 buffer.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

static const char *CAPSULE_NAME = "repro.kernels.labelstore";

typedef struct {
    int64_t n;
    int64_t mask;
    int64_t *comp;
    int64_t *first;
    int64_t *logs;
    int64_t *tbl_flat;
    int64_t *tbl_off;
    int64_t *pos_indptr;
    int64_t *pos_data;
    int64_t *dis_indptr;
    double *dis_data;
} LabelStore;

static void store_destructor(PyObject *capsule) {
    LabelStore *st = (LabelStore *)PyCapsule_GetPointer(capsule, CAPSULE_NAME);
    if (st != NULL) {
        free(st->comp);
        free(st->first);
        free(st->logs);
        free(st->tbl_flat);
        free(st->tbl_off);
        free(st->pos_indptr);
        free(st->pos_data);
        free(st->dis_indptr);
        free(st->dis_data);
        free(st);
    }
}

/* Copy a C-contiguous buffer of 8-byte items into malloc'd memory. */
static int copy_buffer(PyObject *obj, void **out, Py_ssize_t *count) {
    Py_buffer view;
    if (PyObject_GetBuffer(obj, &view, PyBUF_C_CONTIGUOUS) < 0) {
        return -1;
    }
    if (view.itemsize != 8) {
        PyBuffer_Release(&view);
        PyErr_SetString(PyExc_TypeError, "label-store buffers must have 8-byte items");
        return -1;
    }
    void *mem = malloc(view.len > 0 ? (size_t)view.len : 1);
    if (mem == NULL) {
        PyBuffer_Release(&view);
        PyErr_NoMemory();
        return -1;
    }
    memcpy(mem, view.buf, (size_t)view.len);
    *out = mem;
    *count = view.len / view.itemsize;
    PyBuffer_Release(&view);
    return 0;
}

static PyObject *build(PyObject *self, PyObject *args) {
    PyObject *comp, *first, *logs, *tbl_flat, *tbl_off;
    PyObject *pos_indptr, *pos_data, *dis_indptr, *dis_data;
    long long mask;
    if (!PyArg_ParseTuple(args, "LOOOOOOOOO", &mask, &comp, &first, &logs,
                          &tbl_flat, &tbl_off, &pos_indptr, &pos_data,
                          &dis_indptr, &dis_data)) {
        return NULL;
    }
    LabelStore *st = (LabelStore *)calloc(1, sizeof(LabelStore));
    if (st == NULL) {
        return PyErr_NoMemory();
    }
    st->mask = (int64_t)mask;
    Py_ssize_t count;
    if (copy_buffer(comp, (void **)&st->comp, &count) < 0) goto fail;
    st->n = count;
    if (copy_buffer(first, (void **)&st->first, &count) < 0) goto fail;
    if (copy_buffer(logs, (void **)&st->logs, &count) < 0) goto fail;
    if (copy_buffer(tbl_flat, (void **)&st->tbl_flat, &count) < 0) goto fail;
    if (copy_buffer(tbl_off, (void **)&st->tbl_off, &count) < 0) goto fail;
    if (copy_buffer(pos_indptr, (void **)&st->pos_indptr, &count) < 0) goto fail;
    if (copy_buffer(pos_data, (void **)&st->pos_data, &count) < 0) goto fail;
    if (copy_buffer(dis_indptr, (void **)&st->dis_indptr, &count) < 0) goto fail;
    if (copy_buffer(dis_data, (void **)&st->dis_data, &count) < 0) goto fail;
    return PyCapsule_New(st, CAPSULE_NAME, store_destructor);
fail:
    free(st->comp);
    free(st->first);
    free(st->logs);
    free(st->tbl_flat);
    free(st->tbl_off);
    free(st->pos_indptr);
    free(st->pos_data);
    free(st->dis_indptr);
    free(st->dis_data);
    free(st);
    return NULL;
}

/* The shared query body: assumes 0 <= rs, rt < n and rs != rt. */
static inline double query_rows(const LabelStore *st, int64_t rs, int64_t rt) {
    if (st->comp[rs] != st->comp[rt]) {
        return Py_HUGE_VAL;
    }
    int64_t fs = st->first[rs];
    int64_t ft = st->first[rt];
    if (fs > ft) {
        int64_t tmp = fs;
        fs = ft;
        ft = tmp;
    }
    int64_t k = st->logs[ft - fs + 1];
    const int64_t *rowk = st->tbl_flat + st->tbl_off[k];
    int64_t a = rowk[fs];
    int64_t b = rowk[ft - ((int64_t)1 << k) + 1];
    if (b < a) {
        a = b;
    }
    int64_t lca_row = a & st->mask;
    const double *ds = st->dis_data + st->dis_indptr[rs];
    const double *dt = st->dis_data + st->dis_indptr[rt];
    const int64_t *p = st->pos_data + st->pos_indptr[lca_row];
    const int64_t *pe = st->pos_data + st->pos_indptr[lca_row + 1];
    double best = Py_HUGE_VAL;
    for (; p < pe; p++) {
        double c = ds[*p] + dt[*p];
        if (c < best) {
            best = c;
        }
    }
    return best;
}

static LabelStore *store_from_arg(PyObject *arg) {
    return (LabelStore *)PyCapsule_GetPointer(arg, CAPSULE_NAME);
}

static PyObject *query(PyObject *self, PyObject *const *args, Py_ssize_t nargs) {
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "query(store, rs, rt) takes 3 arguments");
        return NULL;
    }
    LabelStore *st = store_from_arg(args[0]);
    if (st == NULL) {
        return NULL;
    }
    long rs = PyLong_AsLong(args[1]);
    long rt = PyLong_AsLong(args[2]);
    if ((rs == -1 || rt == -1) && PyErr_Occurred()) {
        return NULL;
    }
    if (rs < 0 || rs >= st->n || rt < 0 || rt >= st->n) {
        PyErr_SetString(PyExc_IndexError, "label-store row out of range");
        return NULL;
    }
    if (rs == rt) {
        return PyFloat_FromDouble(0.0);
    }
    return PyFloat_FromDouble(query_rows(st, rs, rt));
}

/* one_to_many(store, rs, t_rows_int64_buffer, out_float64_buffer) */
static PyObject *one_to_many(PyObject *self, PyObject *const *args, Py_ssize_t nargs) {
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError, "one_to_many(store, rs, t_rows, out) takes 4 arguments");
        return NULL;
    }
    LabelStore *st = store_from_arg(args[0]);
    if (st == NULL) {
        return NULL;
    }
    long rs = PyLong_AsLong(args[1]);
    if (rs == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (rs < 0 || rs >= st->n) {
        PyErr_SetString(PyExc_IndexError, "label-store row out of range");
        return NULL;
    }
    Py_buffer t_view, out_view;
    if (PyObject_GetBuffer(args[2], &t_view, PyBUF_C_CONTIGUOUS) < 0) {
        return NULL;
    }
    if (PyObject_GetBuffer(args[3], &out_view, PyBUF_C_CONTIGUOUS | PyBUF_WRITABLE) < 0) {
        PyBuffer_Release(&t_view);
        return NULL;
    }
    if (t_view.itemsize != 8 || out_view.itemsize != 8 || t_view.len != out_view.len) {
        PyBuffer_Release(&t_view);
        PyBuffer_Release(&out_view);
        PyErr_SetString(PyExc_TypeError, "t_rows/out must be matching 8-byte buffers");
        return NULL;
    }
    const int64_t *t_rows = (const int64_t *)t_view.buf;
    double *out = (double *)out_view.buf;
    Py_ssize_t m = t_view.len / 8;
    for (Py_ssize_t i = 0; i < m; i++) {
        int64_t rt = t_rows[i];
        if (rt < 0 || rt >= st->n) {
            PyBuffer_Release(&t_view);
            PyBuffer_Release(&out_view);
            PyErr_SetString(PyExc_IndexError, "label-store row out of range");
            return NULL;
        }
        out[i] = (rt == rs) ? 0.0 : query_rows(st, rs, rt);
    }
    PyBuffer_Release(&t_view);
    PyBuffer_Release(&out_view);
    Py_RETURN_NONE;
}

/* query_pairs(store, s_rows_int64_buffer, t_rows_int64_buffer, out_float64_buffer) */
static PyObject *query_pairs(PyObject *self, PyObject *const *args, Py_ssize_t nargs) {
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError, "query_pairs(store, s_rows, t_rows, out) takes 4 arguments");
        return NULL;
    }
    LabelStore *st = store_from_arg(args[0]);
    if (st == NULL) {
        return NULL;
    }
    Py_buffer s_view, t_view, out_view;
    if (PyObject_GetBuffer(args[1], &s_view, PyBUF_C_CONTIGUOUS) < 0) {
        return NULL;
    }
    if (PyObject_GetBuffer(args[2], &t_view, PyBUF_C_CONTIGUOUS) < 0) {
        PyBuffer_Release(&s_view);
        return NULL;
    }
    if (PyObject_GetBuffer(args[3], &out_view, PyBUF_C_CONTIGUOUS | PyBUF_WRITABLE) < 0) {
        PyBuffer_Release(&s_view);
        PyBuffer_Release(&t_view);
        return NULL;
    }
    if (s_view.itemsize != 8 || t_view.itemsize != 8 || out_view.itemsize != 8 ||
        s_view.len != t_view.len || s_view.len != out_view.len) {
        PyBuffer_Release(&s_view);
        PyBuffer_Release(&t_view);
        PyBuffer_Release(&out_view);
        PyErr_SetString(PyExc_TypeError, "s_rows/t_rows/out must be matching 8-byte buffers");
        return NULL;
    }
    const int64_t *s_rows = (const int64_t *)s_view.buf;
    const int64_t *t_rows = (const int64_t *)t_view.buf;
    double *out = (double *)out_view.buf;
    Py_ssize_t m = s_view.len / 8;
    for (Py_ssize_t i = 0; i < m; i++) {
        int64_t rs = s_rows[i];
        int64_t rt = t_rows[i];
        if (rs < 0 || rs >= st->n || rt < 0 || rt >= st->n) {
            PyBuffer_Release(&s_view);
            PyBuffer_Release(&t_view);
            PyBuffer_Release(&out_view);
            PyErr_SetString(PyExc_IndexError, "label-store row out of range");
            return NULL;
        }
        out[i] = (rs == rt) ? 0.0 : query_rows(st, rs, rt);
    }
    PyBuffer_Release(&s_view);
    PyBuffer_Release(&t_view);
    PyBuffer_Release(&out_view);
    Py_RETURN_NONE;
}

static PyMethodDef methods[] = {
    {"build", build, METH_VARARGS,
     "build(mask, comp, first, logs, tbl_flat, tbl_off, pos_indptr, pos_data, "
     "dis_indptr, dis_data) -> store capsule"},
    {"query", (PyCFunction)query, METH_FASTCALL, "query(store, rs, rt) -> distance"},
    {"one_to_many", (PyCFunction)one_to_many, METH_FASTCALL,
     "one_to_many(store, rs, t_rows, out) -> None (fills out)"},
    {"query_pairs", (PyCFunction)query_pairs, METH_FASTCALL,
     "query_pairs(store, s_rows, t_rows, out) -> None (fills out)"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "_labelkernel", NULL, -1, methods,
};

PyMODINIT_FUNC PyInit__labelkernel(void) { return PyModule_Create(&moduledef); }
