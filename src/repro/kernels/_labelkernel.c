/* Native kernels for the frozen query stores of repro.kernels.
 *
 * Two capsule types are exported:
 *
 * 1. "repro.kernels.labelstore" -- an H2H-family label store: the CSR
 *    distance/position arrays of one H2HLabels instance plus the flattened
 *    Euler-tour LCA arrays of its tree decomposition:
 *
 *      comp[r]        component id of row r (forest support),
 *      first[r]       first Euler-tour position of row r,
 *      logs[i]        floor(log2(i)) lookup for the sparse-table RMQ,
 *      tbl_flat/off   sparse-table levels, entries packed as depth<<shift|row
 *                     so the range-minimum over depths is an integer minimum,
 *      pos_indptr/..  CSR of the per-node hub positions X(v).pos,
 *      dis_indptr/..  CSR of the per-row distance arrays X(v).dis.
 *
 *    query(rs, rt) performs exactly the reference Python arithmetic -- LCA
 *    via RMQ, then min over i in pos[lca] of dis_s[i] + dis_t[i] -- so
 *    results are bit-identical to H2HLabels.query.  one_to_many/query_pairs
 *    loop the same body in C over caller-provided int64 row buffers, writing
 *    into a float64 output buffer: one call per batch, no per-query Python.
 *
 * 2. "repro.kernels.searchgraph" -- a CSR adjacency (graph snapshot or
 *    CH-style upward shortcut arrays) for the Dijkstra-family searches:
 *
 *      ids[r]         original vertex id of row r (heap tie-break key),
 *      indptr[r]..    CSR of the adjacency rows (neighbor rows + weights).
 *
 *    The searches are literal ports of the pure-Python references
 *    (GraphSnapshot.bidijkstra / GraphSnapshot._dijkstra /
 *    ShortcutStore.query): heaps are keyed by (distance, original id)
 *    exactly like heapq's (dist, vertex) tuples, rows relax neighbours in
 *    CSR order (the adjacency-dict iteration order), and every float
 *    operation is the same float64 add/compare -- so the pop sequence, the
 *    relaxation sequence and therefore the returned distances are
 *    bit-identical to the Python searches.
 *
 * Neither capsule copies its arrays: buffers are borrowed via the buffer
 * protocol (views held for the capsule's lifetime), so the kernels execute
 * directly over the owning store's arena -- including mmap-backed arenas
 * shared across repro.cluster shard processes.
 *
 * No function releases the GIL; concurrent Python threads therefore
 * serialize around the shared per-capsule scratch space by construction.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

static const char *LABEL_CAPSULE = "repro.kernels.labelstore";
static const char *SEARCH_CAPSULE = "repro.kernels.searchgraph";

/* ------------------------------------------------------------------ */
/* Borrowed-buffer helpers                                            */
/* ------------------------------------------------------------------ */

/* Borrow a C-contiguous buffer of 8-byte items; on success the view must be
 * released by the caller's destructor. */
static int borrow_buffer(PyObject *obj, Py_buffer *view, const void **data,
                         Py_ssize_t *count) {
    if (PyObject_GetBuffer(obj, view, PyBUF_C_CONTIGUOUS) < 0) {
        return -1;
    }
    if (view->itemsize != 8) {
        PyBuffer_Release(view);
        view->obj = NULL;
        PyErr_SetString(PyExc_TypeError, "kernel buffers must have 8-byte items");
        return -1;
    }
    *data = view->buf;
    *count = view->len / view->itemsize;
    return 0;
}

static void release_views(Py_buffer *views, int count) {
    for (int i = 0; i < count; i++) {
        if (views[i].obj != NULL) {
            PyBuffer_Release(&views[i]);
            views[i].obj = NULL;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Label store                                                        */
/* ------------------------------------------------------------------ */

enum { L_COMP, L_FIRST, L_LOGS, L_TBL_FLAT, L_TBL_OFF,
       L_POS_INDPTR, L_POS_DATA, L_DIS_INDPTR, L_DIS_DATA, L_NVIEWS };

typedef struct {
    int64_t n;
    int64_t mask;
    Py_buffer views[L_NVIEWS];
    const int64_t *comp;
    const int64_t *first;
    const int64_t *logs;
    const int64_t *tbl_flat;
    const int64_t *tbl_off;
    const int64_t *pos_indptr;
    const int64_t *pos_data;
    const int64_t *dis_indptr;
    const double *dis_data;
} LabelStore;

static void label_destructor(PyObject *capsule) {
    LabelStore *st = (LabelStore *)PyCapsule_GetPointer(capsule, LABEL_CAPSULE);
    if (st != NULL) {
        release_views(st->views, L_NVIEWS);
        free(st);
    }
}

static PyObject *label_build(PyObject *self, PyObject *args) {
    PyObject *objs[L_NVIEWS];
    long long mask;
    (void)self;
    if (!PyArg_ParseTuple(args, "LOOOOOOOOO", &mask, &objs[L_COMP],
                          &objs[L_FIRST], &objs[L_LOGS], &objs[L_TBL_FLAT],
                          &objs[L_TBL_OFF], &objs[L_POS_INDPTR],
                          &objs[L_POS_DATA], &objs[L_DIS_INDPTR],
                          &objs[L_DIS_DATA])) {
        return NULL;
    }
    LabelStore *st = (LabelStore *)calloc(1, sizeof(LabelStore));
    if (st == NULL) {
        return PyErr_NoMemory();
    }
    st->mask = (int64_t)mask;
    const void *ptrs[L_NVIEWS];
    Py_ssize_t counts[L_NVIEWS];
    for (int i = 0; i < L_NVIEWS; i++) {
        if (borrow_buffer(objs[i], &st->views[i], &ptrs[i], &counts[i]) < 0) {
            release_views(st->views, i);
            free(st);
            return NULL;
        }
    }
    st->n = counts[L_COMP];
    st->comp = (const int64_t *)ptrs[L_COMP];
    st->first = (const int64_t *)ptrs[L_FIRST];
    st->logs = (const int64_t *)ptrs[L_LOGS];
    st->tbl_flat = (const int64_t *)ptrs[L_TBL_FLAT];
    st->tbl_off = (const int64_t *)ptrs[L_TBL_OFF];
    st->pos_indptr = (const int64_t *)ptrs[L_POS_INDPTR];
    st->pos_data = (const int64_t *)ptrs[L_POS_DATA];
    st->dis_indptr = (const int64_t *)ptrs[L_DIS_INDPTR];
    st->dis_data = (const double *)ptrs[L_DIS_DATA];
    if (counts[L_FIRST] != st->n || counts[L_POS_INDPTR] != st->n + 1 ||
        counts[L_DIS_INDPTR] != st->n + 1) {
        release_views(st->views, L_NVIEWS);
        free(st);
        PyErr_SetString(PyExc_ValueError, "label-store arrays have inconsistent lengths");
        return NULL;
    }
    PyObject *capsule = PyCapsule_New(st, LABEL_CAPSULE, label_destructor);
    if (capsule == NULL) {
        release_views(st->views, L_NVIEWS);
        free(st);
    }
    return capsule;
}

/* The shared query body: assumes 0 <= rs, rt < n and rs != rt. */
static inline double label_query_rows(const LabelStore *st, int64_t rs, int64_t rt) {
    if (st->comp[rs] != st->comp[rt]) {
        return Py_HUGE_VAL;
    }
    int64_t fs = st->first[rs];
    int64_t ft = st->first[rt];
    if (fs > ft) {
        int64_t tmp = fs;
        fs = ft;
        ft = tmp;
    }
    int64_t k = st->logs[ft - fs + 1];
    const int64_t *rowk = st->tbl_flat + st->tbl_off[k];
    int64_t a = rowk[fs];
    int64_t b = rowk[ft - ((int64_t)1 << k) + 1];
    if (b < a) {
        a = b;
    }
    int64_t lca_row = a & st->mask;
    const double *ds = st->dis_data + st->dis_indptr[rs];
    const double *dt = st->dis_data + st->dis_indptr[rt];
    const int64_t *p = st->pos_data + st->pos_indptr[lca_row];
    const int64_t *pe = st->pos_data + st->pos_indptr[lca_row + 1];
    double best = Py_HUGE_VAL;
    for (; p < pe; p++) {
        double c = ds[*p] + dt[*p];
        if (c < best) {
            best = c;
        }
    }
    return best;
}

static LabelStore *label_from_arg(PyObject *arg) {
    return (LabelStore *)PyCapsule_GetPointer(arg, LABEL_CAPSULE);
}

static PyObject *label_query(PyObject *self, PyObject *const *args, Py_ssize_t nargs) {
    (void)self;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "query(store, rs, rt) takes 3 arguments");
        return NULL;
    }
    LabelStore *st = label_from_arg(args[0]);
    if (st == NULL) {
        return NULL;
    }
    long rs = PyLong_AsLong(args[1]);
    long rt = PyLong_AsLong(args[2]);
    if ((rs == -1 || rt == -1) && PyErr_Occurred()) {
        return NULL;
    }
    if (rs < 0 || rs >= st->n || rt < 0 || rt >= st->n) {
        PyErr_SetString(PyExc_IndexError, "label-store row out of range");
        return NULL;
    }
    if (rs == rt) {
        return PyFloat_FromDouble(0.0);
    }
    return PyFloat_FromDouble(label_query_rows(st, rs, rt));
}

/* Fetch matching (t_rows int64, out float64 writable) buffers. */
static int pair_buffers(PyObject *rows_obj, PyObject *out_obj, Py_buffer *rows,
                        Py_buffer *out) {
    if (PyObject_GetBuffer(rows_obj, rows, PyBUF_C_CONTIGUOUS) < 0) {
        return -1;
    }
    if (PyObject_GetBuffer(out_obj, out, PyBUF_C_CONTIGUOUS | PyBUF_WRITABLE) < 0) {
        PyBuffer_Release(rows);
        return -1;
    }
    if (rows->itemsize != 8 || out->itemsize != 8 || rows->len != out->len) {
        PyBuffer_Release(rows);
        PyBuffer_Release(out);
        PyErr_SetString(PyExc_TypeError, "row/out must be matching 8-byte buffers");
        return -1;
    }
    return 0;
}

/* one_to_many(store, rs, t_rows_int64_buffer, out_float64_buffer) */
static PyObject *label_one_to_many(PyObject *self, PyObject *const *args,
                                   Py_ssize_t nargs) {
    (void)self;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "one_to_many(store, rs, t_rows, out) takes 4 arguments");
        return NULL;
    }
    LabelStore *st = label_from_arg(args[0]);
    if (st == NULL) {
        return NULL;
    }
    long rs = PyLong_AsLong(args[1]);
    if (rs == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (rs < 0 || rs >= st->n) {
        PyErr_SetString(PyExc_IndexError, "label-store row out of range");
        return NULL;
    }
    Py_buffer t_view, out_view;
    if (pair_buffers(args[2], args[3], &t_view, &out_view) < 0) {
        return NULL;
    }
    const int64_t *t_rows = (const int64_t *)t_view.buf;
    double *out = (double *)out_view.buf;
    Py_ssize_t m = t_view.len / 8;
    for (Py_ssize_t i = 0; i < m; i++) {
        int64_t rt = t_rows[i];
        if (rt < 0 || rt >= st->n) {
            PyBuffer_Release(&t_view);
            PyBuffer_Release(&out_view);
            PyErr_SetString(PyExc_IndexError, "label-store row out of range");
            return NULL;
        }
        out[i] = (rt == rs) ? 0.0 : label_query_rows(st, rs, rt);
    }
    PyBuffer_Release(&t_view);
    PyBuffer_Release(&out_view);
    Py_RETURN_NONE;
}

/* query_pairs(store, s_rows_int64_buffer, t_rows_int64_buffer, out_float64_buffer) */
static PyObject *label_query_pairs(PyObject *self, PyObject *const *args,
                                   Py_ssize_t nargs) {
    (void)self;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "query_pairs(store, s_rows, t_rows, out) takes 4 arguments");
        return NULL;
    }
    LabelStore *st = label_from_arg(args[0]);
    if (st == NULL) {
        return NULL;
    }
    Py_buffer s_view, t_view, out_view;
    if (PyObject_GetBuffer(args[1], &s_view, PyBUF_C_CONTIGUOUS) < 0) {
        return NULL;
    }
    if (pair_buffers(args[2], args[3], &t_view, &out_view) < 0) {
        PyBuffer_Release(&s_view);
        return NULL;
    }
    if (s_view.itemsize != 8 || s_view.len != t_view.len) {
        PyBuffer_Release(&s_view);
        PyBuffer_Release(&t_view);
        PyBuffer_Release(&out_view);
        PyErr_SetString(PyExc_TypeError,
                        "s_rows/t_rows/out must be matching 8-byte buffers");
        return NULL;
    }
    const int64_t *s_rows = (const int64_t *)s_view.buf;
    const int64_t *t_rows = (const int64_t *)t_view.buf;
    double *out = (double *)out_view.buf;
    Py_ssize_t m = s_view.len / 8;
    for (Py_ssize_t i = 0; i < m; i++) {
        int64_t rs = s_rows[i];
        int64_t rt = t_rows[i];
        if (rs < 0 || rs >= st->n || rt < 0 || rt >= st->n) {
            PyBuffer_Release(&s_view);
            PyBuffer_Release(&t_view);
            PyBuffer_Release(&out_view);
            PyErr_SetString(PyExc_IndexError, "label-store row out of range");
            return NULL;
        }
        out[i] = (rs == rt) ? 0.0 : label_query_rows(st, rs, rt);
    }
    PyBuffer_Release(&s_view);
    PyBuffer_Release(&t_view);
    PyBuffer_Release(&out_view);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* CSR search graph                                                   */
/* ------------------------------------------------------------------ */

/* Heap entries mirror heapq's (distance, original-vertex-id) tuples; the row
 * rides along so relaxation never maps ids back to rows. */
typedef struct {
    double dist;
    int64_t id;
    int64_t row;
} HeapEntry;

typedef struct {
    HeapEntry *items;
    Py_ssize_t size;
    Py_ssize_t cap;
} Heap;

static inline int heap_less(const HeapEntry *a, const HeapEntry *b) {
    if (a->dist != b->dist) {
        return a->dist < b->dist;
    }
    return a->id < b->id;
}

static int heap_push(Heap *heap, double dist, int64_t id, int64_t row) {
    if (heap->size == heap->cap) {
        Py_ssize_t cap = heap->cap ? heap->cap * 2 : 256;
        HeapEntry *items = (HeapEntry *)realloc(heap->items,
                                                (size_t)cap * sizeof(HeapEntry));
        if (items == NULL) {
            return -1;
        }
        heap->items = items;
        heap->cap = cap;
    }
    Py_ssize_t i = heap->size++;
    HeapEntry entry = {dist, id, row};
    while (i > 0) {
        Py_ssize_t parent = (i - 1) / 2;
        if (!heap_less(&entry, &heap->items[parent])) {
            break;
        }
        heap->items[i] = heap->items[parent];
        i = parent;
    }
    heap->items[i] = entry;
    return 0;
}

static HeapEntry heap_pop(Heap *heap) {
    HeapEntry top = heap->items[0];
    HeapEntry last = heap->items[--heap->size];
    Py_ssize_t i = 0;
    for (;;) {
        Py_ssize_t child = 2 * i + 1;
        if (child >= heap->size) {
            break;
        }
        if (child + 1 < heap->size &&
            heap_less(&heap->items[child + 1], &heap->items[child])) {
            child++;
        }
        if (!heap_less(&heap->items[child], &last)) {
            break;
        }
        heap->items[i] = heap->items[child];
        i = child;
    }
    heap->items[i] = last;
    return top;
}

enum { S_IDS, S_INDPTR, S_INDICES, S_WEIGHTS, S_NVIEWS };

typedef struct {
    int64_t n;
    Py_buffer views[S_NVIEWS];
    const int64_t *ids;
    const int64_t *indptr;
    const int64_t *indices;
    const double *weights;
    /* Reusable per-query scratch (validity tracked by query stamps, so a new
     * query never pays an O(n) reset).  Guarded by the GIL. */
    int64_t stamp;
    int64_t *dist_stamp_f, *dist_stamp_b;
    int64_t *settled_stamp_f, *settled_stamp_b;
    double *dist_f, *dist_b;
    double *settled_val;
    Heap heap_f, heap_b;
} SearchGraph;

static void search_destructor(PyObject *capsule) {
    SearchGraph *g = (SearchGraph *)PyCapsule_GetPointer(capsule, SEARCH_CAPSULE);
    if (g != NULL) {
        release_views(g->views, S_NVIEWS);
        free(g->dist_stamp_f);
        free(g->dist_stamp_b);
        free(g->settled_stamp_f);
        free(g->settled_stamp_b);
        free(g->dist_f);
        free(g->dist_b);
        free(g->settled_val);
        free(g->heap_f.items);
        free(g->heap_b.items);
        free(g);
    }
}

/* search_build(ids, indptr, indices, weights) -> graph capsule */
static PyObject *search_build(PyObject *self, PyObject *args) {
    PyObject *objs[S_NVIEWS];
    (void)self;
    if (!PyArg_ParseTuple(args, "OOOO", &objs[S_IDS], &objs[S_INDPTR],
                          &objs[S_INDICES], &objs[S_WEIGHTS])) {
        return NULL;
    }
    SearchGraph *g = (SearchGraph *)calloc(1, sizeof(SearchGraph));
    if (g == NULL) {
        return PyErr_NoMemory();
    }
    const void *ptrs[S_NVIEWS];
    Py_ssize_t counts[S_NVIEWS];
    for (int i = 0; i < S_NVIEWS; i++) {
        if (borrow_buffer(objs[i], &g->views[i], &ptrs[i], &counts[i]) < 0) {
            release_views(g->views, i);
            free(g);
            return NULL;
        }
    }
    g->n = counts[S_IDS];
    g->ids = (const int64_t *)ptrs[S_IDS];
    g->indptr = (const int64_t *)ptrs[S_INDPTR];
    g->indices = (const int64_t *)ptrs[S_INDICES];
    g->weights = (const double *)ptrs[S_WEIGHTS];
    int valid = counts[S_INDPTR] == g->n + 1 &&
                counts[S_INDICES] == counts[S_WEIGHTS] &&
                (g->n == 0 || g->indptr[g->n] == counts[S_INDICES]);
    if (valid) {
        for (int64_t e = 0; e < counts[S_INDICES]; e++) {
            if (g->indices[e] < 0 || g->indices[e] >= g->n) {
                valid = 0;
                break;
            }
        }
    }
    if (!valid) {
        release_views(g->views, S_NVIEWS);
        free(g);
        PyErr_SetString(PyExc_ValueError, "search-graph CSR arrays are inconsistent");
        return NULL;
    }
    PyObject *capsule = PyCapsule_New(g, SEARCH_CAPSULE, search_destructor);
    if (capsule == NULL) {
        release_views(g->views, S_NVIEWS);
        free(g);
    }
    return capsule;
}

static SearchGraph *search_from_arg(PyObject *arg) {
    return (SearchGraph *)PyCapsule_GetPointer(arg, SEARCH_CAPSULE);
}

static int search_scratch(SearchGraph *g) {
    if (g->dist_stamp_f != NULL) {
        return 0;
    }
    size_t n = (size_t)(g->n > 0 ? g->n : 1);
    g->dist_stamp_f = (int64_t *)calloc(n, sizeof(int64_t));
    g->dist_stamp_b = (int64_t *)calloc(n, sizeof(int64_t));
    g->settled_stamp_f = (int64_t *)calloc(n, sizeof(int64_t));
    g->settled_stamp_b = (int64_t *)calloc(n, sizeof(int64_t));
    g->dist_f = (double *)malloc(n * sizeof(double));
    g->dist_b = (double *)malloc(n * sizeof(double));
    g->settled_val = (double *)malloc(n * sizeof(double));
    if (g->dist_stamp_f == NULL || g->dist_stamp_b == NULL ||
        g->settled_stamp_f == NULL || g->settled_stamp_b == NULL ||
        g->dist_f == NULL || g->dist_b == NULL || g->settled_val == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    g->stamp = 0;
    return 0;
}

/* Bidirectional search body; `ch_mode` selects the stopping rule:
 *   0 -> GraphSnapshot.bidijkstra:  stop when best <= top_f + top_b
 *   1 -> ShortcutStore.query:       stop when min(top_f, top_b) >= best
 * Both are literal ports (same alternation, same lazy deletion, same float
 * arithmetic) of the Python references. */
static double search_bidirectional(SearchGraph *g, int64_t rs, int64_t rt,
                                   int ch_mode, int *failed) {
    *failed = 0;
    if (rs == rt) {
        return 0.0;
    }
    if (search_scratch(g) < 0) {
        *failed = 1;
        return 0.0;
    }
    int64_t stamp = ++g->stamp;
    Heap *hf = &g->heap_f;
    Heap *hb = &g->heap_b;
    hf->size = 0;
    hb->size = 0;
    g->dist_f[rs] = 0.0;
    g->dist_stamp_f[rs] = stamp;
    g->dist_b[rt] = 0.0;
    g->dist_stamp_b[rt] = stamp;
    if (heap_push(hf, 0.0, g->ids[rs], rs) < 0 ||
        heap_push(hb, 0.0, g->ids[rt], rt) < 0) {
        PyErr_NoMemory();
        *failed = 1;
        return 0.0;
    }
    double best = Py_HUGE_VAL;
    while (hf->size > 0 || hb->size > 0) {
        double top_f = hf->size ? hf->items[0].dist : Py_HUGE_VAL;
        double top_b = hb->size ? hb->items[0].dist : Py_HUGE_VAL;
        if (ch_mode) {
            if ((top_f <= top_b ? top_f : top_b) >= best) {
                break;
            }
        } else {
            if (best <= top_f + top_b) {
                break;
            }
        }
        int forward = top_f <= top_b && hf->size > 0;
        if (!forward && hb->size == 0) {
            break;
        }
        Heap *heap = forward ? hf : hb;
        int64_t *settled_stamp = forward ? g->settled_stamp_f : g->settled_stamp_b;
        int64_t *dist_stamp = forward ? g->dist_stamp_f : g->dist_stamp_b;
        double *dist = forward ? g->dist_f : g->dist_b;
        int64_t *other_dist_stamp = forward ? g->dist_stamp_b : g->dist_stamp_f;
        double *other_dist = forward ? g->dist_b : g->dist_f;
        HeapEntry top = heap_pop(heap);
        int64_t v = top.row;
        if (settled_stamp[v] == stamp) {
            continue;
        }
        settled_stamp[v] = stamp;
        if (other_dist_stamp[v] == stamp) {
            double candidate = top.dist + other_dist[v];
            if (candidate < best) {
                best = candidate;
            }
        }
        const int64_t *nbr = g->indices + g->indptr[v];
        const int64_t *nbr_end = g->indices + g->indptr[v + 1];
        const double *wgt = g->weights + g->indptr[v];
        for (; nbr < nbr_end; nbr++, wgt++) {
            int64_t u = *nbr;
            double nd = top.dist + *wgt;
            double du = (dist_stamp[u] == stamp) ? dist[u] : Py_HUGE_VAL;
            if (nd < du) {
                dist[u] = nd;
                dist_stamp[u] = stamp;
                if (heap_push(heap, nd, g->ids[u], u) < 0) {
                    PyErr_NoMemory();
                    *failed = 1;
                    return 0.0;
                }
                if (other_dist_stamp[u] == stamp) {
                    double candidate = nd + other_dist[u];
                    if (candidate < best) {
                        best = candidate;
                    }
                }
            }
        }
    }
    return best;
}

/* bidijkstra(graph, rs, rt, ch_mode) -> distance */
static PyObject *search_query(PyObject *self, PyObject *const *args,
                              Py_ssize_t nargs) {
    (void)self;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "search(graph, rs, rt, ch_mode) takes 4 arguments");
        return NULL;
    }
    SearchGraph *g = search_from_arg(args[0]);
    if (g == NULL) {
        return NULL;
    }
    long rs = PyLong_AsLong(args[1]);
    long rt = PyLong_AsLong(args[2]);
    long ch_mode = PyLong_AsLong(args[3]);
    if ((rs == -1 || rt == -1 || ch_mode == -1) && PyErr_Occurred()) {
        return NULL;
    }
    if (rs < 0 || rs >= g->n || rt < 0 || rt >= g->n) {
        PyErr_SetString(PyExc_IndexError, "search-graph row out of range");
        return NULL;
    }
    int failed;
    double result = search_bidirectional(g, rs, rt, ch_mode != 0, &failed);
    if (failed) {
        return NULL;
    }
    return PyFloat_FromDouble(result);
}

/* query_pairs(graph, s_rows, t_rows, out, ch_mode): the scalar search looped
 * in C -- identical per-pair results, no per-pair Python. */
static PyObject *search_query_pairs(PyObject *self, PyObject *const *args,
                                    Py_ssize_t nargs) {
    (void)self;
    if (nargs != 5) {
        PyErr_SetString(PyExc_TypeError,
                        "query_pairs(graph, s_rows, t_rows, out, ch_mode) takes 5 arguments");
        return NULL;
    }
    SearchGraph *g = search_from_arg(args[0]);
    if (g == NULL) {
        return NULL;
    }
    long ch_mode = PyLong_AsLong(args[4]);
    if (ch_mode == -1 && PyErr_Occurred()) {
        return NULL;
    }
    Py_buffer s_view, t_view, out_view;
    if (PyObject_GetBuffer(args[1], &s_view, PyBUF_C_CONTIGUOUS) < 0) {
        return NULL;
    }
    if (pair_buffers(args[2], args[3], &t_view, &out_view) < 0) {
        PyBuffer_Release(&s_view);
        return NULL;
    }
    if (s_view.itemsize != 8 || s_view.len != t_view.len) {
        PyBuffer_Release(&s_view);
        PyBuffer_Release(&t_view);
        PyBuffer_Release(&out_view);
        PyErr_SetString(PyExc_TypeError,
                        "s_rows/t_rows/out must be matching 8-byte buffers");
        return NULL;
    }
    const int64_t *s_rows = (const int64_t *)s_view.buf;
    const int64_t *t_rows = (const int64_t *)t_view.buf;
    double *out = (double *)out_view.buf;
    Py_ssize_t m = s_view.len / 8;
    int failed = 0;
    for (Py_ssize_t i = 0; i < m; i++) {
        int64_t rs = s_rows[i];
        int64_t rt = t_rows[i];
        if (rs < 0 || rs >= g->n || rt < 0 || rt >= g->n) {
            PyErr_SetString(PyExc_IndexError, "search-graph row out of range");
            failed = 1;
            break;
        }
        out[i] = search_bidirectional(g, rs, rt, ch_mode != 0, &failed);
        if (failed) {
            break;
        }
    }
    PyBuffer_Release(&s_view);
    PyBuffer_Release(&t_view);
    PyBuffer_Release(&out_view);
    if (failed) {
        return NULL;
    }
    Py_RETURN_NONE;
}

/* one_to_many(graph, rs, t_rows, out): one truncated Dijkstra from rs -- a
 * literal port of GraphSnapshot._dijkstra + one_to_many.  Settle-time
 * distances are recorded separately so the output matches the reference's
 * `settled` dict byte for byte. */
static PyObject *search_one_to_many(PyObject *self, PyObject *const *args,
                                    Py_ssize_t nargs) {
    (void)self;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "one_to_many(graph, rs, t_rows, out) takes 4 arguments");
        return NULL;
    }
    SearchGraph *g = search_from_arg(args[0]);
    if (g == NULL) {
        return NULL;
    }
    long rs = PyLong_AsLong(args[1]);
    if (rs == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (rs < 0 || rs >= g->n) {
        PyErr_SetString(PyExc_IndexError, "search-graph row out of range");
        return NULL;
    }
    Py_buffer t_view, out_view;
    if (pair_buffers(args[2], args[3], &t_view, &out_view) < 0) {
        return NULL;
    }
    const int64_t *t_rows = (const int64_t *)t_view.buf;
    double *out = (double *)out_view.buf;
    Py_ssize_t m = t_view.len / 8;
    int failed = 0;
    if (search_scratch(g) < 0) {
        failed = 1;
    }
    if (!failed) {
        int64_t stamp = ++g->stamp;
        /* dist_stamp_b doubles as the "is a pending target" marker. */
        int64_t remaining = 0;
        for (Py_ssize_t i = 0; i < m; i++) {
            int64_t rt = t_rows[i];
            if (rt < 0 || rt >= g->n) {
                PyErr_SetString(PyExc_IndexError, "search-graph row out of range");
                failed = 1;
                break;
            }
            if (g->dist_stamp_b[rt] != stamp) {
                g->dist_stamp_b[rt] = stamp;
                remaining++;
            }
        }
        if (!failed) {
            Heap *heap = &g->heap_f;
            heap->size = 0;
            g->dist_f[rs] = 0.0;
            g->dist_stamp_f[rs] = stamp;
            if (heap_push(heap, 0.0, g->ids[rs], rs) < 0) {
                PyErr_NoMemory();
                failed = 1;
            }
            while (!failed && heap->size > 0) {
                HeapEntry top = heap_pop(heap);
                int64_t v = top.row;
                if (g->settled_stamp_f[v] == stamp) {
                    continue;
                }
                g->settled_stamp_f[v] = stamp;
                g->settled_val[v] = top.dist;
                if (g->dist_stamp_b[v] == stamp) {
                    g->dist_stamp_b[v] = stamp - 1; /* discard from remaining */
                    if (--remaining == 0) {
                        break;
                    }
                }
                const int64_t *nbr = g->indices + g->indptr[v];
                const int64_t *nbr_end = g->indices + g->indptr[v + 1];
                const double *wgt = g->weights + g->indptr[v];
                for (; nbr < nbr_end; nbr++, wgt++) {
                    int64_t u = *nbr;
                    double nd = top.dist + *wgt;
                    double du = (g->dist_stamp_f[u] == stamp) ? g->dist_f[u]
                                                              : Py_HUGE_VAL;
                    if (nd < du) {
                        g->dist_f[u] = nd;
                        g->dist_stamp_f[u] = stamp;
                        if (heap_push(heap, nd, g->ids[u], u) < 0) {
                            PyErr_NoMemory();
                            failed = 1;
                            break;
                        }
                    }
                }
            }
            if (!failed) {
                for (Py_ssize_t i = 0; i < m; i++) {
                    int64_t rt = t_rows[i];
                    out[i] = (g->settled_stamp_f[rt] == stamp) ? g->settled_val[rt]
                                                               : Py_HUGE_VAL;
                }
            }
        }
    }
    PyBuffer_Release(&t_view);
    PyBuffer_Release(&out_view);
    if (failed) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyMethodDef methods[] = {
    {"build", label_build, METH_VARARGS,
     "build(mask, comp, first, logs, tbl_flat, tbl_off, pos_indptr, pos_data, "
     "dis_indptr, dis_data) -> label-store capsule (buffers borrowed, not copied)"},
    {"query", (PyCFunction)label_query, METH_FASTCALL,
     "query(store, rs, rt) -> distance"},
    {"one_to_many", (PyCFunction)label_one_to_many, METH_FASTCALL,
     "one_to_many(store, rs, t_rows, out) -> None (fills out)"},
    {"query_pairs", (PyCFunction)label_query_pairs, METH_FASTCALL,
     "query_pairs(store, s_rows, t_rows, out) -> None (fills out)"},
    {"search_build", search_build, METH_VARARGS,
     "search_build(ids, indptr, indices, weights) -> CSR search-graph capsule "
     "(buffers borrowed, not copied)"},
    {"search_query", (PyCFunction)search_query, METH_FASTCALL,
     "search_query(graph, rs, rt, ch_mode) -> bidirectional-search distance"},
    {"search_query_pairs", (PyCFunction)search_query_pairs, METH_FASTCALL,
     "search_query_pairs(graph, s_rows, t_rows, out, ch_mode) -> None (fills out)"},
    {"search_one_to_many", (PyCFunction)search_one_to_many, METH_FASTCALL,
     "search_one_to_many(graph, rs, t_rows, out) -> None (truncated Dijkstra)"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "_labelkernel", NULL, -1, methods,
    NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC PyInit__labelkernel(void) { return PyModule_Create(&moduledef); }
