"""Unified flat-array arena shared by every frozen kernel store.

Before this module each kernel store (:class:`~repro.kernels.label_store.
LabelStore`, :class:`~repro.kernels.graph_snapshot.GraphSnapshot`,
:class:`~repro.kernels.shortcut_store.ShortcutStore`, :class:`~repro.kernels.
hub_store.HubStore`) carried its own loose bag of numpy arrays and its own
bespoke snapshot wire format.  An :class:`Arena` replaces all of that with
one memory model:

* **one contiguous buffer** — every array of a frozen store lives at an
  aligned offset inside a single ``uint8`` buffer, described by a small table
  of contents (``name -> (dtype, offset, count)``);
* **one serialization** — ``repro.store`` persists an arena as a single
  payload array plus the JSON table of contents, so a store round-trips as
  one buffer handoff instead of N array references;
* **one sharing path** — ``repro.cluster`` workers warm-start from the same
  mmap-backed snapshot payload; because :meth:`Arena.from_state` wraps the
  mapped bytes without copying (when they are suitably aligned), every shard
  executes its native kernels directly over the shared page cache;
* **one native handoff** — the C kernels of :mod:`repro.kernels.native`
  borrow the buffers via the buffer protocol (no memcpy), so a frozen kernel
  epoch is pointers into this arena, wherever its bytes physically live.

Arenas are immutable by contract: a store freezes one per kernel epoch and
never writes to it afterwards.  Views are plain numpy slices of the buffer —
zero-copy, C-contiguous, and safe to hand to the native kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro.exceptions import VertexNotFoundError

#: Offset alignment inside the buffer.  64 bytes keeps every view cache-line
#: aligned when the buffer itself is (fresh allocations are; mmap-backed
#: buffers are checked and re-based if the payload landed unaligned).
ALIGN = 64

#: dtypes an arena may carry — everything the kernel stores use.
_DTYPES = ("int64", "float64", "int32", "float32", "uint8")


class Arena:
    """Named, typed, immutable array views over one contiguous byte buffer."""

    __slots__ = ("buffer", "toc", "_views")

    def __init__(self, buffer, toc: Sequence[Tuple[str, str, int, int]]):
        self.buffer = buffer
        self.toc = [tuple(entry) for entry in toc]
        self._views: Dict[str, object] = {}
        for name, dtype, offset, count in self.toc:
            if dtype not in _DTYPES:
                raise ValueError(f"arena entry {name!r} has unsupported dtype {dtype!r}")
            itemsize = np.dtype(dtype).itemsize
            end = offset + count * itemsize
            if offset < 0 or end > buffer.nbytes:
                raise ValueError(
                    f"arena entry {name!r} [{offset}:{end}] exceeds the "
                    f"{buffer.nbytes}-byte buffer"
                )
            self._views[name] = buffer[offset:end].view(dtype)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, arrays: Dict[str, object]) -> "Arena":
        """Pack named arrays into one aligned contiguous buffer.

        Insertion order is preserved in the table of contents; each array is
        converted to a C-contiguous 1-D array of its (preserved) dtype.
        """
        prepared: List[Tuple[str, object]] = []
        for name, values in arrays.items():
            array = np.ascontiguousarray(values)
            if array.ndim != 1:
                array = array.reshape(-1)
            if array.dtype.name not in _DTYPES:
                raise ValueError(
                    f"arena entry {name!r} has unsupported dtype {array.dtype}"
                )
            prepared.append((name, array))
        offset = 0
        toc: List[Tuple[str, str, int, int]] = []
        for name, array in prepared:
            offset = -(-offset // ALIGN) * ALIGN  # round up
            toc.append((name, array.dtype.name, offset, array.size))
            offset += array.nbytes
        buffer = np.zeros(offset if offset else 1, dtype=np.uint8)
        for (name, dtype, start, count), (_, array) in zip(toc, prepared):
            buffer[start : start + array.nbytes] = array.view(np.uint8)
        return cls(buffer, toc)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def view(self, name: str):
        """The zero-copy typed view of one entry (raises ``KeyError`` if absent)."""
        return self._views[name]

    def __getitem__(self, name: str):
        return self._views[name]

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def names(self) -> List[str]:
        return [entry[0] for entry in self.toc]

    @property
    def nbytes(self) -> int:
        return int(self.buffer.nbytes)

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> Dict[str, object]:
        """Serialize as one payload array plus the JSON table of contents."""
        return {
            "arena": io.put_array(self.buffer),
            "toc": [list(entry) for entry in self.toc],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], io) -> "Arena":
        """Reattach an arena onto a (possibly mmap-backed) payload array.

        The payload bytes are wrapped without copying whenever their base
        address is 8-byte aligned — the case for fresh arrays and for mmap
        views starting at aligned file offsets — so a cluster shard's kernels
        execute directly over the shared snapshot pages.  An unaligned
        payload (possible for npz members at odd zip offsets) is copied once
        into an aligned private buffer rather than served via misaligned
        loads.
        """
        raw = io.get_array(state["arena"])
        buffer = np.asarray(raw).view(np.uint8).reshape(-1)
        if buffer.ctypes.data % 8 != 0:  # pragma: no cover - zip-layout dependent
            buffer = np.array(buffer, dtype=np.uint8)
        return cls(buffer, [tuple(entry) for entry in state["toc"]])

    def is_shared(self) -> bool:
        """True when the buffer is a view onto an mmap-backed payload."""
        base = self.buffer
        while base is not None:
            if isinstance(base, np.memmap):
                return True
            base = getattr(base, "base", None)
        return False


# ----------------------------------------------------------------------
# Row mapping (shared by every arena-backed store)
# ----------------------------------------------------------------------

#: Largest vertex id (relative to the row count) for which the dense
#: id->row remap array is built; sparser id spaces keep the dict path.
REMAP_SLACK = 1024


def build_remap(ids) -> Optional[object]:
    """Dense ``id -> row`` remap array for compact integer id spaces.

    Returns ``None`` when the ids are not nonnegative integers or the id
    space is too sparse for a dense table to pay off; callers then fall back
    to the row dict.
    """
    if np is None or len(ids) == 0:
        return None
    try:
        arr = np.asarray(ids, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        return None
    lo = int(arr.min())
    hi = int(arr.max())
    if lo < 0 or hi >= len(arr) + REMAP_SLACK:
        return None
    remap = np.full(hi + 1, -1, dtype=np.int64)
    remap[arr] = np.arange(len(arr), dtype=np.int64)
    return remap


def rows_of(row: Dict, remap, vertices: Sequence):
    """Map a vertex sequence to an ``int64`` row array for the native kernels.

    With a dense remap this is one conversion plus one gather — no per-vertex
    Python.  Unknown vertices raise :class:`VertexNotFoundError` naming the
    first offender.
    """
    if remap is not None:
        try:
            arr = np.asarray(vertices, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            arr = None
        if arr is not None and arr.ndim == 1:
            if arr.size == 0:
                return arr
            if int(arr.min()) >= 0 and int(arr.max()) < len(remap):
                rows = remap[arr]
                if int(rows.min()) >= 0:
                    return rows
            for v in vertices:
                if v not in row:
                    raise VertexNotFoundError(v)
    try:
        return np.fromiter(
            (row[v] for v in vertices), dtype=np.int64, count=len(vertices)
        )
    except (KeyError, TypeError):
        for v in vertices:
            if v not in row:
                raise VertexNotFoundError(v) from None
        raise
