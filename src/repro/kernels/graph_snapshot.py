"""Frozen CSR snapshot of the live graph for index-free query stages.

Stage-1 queries (BiDijkstra) and the truncated one-to-many Dijkstras of the
batch plane repeatedly walk ``Graph._adj`` — a dict of dicts whose per-edge
iteration cost dominates small-graph searches.  A :class:`GraphSnapshot`
freezes the adjacency into CSR arrays (``indptr`` / ``indices`` / ``weights``
via :meth:`repro.graph.graph.Graph.to_csr`) plus per-vertex materialised
``(neighbor, weight)`` tuple lists, which the search loops iterate directly.

The searches below are literal ports of :func:`repro.algorithms.dijkstra.
bidijkstra` and :func:`~repro.algorithms.dijkstra.dijkstra` — same
relaxation order (CSR rows preserve the adjacency-dict iteration order),
same heap keys (original vertex ids), same float arithmetic — so their
results are bit-identical to the live-graph reference.

Every snapshot records ``graph.version`` at freeze time; holders use
:meth:`is_fresh` to detect out-of-band mutation.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.exceptions import VertexNotFoundError
from repro.graph.graph import Graph

INF = math.inf


class GraphSnapshot:
    """Immutable CSR adjacency snapshot of one :class:`Graph` epoch."""

    __slots__ = ("version", "_pairs")

    def __init__(self, graph: Graph):
        self.version = graph.version
        # The CSR export is consumed eagerly into per-vertex neighbour tuple
        # lists (what the search loops iterate); the raw offset arrays are
        # not retained — keeping both would double the snapshot's footprint.
        ids, indptr, indices, weights = graph.to_csr()
        pairs: Dict[int, List[Tuple[int, float]]] = {}
        for position, vertex in enumerate(ids):
            start, end = indptr[position], indptr[position + 1]
            pairs[vertex] = [
                (ids[indices[j]], weights[j]) for j in range(start, end)
            ]
        self._pairs = pairs

    @classmethod
    def freeze(cls, graph: Graph) -> "GraphSnapshot":
        if obs.is_enabled():
            obs.registry().counter(
                "repro_kernel_store_freezes_total",
                "Frozen kernel stores built, by store kind",
                store="graph_snapshot",
            ).inc()
        return cls(graph)

    def is_fresh(self, graph: Graph) -> bool:
        """True while the snapshot still matches the live graph."""
        return self.version == graph.version

    def has_vertex(self, v: int) -> bool:
        return v in self._pairs

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> dict:
        """Serialize the frozen adjacency as CSR arrays (order-preserving)."""
        from repro.store.codec import pack_pairs_csr

        return {"kind": "graph_snapshot", **pack_pairs_csr(self._pairs.items(), io)}

    @classmethod
    def from_state(cls, state: dict, io, graph: Graph) -> "GraphSnapshot":
        """Reattach a snapshot, re-keyed to the *loaded* graph's version."""
        from repro.store.codec import unpack_pairs_csr

        snapshot = cls.__new__(cls)
        snapshot.version = graph.version
        snapshot._pairs = unpack_pairs_csr(state, io)
        return snapshot

    # ------------------------------------------------------------------
    # Searches (bit-identical ports of repro.algorithms.dijkstra)
    # ------------------------------------------------------------------
    def bidijkstra(self, source: int, target: int) -> float:
        """Bidirectional Dijkstra over the frozen adjacency."""
        pairs = self._pairs
        if source not in pairs:
            raise VertexNotFoundError(source)
        if target not in pairs:
            raise VertexNotFoundError(target)
        if source == target:
            return 0.0

        dist_f: Dict[int, float] = {source: 0.0}
        dist_b: Dict[int, float] = {target: 0.0}
        settled_f: set = set()
        settled_b: set = set()
        heap_f: List[Tuple[float, int]] = [(0.0, source)]
        heap_b: List[Tuple[float, int]] = [(0.0, target)]
        best = INF

        while heap_f or heap_b:
            top_f = heap_f[0][0] if heap_f else INF
            top_b = heap_b[0][0] if heap_b else INF
            if best <= top_f + top_b:
                break
            if top_f <= top_b and heap_f:
                d, v = heapq.heappop(heap_f)
                if v in settled_f:
                    continue
                settled_f.add(v)
                if v in dist_b:
                    best = min(best, d + dist_b[v])
                for u, w in pairs[v]:
                    nd = d + w
                    if nd < dist_f.get(u, INF):
                        dist_f[u] = nd
                        heapq.heappush(heap_f, (nd, u))
                        if u in dist_b:
                            best = min(best, nd + dist_b[u])
            elif heap_b:
                d, v = heapq.heappop(heap_b)
                if v in settled_b:
                    continue
                settled_b.add(v)
                if v in dist_f:
                    best = min(best, d + dist_f[v])
                for u, w in pairs[v]:
                    nd = d + w
                    if nd < dist_b.get(u, INF):
                        dist_b[u] = nd
                        heapq.heappush(heap_b, (nd, u))
                        if u in dist_f:
                            best = min(best, nd + dist_f[u])
            else:
                break
        return best

    def one_to_many(self, source: int, targets: Iterable[int]) -> List[float]:
        """One truncated Dijkstra from ``source``; distances in target order."""
        pairs = self._pairs
        if source not in pairs:
            raise VertexNotFoundError(source)
        target_list = list(targets)
        for target in target_list:
            if target not in pairs:
                raise VertexNotFoundError(target)
        settled = self._dijkstra(source, target_list)
        return [settled.get(target, INF) for target in target_list]

    def _dijkstra(
        self, source: int, targets: Optional[Iterable[int]] = None
    ) -> Dict[int, float]:
        pairs = self._pairs
        remaining = set(targets) if targets is not None else None
        dist: Dict[int, float] = {source: 0.0}
        settled: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, v = heapq.heappop(heap)
            if v in settled:
                continue
            settled[v] = d
            if remaining is not None:
                remaining.discard(v)
                if not remaining:
                    break
            for u, w in pairs[v]:
                nd = d + w
                if nd < dist.get(u, INF):
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return settled
