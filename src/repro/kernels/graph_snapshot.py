"""Frozen CSR snapshot of the live graph for index-free query stages.

Stage-1 queries (BiDijkstra) and the truncated one-to-many Dijkstras of the
batch plane repeatedly walk ``Graph._adj`` — a dict of dicts whose per-edge
iteration cost dominates small-graph searches.  A :class:`GraphSnapshot`
freezes the adjacency into CSR arrays (``indptr`` / ``indices`` / ``weights``
via :meth:`repro.graph.graph.Graph.to_csr`) packed into one
:class:`~repro.kernels.arena.Arena` — the same buffer ``repro.store``
serializes and ``repro.cluster`` workers mmap-share.

The fallback ladder, top to bottom:

* **native backend** — the C search kernel of ``repro.kernels.native``
  borrows the arena views (no copy) and runs the bidirectional search /
  truncated one-to-many Dijkstra entirely in C;
* **pure Python** — the loops below iterate per-vertex ``(neighbor,
  weight)`` tuple lists materialised lazily from the same CSR arrays.

Both are literal ports of :func:`repro.algorithms.dijkstra.bidijkstra` and
:func:`~repro.algorithms.dijkstra.dijkstra` — same relaxation order (CSR
rows preserve the adjacency-dict iteration order), same heap keys
(``(distance, original vertex id)``), same float arithmetic — so their
results are bit-identical to the live-graph reference.

Every snapshot records ``graph.version`` at freeze time; holders use
:meth:`is_fresh` to detect out-of-band mutation.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro import obs
from repro.exceptions import VertexNotFoundError
from repro.graph.graph import Graph
from repro.kernels.arena import Arena, build_remap, rows_of
from repro.kernels.native import native_kernel

INF = math.inf


class GraphSnapshot:
    """Immutable CSR adjacency snapshot of one :class:`Graph` epoch."""

    __slots__ = ("version", "arena", "row", "_remap", "capsule", "_pairs_cache")

    def __init__(self, graph: Graph):
        self.version = graph.version
        ids, indptr, indices, weights = graph.to_csr()
        self._init_from_csr(ids, indptr, indices, weights)

    def _init_from_csr(self, ids, indptr, indices, weights) -> None:
        self.arena = None
        self.capsule = None
        self._remap = None
        self._pairs_cache = None
        if np is not None:
            try:
                ids_arr = np.asarray(ids, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                ids_arr = None  # non-integer vertex ids: pure-Python path
            if ids_arr is not None:
                self.arena = Arena.pack(
                    {
                        "ids": ids_arr,
                        "indptr": np.asarray(indptr, dtype=np.int64),
                        "indices": np.asarray(indices, dtype=np.int64),
                        "weights": np.asarray(weights, dtype=np.float64),
                    }
                )
                self._remap = build_remap(self.arena["ids"])
                kernel = native_kernel()
                if kernel is not None:
                    self.capsule = kernel.search_build(
                        self.arena["ids"],
                        self.arena["indptr"],
                        self.arena["indices"],
                        self.arena["weights"],
                    )
        if self.arena is not None:
            self.row = {v: i for i, v in enumerate(self.arena["ids"].tolist())}
        else:
            self.row = {v: i for i, v in enumerate(ids)}
            self._pairs_cache = self._pairs_from_csr(ids, indptr, indices, weights)

    @staticmethod
    def _pairs_from_csr(ids, indptr, indices, weights):
        pairs: Dict[int, List[Tuple[int, float]]] = {}
        for position, vertex in enumerate(ids):
            start, end = indptr[position], indptr[position + 1]
            pairs[vertex] = [
                (ids[indices[j]], weights[j]) for j in range(start, end)
            ]
        return pairs

    @property
    def _pairs(self) -> Dict[int, List[Tuple[int, float]]]:
        """Per-vertex neighbour tuple lists for the pure-Python search loops
        (materialised lazily from the arena; the values are the same float64
        weights the native kernel reads)."""
        if self._pairs_cache is None:
            arena = self.arena
            self._pairs_cache = self._pairs_from_csr(
                arena["ids"].tolist(),
                arena["indptr"].tolist(),
                arena["indices"].tolist(),
                arena["weights"].tolist(),
            )
        return self._pairs_cache

    @classmethod
    def freeze(cls, graph: Graph) -> "GraphSnapshot":
        if obs.is_enabled():
            obs.registry().counter(
                "repro_kernel_store_freezes_total",
                "Frozen kernel stores built, by store kind",
                store="graph_snapshot",
            ).inc()
        return cls(graph)

    def is_fresh(self, graph: Graph) -> bool:
        """True while the snapshot still matches the live graph."""
        return self.version == graph.version

    def has_vertex(self, v: int) -> bool:
        return v in self.row

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> dict:
        """Serialize the frozen adjacency: the arena on array-capable
        backends, order-preserving CSR lists otherwise."""
        if self.arena is not None and getattr(io, "backend", None) == "npz":
            state = self.arena.to_state(io)
            state["kind"] = "graph_snapshot"
            return state
        from repro.store.codec import pack_pairs_csr

        return {"kind": "graph_snapshot", **pack_pairs_csr(self._pairs.items(), io)}

    @classmethod
    def from_state(cls, state: dict, io, graph: Graph) -> "GraphSnapshot":
        """Reattach a snapshot, re-keyed to the *loaded* graph's version.

        Arena-format states rebuild the native path directly over the
        (possibly mmap-backed) payload buffer; legacy pairs-CSR states are
        re-packed into a private arena.
        """
        snapshot = cls.__new__(cls)
        snapshot.version = graph.version
        if "arena" in state and np is not None:
            arena = Arena.from_state(state, io)
            snapshot.arena = arena
            snapshot.capsule = None
            snapshot._pairs_cache = None
            snapshot.row = {v: i for i, v in enumerate(arena["ids"].tolist())}
            snapshot._remap = build_remap(arena["ids"])
            kernel = native_kernel()
            if kernel is not None:
                snapshot.capsule = kernel.search_build(
                    arena["ids"], arena["indptr"], arena["indices"], arena["weights"]
                )
            return snapshot
        from repro.store.codec import unpack_pairs_csr

        pairs = unpack_pairs_csr(state, io)
        ids = list(pairs)
        position = {v: i for i, v in enumerate(ids)}
        indptr = [0]
        indices: List[int] = []
        weights: List[float] = []
        for v in ids:
            for u, w in pairs[v]:
                indices.append(position[u])
                weights.append(w)
            indptr.append(len(indices))
        snapshot._init_from_csr(ids, indptr, indices, weights)
        return snapshot

    # ------------------------------------------------------------------
    # Searches (bit-identical ports of repro.algorithms.dijkstra)
    # ------------------------------------------------------------------
    def bidijkstra(self, source: int, target: int) -> float:
        """Bidirectional Dijkstra over the frozen adjacency."""
        row = self.row
        if source not in row:
            raise VertexNotFoundError(source)
        if target not in row:
            raise VertexNotFoundError(target)
        if source == target:
            return 0.0
        if self.capsule is not None:
            return native_kernel().search_query(
                self.capsule, row[source], row[target], 0
            )
        return self._bidijkstra_py(source, target)

    def _bidijkstra_py(self, source: int, target: int) -> float:
        pairs = self._pairs
        dist_f: Dict[int, float] = {source: 0.0}
        dist_b: Dict[int, float] = {target: 0.0}
        settled_f: set = set()
        settled_b: set = set()
        heap_f: List[Tuple[float, int]] = [(0.0, source)]
        heap_b: List[Tuple[float, int]] = [(0.0, target)]
        best = INF

        while heap_f or heap_b:
            top_f = heap_f[0][0] if heap_f else INF
            top_b = heap_b[0][0] if heap_b else INF
            if best <= top_f + top_b:
                break
            if top_f <= top_b and heap_f:
                d, v = heapq.heappop(heap_f)
                if v in settled_f:
                    continue
                settled_f.add(v)
                if v in dist_b:
                    best = min(best, d + dist_b[v])
                for u, w in pairs[v]:
                    nd = d + w
                    if nd < dist_f.get(u, INF):
                        dist_f[u] = nd
                        heapq.heappush(heap_f, (nd, u))
                        if u in dist_b:
                            best = min(best, nd + dist_b[u])
            elif heap_b:
                d, v = heapq.heappop(heap_b)
                if v in settled_b:
                    continue
                settled_b.add(v)
                if v in dist_f:
                    best = min(best, d + dist_f[v])
                for u, w in pairs[v]:
                    nd = d + w
                    if nd < dist_b.get(u, INF):
                        dist_b[u] = nd
                        heapq.heappush(heap_b, (nd, u))
                        if u in dist_f:
                            best = min(best, nd + dist_f[u])
            else:
                break
        return best

    def one_to_many(self, source: int, targets: Iterable[int]) -> List[float]:
        """One truncated Dijkstra from ``source``; distances in target order."""
        row = self.row
        if source not in row:
            raise VertexNotFoundError(source)
        target_list = list(targets)
        if not target_list:
            return []
        if self.capsule is not None:
            t_rows = rows_of(row, self._remap, target_list)
            out = np.empty(len(target_list), dtype=np.float64)
            native_kernel().search_one_to_many(self.capsule, row[source], t_rows, out)
            return out.tolist()
        for target in target_list:
            if target not in row:
                raise VertexNotFoundError(target)
        settled = self._dijkstra(source, target_list)
        return [settled.get(target, INF) for target in target_list]

    def _dijkstra(
        self, source: int, targets: Optional[Iterable[int]] = None
    ) -> Dict[int, float]:
        pairs = self._pairs
        remaining = set(targets) if targets is not None else None
        dist: Dict[int, float] = {source: 0.0}
        settled: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, v = heapq.heappop(heap)
            if v in settled:
                continue
            settled[v] = d
            if remaining is not None:
                remaining.discard(v)
                if not remaining:
                    break
            for u, w in pairs[v]:
                nd = d + w
                if nd < dist.get(u, INF):
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return settled
