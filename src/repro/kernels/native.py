"""Build/load machinery for the native (C) label-store kernel.

The scalar H2H-family query is a ~20-entry hub scan whose per-element cost in
CPython is irreducible (~40 ns of interpreter work per hub); compiling the
scan — and the Euler-tour LCA feeding it — to C is what moves the scalar
query from "somewhat faster" to "memory-bandwidth bound".  The kernel is a
single small extension module (``_labelkernel.c``, shipped next to this file)
compiled on demand with the platform C compiler into a per-user cache
directory and loaded via :mod:`importlib`.  Nothing is downloaded and nothing
is installed: the build is one ``cc -O2 -shared`` invocation on a file that is
part of the package.

Gating: the native kernel is attempted only on CPython, can be disabled with
``REPRO_DISABLE_NATIVE_KERNELS=1``, and every failure mode (no compiler, no
headers, sandboxed filesystem, exotic platform) degrades silently to the
pure-Python/numpy paths — the kernel is an accelerator, never a dependency.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import subprocess
import sys
import sysconfig
import tempfile
import threading
from typing import Optional

_MODULE_NAME = "_labelkernel"
_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_labelkernel.c")

_lock = threading.Lock()
_loaded = False
_module = None
_failure: Optional[str] = None


def _disabled_by_env() -> bool:
    return os.environ.get("REPRO_DISABLE_NATIVE_KERNELS", "") not in ("", "0")


def _check_private(path: str) -> str:
    """Ensure ``path`` exists, is owned by us and is not group/world-writable.

    The cache directory holds shared objects that get ``exec_module``-ed; on a
    multi-user host a predictable path another user controls would be a code
    injection vector, so refuse anything we don't exclusively own.
    """
    os.makedirs(path, mode=0o700, exist_ok=True)
    if hasattr(os, "getuid"):
        info = os.stat(path)
        if info.st_uid != os.getuid() or (info.st_mode & 0o022):
            raise OSError(f"cache directory {path!r} is not exclusively ours")
    return path


def _cache_dir(tag: str) -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    try:
        return _check_private(os.path.join(base, "repro-kernels", tag))
    except OSError:
        uid = os.getuid() if hasattr(os, "getuid") else "user"
        return _check_private(
            os.path.join(tempfile.gettempdir(), f"repro-kernels-{uid}-{tag}")
        )


def _extra_cflags() -> list:
    """Extra compiler flags from ``REPRO_KERNEL_CFLAGS`` (e.g. ``-Wall -Werror``)."""
    return os.environ.get("REPRO_KERNEL_CFLAGS", "").split()


def _build_tag(source: bytes) -> str:
    """Cache key for the compiled object: ABI + source hash + flag hash.

    Hashing the C source guarantees an edited ``_labelkernel.c`` can never be
    served a stale cached binary; hashing the extra flags keeps e.g. a
    ``-Wall -Werror`` CI build from colliding with a default build.
    """
    hasher = hashlib.sha256(source)
    hasher.update(b"\x00" + " ".join(_extra_cflags()).encode())
    digest = hasher.hexdigest()[:16]
    abi = sysconfig.get_config_var("SOABI") or f"py{sys.version_info[0]}{sys.version_info[1]}"
    return f"{abi}-{digest}"


def _compile(source_path: str, out_path: str) -> Optional[str]:
    """Compile the extension; returns an error string or ``None`` on success."""
    include = sysconfig.get_paths().get("include")
    if not include or not os.path.exists(os.path.join(include, "Python.h")):
        return "Python development headers not found"
    cc = sysconfig.get_config_var("CC") or "cc"
    command = cc.split() + ["-O2", "-shared", "-fPIC", f"-I{include}"]
    command += _extra_cflags() + [source_path, "-o", out_path]
    if sys.platform == "darwin":
        command.insert(-2, "-undefined")
        command.insert(-2, "dynamic_lookup")
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=120, check=False
        )
    except (OSError, subprocess.SubprocessError) as exc:
        return f"compiler invocation failed: {exc}"
    if proc.returncode != 0:
        return f"compilation failed: {proc.stderr.strip()[:500]}"
    return None


def _load_from(path: str):
    spec = importlib.util.spec_from_file_location(_MODULE_NAME, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _try_load():
    if _disabled_by_env():
        return None, "disabled via REPRO_DISABLE_NATIVE_KERNELS"
    if sys.implementation.name != "cpython":
        return None, f"native kernel requires CPython, running {sys.implementation.name}"
    try:
        with open(_SOURCE_PATH, "rb") as handle:
            source = handle.read()
    except OSError as exc:
        return None, f"kernel source unavailable: {exc}"
    tag = _build_tag(source)
    try:
        directory = _cache_dir(tag)
    except OSError as exc:
        return None, f"no writable cache directory: {exc}"
    ext = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    target = os.path.join(directory, _MODULE_NAME + ext)
    if not os.path.exists(target):
        # Compile to a unique temp name and rename atomically so concurrent
        # processes never import a half-written shared object.
        scratch = target + f".tmp-{os.getpid()}"
        error = _compile(_SOURCE_PATH, scratch)
        if error is not None:
            try:
                os.unlink(scratch)
            except OSError:
                pass
            return None, error
        os.replace(scratch, target)
    try:
        return _load_from(target), None
    except Exception as exc:  # corrupted cache entry: rebuild once
        try:
            os.unlink(target)
        except OSError:
            return None, f"import failed: {exc}"
        scratch = target + f".tmp-{os.getpid()}"
        error = _compile(_SOURCE_PATH, scratch)
        if error is not None:
            return None, error
        os.replace(scratch, target)
        try:
            return _load_from(target), None
        except Exception as exc2:
            return None, f"import failed after rebuild: {exc2}"


def native_kernel():
    """The compiled ``_labelkernel`` module, or ``None`` when unavailable.

    The first call triggers (at most) one compilation; the result — success
    or failure — is cached for the lifetime of the process.
    """
    global _loaded, _module, _failure
    if _loaded:
        return _module
    with _lock:
        if not _loaded:
            _module, _failure = _try_load()
            _loaded = True
    return _module


def native_kernel_error() -> Optional[str]:
    """Why the native kernel is unavailable (``None`` when it loaded fine)."""
    native_kernel()
    return _failure
