"""Flattened hub-label table for the TOAIN baseline.

TOAIN materialises, per vertex, distances to its upward-reachable core
("check-in") vertices as per-vertex dicts.  A :class:`HubStore` freezes those
dicts into a CSR table — one ``int64`` array of core-slot ids and one
``float64`` array of distances — and answers the one-to-many hub join with a
dense source vector: the source's labels are scattered once into a
``core_size`` vector, every target's slots gather from it in one fancy
index, and a single ``np.minimum.reduceat`` over the concatenated hub axis
yields the per-target join minimum.

The join arithmetic matches the scalar reference (``d_s + d_t`` minimised
over the hubs both vertices share; targets with no shared hub get ``inf``),
so results are bit-identical to the dict-based loop.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro import obs
from repro.exceptions import VertexNotFoundError

INF = math.inf


class HubStore:
    """Immutable CSR snapshot of TOAIN's per-vertex core-label dicts."""

    __slots__ = ("row", "core_size", "hub_indptr", "hub_slots", "hub_dists")

    def __init__(self, row, core_size, hub_indptr, hub_slots, hub_dists):
        self.row = row
        self.core_size = core_size
        self.hub_indptr = hub_indptr
        self.hub_slots = hub_slots
        self.hub_dists = hub_dists

    @classmethod
    def freeze(
        cls, core_labels: Dict[int, Dict[int, float]], core_slots: Dict[int, int]
    ) -> Optional["HubStore"]:
        """Flatten ``core_labels`` (hub vertices mapped through ``core_slots``)."""
        if np is None or not core_labels:
            return None
        verts = sorted(core_labels)
        row = {v: i for i, v in enumerate(verts)}
        counts = [len(core_labels[v]) for v in verts]
        hub_indptr = np.zeros(len(verts) + 1, dtype=np.int64)
        np.cumsum(counts, out=hub_indptr[1:])
        total = int(hub_indptr[-1])
        hub_slots = np.empty(total, dtype=np.int64)
        hub_dists = np.empty(total, dtype=np.float64)
        offset = 0
        for v in verts:
            for hub, distance in core_labels[v].items():
                hub_slots[offset] = core_slots[hub]
                hub_dists[offset] = distance
                offset += 1
        if obs.is_enabled():
            obs.registry().counter(
                "repro_kernel_store_freezes_total",
                "Frozen kernel stores built, by store kind",
                store="hub_store",
            ).inc()
        return cls(row, len(core_slots), hub_indptr, hub_slots, hub_dists)

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> dict:
        """Serialize the CSR hub table (row order preserved)."""
        verts = sorted(self.row, key=self.row.get)
        return {
            "kind": "hub_store",
            "verts": io.put_ints(verts),
            "core_size": int(self.core_size),
            "hub_indptr": io.put_array(self.hub_indptr),
            "hub_slots": io.put_array(self.hub_slots),
            "hub_dists": io.put_array(self.hub_dists),
        }

    @classmethod
    def from_state(cls, state: dict, io) -> Optional["HubStore"]:
        if np is None:
            return None
        row = {v: i for i, v in enumerate(io.get_list(state["verts"]))}
        return cls(
            row,
            int(state["core_size"]),
            io.get_array(state["hub_indptr"]),
            io.get_array(state["hub_slots"]),
            io.get_array(state["hub_dists"]),
        )

    def join_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Hub-join minimum from ``source`` to each target (``inf`` when none)."""
        row = self.row
        if source not in row:
            raise VertexNotFoundError(source)
        target_rows = []
        for target in targets:
            if target not in row:
                raise VertexNotFoundError(target)
            target_rows.append(row[target])
        if not target_rows:
            return []
        rs = row[source]
        s_start, s_end = self.hub_indptr[rs], self.hub_indptr[rs + 1]
        dense = np.full(self.core_size, INF, dtype=np.float64)
        dense[self.hub_slots[s_start:s_end]] = self.hub_dists[s_start:s_end]

        t_rows = np.asarray(target_rows, dtype=np.int64)
        starts = self.hub_indptr[t_rows]
        counts = self.hub_indptr[t_rows + 1] - starts
        out = np.full(len(t_rows), INF, dtype=np.float64)
        nonempty = counts > 0
        if not nonempty.any():
            return out.tolist()
        ne_starts = starts[nonempty]
        ne_counts = counts[nonempty]
        seg = np.zeros(len(ne_counts), dtype=np.int64)
        np.cumsum(ne_counts[:-1], out=seg[1:])
        total = int(seg[-1] + ne_counts[-1])
        flat = np.arange(total, dtype=np.int64) - np.repeat(seg, ne_counts) + np.repeat(
            ne_starts, ne_counts
        )
        candidates = dense[self.hub_slots[flat]] + self.hub_dists[flat]
        out[nonempty] = np.minimum.reduceat(candidates, seg)
        return out.tolist()
