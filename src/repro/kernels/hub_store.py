"""Flattened hub-label table for the TOAIN baseline.

TOAIN materialises, per vertex, distances to its upward-reachable core
("check-in") vertices as per-vertex dicts.  A :class:`HubStore` freezes those
dicts into a CSR table — one ``int64`` array of core-slot ids and one
``float64`` array of distances — packed, together with the row ids and the
core size, into one :class:`~repro.kernels.arena.Arena` (the buffer
``repro.store`` serializes and ``repro.cluster`` shards mmap-share).  It
answers the one-to-many hub join with a dense source vector: the source's
labels are scattered once into a ``core_size`` vector, every target's slots
gather from it in one fancy index, and a single ``np.minimum.reduceat`` over
the concatenated hub axis yields the per-target join minimum.

The join arithmetic matches the scalar reference (``d_s + d_t`` minimised
over the hubs both vertices share; targets with no shared hub get ``inf``),
so results are bit-identical to the dict-based loop.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro import obs
from repro.exceptions import VertexNotFoundError
from repro.kernels.arena import Arena, build_remap, rows_of

INF = math.inf


class HubStore:
    """Immutable CSR snapshot of TOAIN's per-vertex core-label dicts."""

    __slots__ = (
        "arena",
        "row",
        "_remap",
        "core_size",
        "hub_indptr",
        "hub_slots",
        "hub_dists",
    )

    def __init__(self, arena: Arena):
        self.arena = arena
        self.core_size = int(arena["core_size"][0])
        self.hub_indptr = arena["hub_indptr"]
        self.hub_slots = arena["hub_slots"]
        self.hub_dists = arena["hub_dists"]
        verts = arena["verts"]
        self.row = {v: i for i, v in enumerate(verts.tolist())}
        self._remap = build_remap(verts)

    @classmethod
    def freeze(
        cls, core_labels: Dict[int, Dict[int, float]], core_slots: Dict[int, int]
    ) -> Optional["HubStore"]:
        """Flatten ``core_labels`` (hub vertices mapped through ``core_slots``)."""
        if np is None or not core_labels:
            return None
        verts = sorted(core_labels)
        counts = [len(core_labels[v]) for v in verts]
        hub_indptr = np.zeros(len(verts) + 1, dtype=np.int64)
        np.cumsum(counts, out=hub_indptr[1:])
        total = int(hub_indptr[-1])
        hub_slots = np.empty(total, dtype=np.int64)
        hub_dists = np.empty(total, dtype=np.float64)
        offset = 0
        for v in verts:
            for hub, distance in core_labels[v].items():
                hub_slots[offset] = core_slots[hub]
                hub_dists[offset] = distance
                offset += 1
        if obs.is_enabled():
            obs.registry().counter(
                "repro_kernel_store_freezes_total",
                "Frozen kernel stores built, by store kind",
                store="hub_store",
            ).inc()
        arena = Arena.pack(
            {
                "verts": np.asarray(verts, dtype=np.int64),
                "core_size": np.asarray([len(core_slots)], dtype=np.int64),
                "hub_indptr": hub_indptr,
                "hub_slots": hub_slots,
                "hub_dists": hub_dists,
            }
        )
        return cls(arena)

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> dict:
        """Serialize the store as its arena (row order preserved)."""
        state = self.arena.to_state(io)
        state["kind"] = "hub_store"
        return state

    @classmethod
    def from_state(cls, state: dict, io) -> Optional["HubStore"]:
        """Rebuild from a snapshot payload (arena or legacy per-array)."""
        if np is None:
            return None
        if "arena" in state:
            return cls(Arena.from_state(state, io))
        arrays = {
            "verts": np.asarray(io.get_list(state["verts"]), dtype=np.int64),
            "core_size": np.asarray([int(state["core_size"])], dtype=np.int64),
            "hub_indptr": io.get_array(state["hub_indptr"]),
            "hub_slots": io.get_array(state["hub_slots"]),
            "hub_dists": io.get_array(state["hub_dists"]),
        }
        return cls(Arena.pack(arrays))

    def join_pair(self, source: int, target: int) -> float:
        """Scalar hub-join minimum (``inf`` when no shared hub).

        Same dense-scatter scheme as :meth:`join_one_to_many` for a single
        target; every candidate is the identical ``d_s + d_t`` float64 sum,
        so the result is bit-identical to the dict-based loop.
        """
        row = self.row
        try:
            rs = row[source]
            rt = row[target]
        except KeyError as exc:
            raise VertexNotFoundError(exc.args[0]) from None
        s_start, s_end = self.hub_indptr[rs], self.hub_indptr[rs + 1]
        t_start, t_end = self.hub_indptr[rt], self.hub_indptr[rt + 1]
        if s_end == s_start or t_end == t_start:
            return INF
        dense = np.full(self.core_size, INF, dtype=np.float64)
        dense[self.hub_slots[s_start:s_end]] = self.hub_dists[s_start:s_end]
        candidates = dense[self.hub_slots[t_start:t_end]] + self.hub_dists[t_start:t_end]
        return float(candidates.min())

    def join_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Hub-join minimum from ``source`` to each target (``inf`` when none)."""
        row = self.row
        if source not in row:
            raise VertexNotFoundError(source)
        targets = list(targets)
        if not targets:
            return []
        t_rows = rows_of(row, self._remap, targets)
        rs = row[source]
        s_start, s_end = self.hub_indptr[rs], self.hub_indptr[rs + 1]
        dense = np.full(self.core_size, INF, dtype=np.float64)
        dense[self.hub_slots[s_start:s_end]] = self.hub_dists[s_start:s_end]

        starts = self.hub_indptr[t_rows]
        counts = self.hub_indptr[t_rows + 1] - starts
        out = np.full(len(t_rows), INF, dtype=np.float64)
        nonempty = counts > 0
        if not nonempty.any():
            return out.tolist()
        ne_starts = starts[nonempty]
        ne_counts = counts[nonempty]
        seg = np.zeros(len(ne_counts), dtype=np.int64)
        np.cumsum(ne_counts[:-1], out=seg[1:])
        total = int(seg[-1] + ne_counts[-1])
        flat = np.arange(total, dtype=np.int64) - np.repeat(seg, ne_counts) + np.repeat(
            ne_starts, ne_counts
        )
        candidates = dense[self.hub_slots[flat]] + self.hub_dists[flat]
        out[nonempty] = np.minimum.reduceat(candidates, seg)
        return out.tolist()
