"""Frozen CSR store for H2H-family distance labels.

A :class:`LabelStore` is an immutable, flat-array snapshot of one
:class:`~repro.labeling.h2h.H2HLabels` instance: the per-vertex distance
arrays ``X(v).dis`` become one ``int64`` offset array plus one contiguous
``float64`` data array, the hub positions ``X(v).pos`` become a second CSR
pair, and the tree's Euler-tour LCA oracle is flattened into integer arrays
whose sparse-table entries are packed as ``depth << SHIFT | row`` so the
range-minimum over depths is a plain integer minimum.

Two query backends read the store:

* the **native backend** (``repro.kernels.native``) runs the LCA + hub scan
  in C — this is what makes *scalar* queries fast;
* the **vectorized backend** answers whole batches with numpy: one gather of
  the ragged hub-position segments and one ``np.minimum.reduceat`` over the
  hub axis per batch — no per-pair Python.

Both backends perform exactly the reference arithmetic (``dis_s[i] +
dis_t[i]`` minimised over ``i ∈ pos[lca]``), so their results are
bit-identical to ``H2HLabels.query``; the equivalence suite in
``tests/test_kernels.py`` enforces this for every index.

The *layout* (row numbering, LCA arrays, position CSR) depends only on the
tree structure, which weight-only updates never change — it is computed once
per tree and cached on the :class:`~repro.treedec.tree.TreeDecomposition`
keyed by its ``structure_version``.  A freeze after an update batch therefore
only re-packs the distance data.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is a hard dependency of the package but the kernels degrade
    import numpy as np  # gracefully so the pure-Python paths keep working.
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro import obs
from repro.exceptions import VertexNotFoundError
from repro.kernels.native import native_kernel

INF = math.inf

#: Rows are packed into the low bits of sparse-table entries; depth goes in
#: the high bits.  2^22 rows is far beyond any graph this package indexes.
SHIFT = 22
MASK = (1 << SHIFT) - 1


class LabelLayout:
    """Structure-dependent part of a label store (shared across freezes)."""

    __slots__ = (
        "version",
        "row",
        "verts",
        "comp",
        "first",
        "logs",
        "tbl_flat",
        "tbl_off",
        "pos_indptr",
        "pos_data",
    )

    def __init__(self, tree, verts: List[int], pos: Dict[int, List[int]]):
        self.version = getattr(tree, "structure_version", 0)
        self.verts = verts
        self.row = {v: i for i, v in enumerate(verts)}
        row = self.row
        # Force the Euler-tour oracle, then flatten it into row space.
        some = verts[0]
        tree.lca(some, some)
        oracle = tree._lca
        self.comp = np.array([tree.component[v] for v in verts], dtype=np.int64)
        self.first = np.array([oracle._first[v] for v in verts], dtype=np.int64)
        self.logs = np.array(oracle._log, dtype=np.int64)
        depth = tree.depth
        packed = [(depth[v] << SHIFT) | row[v] for v in oracle._euler]
        levels = [
            np.array([packed[i] for i in level], dtype=np.int64)
            for level in oracle._table
        ]
        tbl_off = np.zeros(len(levels) + 1, dtype=np.int64)
        for k, level in enumerate(levels):
            tbl_off[k + 1] = tbl_off[k] + len(level)
        self.tbl_off = tbl_off
        self.tbl_flat = (
            np.concatenate(levels) if levels else np.zeros(0, dtype=np.int64)
        )
        counts = [len(pos[v]) for v in verts]
        self.pos_indptr = np.zeros(len(verts) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.pos_indptr[1:])
        self.pos_data = np.array(
            [i for v in verts for i in pos[v]], dtype=np.int64
        )


def _layout_for(tree, labels) -> Optional[LabelLayout]:
    """The (cached) layout of ``labels``'s tree, or ``None`` if unsupported."""
    verts = sorted(labels.dis.keys())
    if not verts or len(verts) >= (1 << SHIFT):
        return None
    if len(verts) != len(tree.parent):
        # Restricted label builds (dis covering a subset of the tree) keep
        # the pure-Python path; none of the shipped indexes hits this.
        return None
    cached = getattr(tree, "_kernel_layout", None)
    version = getattr(tree, "structure_version", 0)
    if cached is not None and cached.version == version:
        return cached
    layout = LabelLayout(tree, verts, labels.pos)
    tree._kernel_layout = layout
    return layout


class LabelStore:
    """One frozen snapshot of an ``H2HLabels`` instance (see module docs)."""

    __slots__ = ("layout", "dis_indptr", "dis_data", "capsule", "query_fn")

    def __init__(self, layout: LabelLayout, dis_indptr, dis_data):
        self.layout = layout
        self.dis_indptr = dis_indptr
        self.dis_data = dis_data
        self.capsule = None
        self.query_fn = None
        kernel = native_kernel()
        if kernel is not None:
            self.capsule = kernel.build(
                MASK,
                layout.comp,
                layout.first,
                layout.logs,
                layout.tbl_flat,
                layout.tbl_off,
                layout.pos_indptr,
                layout.pos_data,
                dis_indptr,
                dis_data,
            )
            self.query_fn = self._make_scalar_query(kernel)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(cls, labels) -> Optional["LabelStore"]:
        """Freeze ``labels`` into a flat store; ``None`` when unsupported."""
        if np is None:
            return None
        layout = _layout_for(labels.tree, labels)
        if layout is None:
            return None
        verts = layout.verts
        dis = labels.dis
        counts = [len(dis[v]) for v in verts]
        dis_indptr = np.zeros(len(verts) + 1, dtype=np.int64)
        np.cumsum(counts, out=dis_indptr[1:])
        dis_data = np.empty(int(dis_indptr[-1]), dtype=np.float64)
        offset = 0
        for v, count in zip(verts, counts):
            dis_data[offset : offset + count] = dis[v]
            offset += count
        if obs.is_enabled():
            obs.registry().counter(
                "repro_kernel_store_freezes_total",
                "Frozen kernel stores built, by store kind",
                store="label_store",
            ).inc()
        return cls(layout, dis_indptr, dis_data)

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> dict:
        """Serialize the store (layout + distance CSR) into a payload writer.

        Everything needed to answer queries is exported — including the
        structure-derived LCA arrays — so :meth:`from_state` reattaches a
        ready store without touching the tree decomposition.
        """
        layout = self.layout
        return {
            "kind": "label_store",
            "verts": io.put_ints(layout.verts),
            "comp": io.put_array(layout.comp),
            "first": io.put_array(layout.first),
            "logs": io.put_array(layout.logs),
            "tbl_flat": io.put_array(layout.tbl_flat),
            "tbl_off": io.put_array(layout.tbl_off),
            "pos_indptr": io.put_array(layout.pos_indptr),
            "pos_data": io.put_array(layout.pos_data),
            "dis_indptr": io.put_array(self.dis_indptr),
            "dis_data": io.put_array(self.dis_data),
        }

    @classmethod
    def from_state(cls, state: dict, io) -> Optional["LabelStore"]:
        """Rebuild a store from payload arrays (mmap-backed where possible)."""
        if np is None:
            return None
        layout = LabelLayout.__new__(LabelLayout)
        layout.version = -1  # detached from any tree's layout cache
        layout.verts = io.get_list(state["verts"])
        layout.row = {v: i for i, v in enumerate(layout.verts)}
        for field in ("comp", "first", "logs", "tbl_flat", "tbl_off", "pos_indptr", "pos_data"):
            setattr(layout, field, io.get_array(state[field]))
        return cls(
            layout, io.get_array(state["dis_indptr"]), io.get_array(state["dis_data"])
        )

    # ------------------------------------------------------------------
    # Scalar path (native backend)
    # ------------------------------------------------------------------
    def _make_scalar_query(self, kernel):
        row = self.layout.row
        capsule = self.capsule
        native_query = kernel.query

        def query(source: int, target: int) -> float:
            try:
                rs = row[source]
                rt = row[target]
            except (KeyError, TypeError):
                raise VertexNotFoundError(
                    source if source not in row else target
                ) from None
            if source == target:
                return 0.0
            return native_query(capsule, rs, rt)

        return query

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def _rows_of(self, vertices: Sequence[int]):
        row = self.layout.row
        try:
            return np.fromiter(
                (row[v] for v in vertices), dtype=np.int64, count=len(vertices)
            )
        except (KeyError, TypeError):
            for v in vertices:
                if v not in row:
                    raise VertexNotFoundError(v) from None
            raise

    def one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Distances from ``source`` to every target (bit-identical batch)."""
        row = self.layout.row
        if source not in row:
            raise VertexNotFoundError(source)
        targets = list(targets)
        if not targets:
            return []
        t_rows = self._rows_of(targets)
        kernel = native_kernel()
        if self.capsule is not None and kernel is not None:
            out = np.empty(len(targets), dtype=np.float64)
            kernel.one_to_many(self.capsule, row[source], t_rows, out)
            return out.tolist()
        s_rows = np.full(len(targets), row[source], dtype=np.int64)
        return self._vectorized_pairs(s_rows, t_rows).tolist()

    def query_pairs(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """Distances for arbitrary ``(source, target)`` pairs, input order."""
        pairs = list(pairs)
        if not pairs:
            return []
        s_rows = self._rows_of([s for s, _ in pairs])
        t_rows = self._rows_of([t for _, t in pairs])
        kernel = native_kernel()
        if self.capsule is not None and kernel is not None:
            out = np.empty(len(pairs), dtype=np.float64)
            kernel.query_pairs(self.capsule, s_rows, t_rows, out)
            return out.tolist()
        return self._vectorized_pairs(s_rows, t_rows).tolist()

    def _vectorized_pairs(self, s_rows, t_rows):
        """Pure-numpy batch backend: one reduceat over the hub axis.

        Per-pair arithmetic is exactly the scalar reference (float64 sums,
        order-independent minimum), so results stay bit-identical.
        """
        layout = self.layout
        out = np.empty(len(s_rows), dtype=np.float64)
        same = s_rows == t_rows
        split = layout.comp[s_rows] != layout.comp[t_rows]
        out[same] = 0.0
        out[split] = INF
        regular = ~(same | split)
        rs = s_rows[regular]
        rt = t_rows[regular]
        if rs.size == 0:
            return out
        fs = layout.first[rs]
        ft = layout.first[rt]
        lo = np.minimum(fs, ft)
        hi = np.maximum(fs, ft)
        k = layout.logs[hi - lo + 1]
        base = layout.tbl_off[k]
        a = layout.tbl_flat[base + lo]
        b = layout.tbl_flat[base + hi - (1 << k) + 1]
        lca_rows = np.minimum(a, b) & MASK
        starts = layout.pos_indptr[lca_rows]
        counts = layout.pos_indptr[lca_rows + 1] - starts
        seg = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=seg[1:])
        total = int(seg[-1] + counts[-1])
        flat = np.arange(total, dtype=np.int64) - np.repeat(seg, counts) + np.repeat(
            starts, counts
        )
        hub_positions = layout.pos_data[flat]
        s_base = np.repeat(self.dis_indptr[rs], counts)
        t_base = np.repeat(self.dis_indptr[rt], counts)
        candidates = (
            self.dis_data[s_base + hub_positions]
            + self.dis_data[t_base + hub_positions]
        )
        out[regular] = np.minimum.reduceat(candidates, seg)
        return out
