"""Frozen CSR store for H2H-family distance labels.

A :class:`LabelStore` is an immutable, flat-array snapshot of one
:class:`~repro.labeling.h2h.H2HLabels` instance: the per-vertex distance
arrays ``X(v).dis`` become one ``int64`` offset array plus one contiguous
``float64`` data array, the hub positions ``X(v).pos`` become a second CSR
pair, and the tree's Euler-tour LCA oracle is flattened into integer arrays
whose sparse-table entries are packed as ``depth << SHIFT | row`` so the
range-minimum over depths is a plain integer minimum.

All of those arrays live side by side in one :class:`~repro.kernels.arena.
Arena` — the unified buffer that ``repro.store`` serializes as a single
payload and ``repro.cluster`` workers mmap-share, and whose views the native
kernel borrows without copying.

Three query backends read the store, forming the fallback ladder:

* the **native backend** (``repro.kernels.native``) runs the LCA + hub scan
  in C — scalar queries call it once, batches (:meth:`one_to_many`,
  :meth:`query_pairs`) cross into C a single time per batch with ``int64``
  row buffers in and a ``float64`` output buffer out, so there is no
  per-query Python and no per-query numpy temporary;
* the **vectorized backend** answers whole batches with numpy: one gather of
  the ragged hub-position segments and one ``np.minimum.reduceat`` over the
  hub axis per batch — the no-compiler fallback;
* the **pure-Python reference** (``H2HLabels.query``) remains the semantic
  ground truth the other two must match bit for bit.

Both accelerated backends perform exactly the reference arithmetic
(``dis_s[i] + dis_t[i]`` minimised over ``i ∈ pos[lca]``), so their results
are bit-identical to ``H2HLabels.query``; the equivalence suite in
``tests/test_kernels.py`` enforces this for every index.

The *layout* (row numbering, LCA arrays, position CSR) depends only on the
tree structure, which weight-only updates never change — it is computed once
per tree and cached on the :class:`~repro.treedec.tree.TreeDecomposition`
keyed by its ``structure_version``.  A freeze after an update batch therefore
only re-flattens the distance data before packing the epoch's arena.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is a hard dependency of the package but the kernels degrade
    import numpy as np  # gracefully so the pure-Python paths keep working.
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro import obs
from repro.exceptions import VertexNotFoundError
from repro.kernels.arena import Arena, build_remap, rows_of
from repro.kernels.native import native_kernel

INF = math.inf

#: Rows are packed into the low bits of sparse-table entries; depth goes in
#: the high bits.  2^22 rows is far beyond any graph this package indexes.
SHIFT = 22
MASK = (1 << SHIFT) - 1


class LabelLayout:
    """Structure-dependent part of a label store (shared across freezes)."""

    __slots__ = (
        "version",
        "row",
        "verts",
        "comp",
        "first",
        "logs",
        "tbl_flat",
        "tbl_off",
        "pos_indptr",
        "pos_data",
    )

    def __init__(self, tree, verts: List[int], pos: Dict[int, List[int]]):
        self.version = getattr(tree, "structure_version", 0)
        self.verts = verts
        self.row = {v: i for i, v in enumerate(verts)}
        row = self.row
        # Force the Euler-tour oracle, then flatten it into row space.
        some = verts[0]
        tree.lca(some, some)
        oracle = tree._lca
        self.comp = np.array([tree.component[v] for v in verts], dtype=np.int64)
        self.first = np.array([oracle._first[v] for v in verts], dtype=np.int64)
        self.logs = np.array(oracle._log, dtype=np.int64)
        depth = tree.depth
        packed = [(depth[v] << SHIFT) | row[v] for v in oracle._euler]
        levels = [
            np.array([packed[i] for i in level], dtype=np.int64)
            for level in oracle._table
        ]
        tbl_off = np.zeros(len(levels) + 1, dtype=np.int64)
        for k, level in enumerate(levels):
            tbl_off[k + 1] = tbl_off[k] + len(level)
        self.tbl_off = tbl_off
        self.tbl_flat = (
            np.concatenate(levels) if levels else np.zeros(0, dtype=np.int64)
        )
        counts = [len(pos[v]) for v in verts]
        self.pos_indptr = np.zeros(len(verts) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.pos_indptr[1:])
        self.pos_data = np.array(
            [i for v in verts for i in pos[v]], dtype=np.int64
        )


def _layout_for(tree, labels) -> Optional[LabelLayout]:
    """The (cached) layout of ``labels``'s tree, or ``None`` if unsupported."""
    verts = sorted(labels.dis.keys())
    if not verts or len(verts) >= (1 << SHIFT):
        return None
    if len(verts) != len(tree.parent):
        # Restricted label builds (dis covering a subset of the tree) keep
        # the pure-Python path; none of the shipped indexes hits this.
        return None
    cached = getattr(tree, "_kernel_layout", None)
    version = getattr(tree, "structure_version", 0)
    if cached is not None and cached.version == version:
        return cached
    layout = LabelLayout(tree, verts, labels.pos)
    tree._kernel_layout = layout
    return layout


#: Arena entries of a label store, in pack order.
_FIELDS = (
    "verts",
    "comp",
    "first",
    "logs",
    "tbl_flat",
    "tbl_off",
    "pos_indptr",
    "pos_data",
    "dis_indptr",
    "dis_data",
)


class LabelStore:
    """One frozen snapshot of an ``H2HLabels`` instance (see module docs)."""

    __slots__ = (
        "arena",
        "row",
        "_remap",
        "comp",
        "first",
        "logs",
        "tbl_flat",
        "tbl_off",
        "pos_indptr",
        "pos_data",
        "dis_indptr",
        "dis_data",
        "capsule",
        "query_fn",
    )

    def __init__(self, arena: Arena, row: Optional[Dict[int, int]] = None):
        self.arena = arena
        for field in _FIELDS[1:]:
            setattr(self, field, arena[field])
        verts = arena["verts"]
        if row is None:
            row = {v: i for i, v in enumerate(verts.tolist())}
        self.row = row
        # Dense id->row remap: turns batch row mapping into one numpy gather
        # (no per-query Python dict lookups) when the id space is dense.
        self._remap = build_remap(verts)
        self.capsule = None
        self.query_fn = None
        kernel = native_kernel()
        if kernel is not None:
            self.capsule = kernel.build(
                MASK,
                self.comp,
                self.first,
                self.logs,
                self.tbl_flat,
                self.tbl_off,
                self.pos_indptr,
                self.pos_data,
                self.dis_indptr,
                self.dis_data,
            )
            self.query_fn = self._make_scalar_query(kernel)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(cls, labels) -> Optional["LabelStore"]:
        """Freeze ``labels`` into a flat arena-backed store; ``None`` when
        unsupported."""
        if np is None:
            return None
        layout = _layout_for(labels.tree, labels)
        if layout is None:
            return None
        verts = layout.verts
        dis = labels.dis
        counts = [len(dis[v]) for v in verts]
        dis_indptr = np.zeros(len(verts) + 1, dtype=np.int64)
        np.cumsum(counts, out=dis_indptr[1:])
        dis_data = np.empty(int(dis_indptr[-1]), dtype=np.float64)
        offset = 0
        for v, count in zip(verts, counts):
            dis_data[offset : offset + count] = dis[v]
            offset += count
        arena = Arena.pack(
            {
                "verts": np.asarray(verts, dtype=np.int64),
                "comp": layout.comp,
                "first": layout.first,
                "logs": layout.logs,
                "tbl_flat": layout.tbl_flat,
                "tbl_off": layout.tbl_off,
                "pos_indptr": layout.pos_indptr,
                "pos_data": layout.pos_data,
                "dis_indptr": dis_indptr,
                "dis_data": dis_data,
            }
        )
        if obs.is_enabled():
            obs.registry().counter(
                "repro_kernel_store_freezes_total",
                "Frozen kernel stores built, by store kind",
                store="label_store",
            ).inc()
        return cls(arena, row=dict(layout.row))

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> dict:
        """Serialize the store as its arena: one payload array + the TOC.

        Everything needed to answer queries lives in the arena — including
        the structure-derived LCA arrays — so :meth:`from_state` reattaches
        a ready store without touching the tree decomposition.
        """
        state = self.arena.to_state(io)
        state["kind"] = "label_store"
        return state

    @classmethod
    def from_state(cls, state: dict, io) -> Optional["LabelStore"]:
        """Rebuild a store from a snapshot payload (mmap-backed when possible).

        Accepts both the unified-arena format (one buffer + TOC) and the
        legacy per-array format of pre-arena snapshots.
        """
        if np is None:
            return None
        if "arena" in state:
            return cls(Arena.from_state(state, io))
        arrays = {
            "verts": np.asarray(io.get_list(state["verts"]), dtype=np.int64)
        }
        for field in _FIELDS[1:]:
            arrays[field] = io.get_array(state[field])
        return cls(Arena.pack(arrays))

    # ------------------------------------------------------------------
    # Scalar path (native backend)
    # ------------------------------------------------------------------
    def _make_scalar_query(self, kernel):
        row = self.row
        capsule = self.capsule
        native_query = kernel.query

        def query(source: int, target: int) -> float:
            try:
                rs = row[source]
                rt = row[target]
            except (KeyError, TypeError):
                raise VertexNotFoundError(
                    source if source not in row else target
                ) from None
            if source == target:
                return 0.0
            return native_query(capsule, rs, rt)

        return query

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def _rows_of(self, vertices: Sequence[int]):
        """Map a vertex sequence to an ``int64`` row array (one gather when
        the id space is dense — the only per-batch Python is this call)."""
        return rows_of(self.row, self._remap, vertices)

    def one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Distances from ``source`` to every target (bit-identical batch)."""
        row = self.row
        if source not in row:
            raise VertexNotFoundError(source)
        targets = list(targets)
        if not targets:
            return []
        t_rows = self._rows_of(targets)
        kernel = native_kernel()
        if self.capsule is not None and kernel is not None:
            out = np.empty(len(targets), dtype=np.float64)
            kernel.one_to_many(self.capsule, row[source], t_rows, out)
            return out.tolist()
        s_rows = np.full(len(targets), row[source], dtype=np.int64)
        return self._vectorized_pairs(s_rows, t_rows).tolist()

    def query_pairs(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """Distances for arbitrary ``(source, target)`` pairs, input order."""
        pairs = list(pairs)
        if not pairs:
            return []
        s_rows = self._rows_of([s for s, _ in pairs])
        t_rows = self._rows_of([t for _, t in pairs])
        kernel = native_kernel()
        if self.capsule is not None and kernel is not None:
            out = np.empty(len(pairs), dtype=np.float64)
            kernel.query_pairs(self.capsule, s_rows, t_rows, out)
            return out.tolist()
        return self._vectorized_pairs(s_rows, t_rows).tolist()

    def _vectorized_pairs(self, s_rows, t_rows):
        """Pure-numpy batch backend: one reduceat over the hub axis.

        Per-pair arithmetic is exactly the scalar reference (float64 sums,
        order-independent minimum), so results stay bit-identical.
        """
        out = np.empty(len(s_rows), dtype=np.float64)
        same = s_rows == t_rows
        split = self.comp[s_rows] != self.comp[t_rows]
        out[same] = 0.0
        out[split] = INF
        regular = ~(same | split)
        rs = s_rows[regular]
        rt = t_rows[regular]
        if rs.size == 0:
            return out
        fs = self.first[rs]
        ft = self.first[rt]
        lo = np.minimum(fs, ft)
        hi = np.maximum(fs, ft)
        k = self.logs[hi - lo + 1]
        base = self.tbl_off[k]
        a = self.tbl_flat[base + lo]
        b = self.tbl_flat[base + hi - (1 << k) + 1]
        lca_rows = np.minimum(a, b) & MASK
        starts = self.pos_indptr[lca_rows]
        counts = self.pos_indptr[lca_rows + 1] - starts
        seg = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=seg[1:])
        total = int(seg[-1] + counts[-1])
        flat = np.arange(total, dtype=np.int64) - np.repeat(seg, counts) + np.repeat(
            starts, counts
        )
        hub_positions = self.pos_data[flat]
        s_base = np.repeat(self.dis_indptr[rs], counts)
        t_base = np.repeat(self.dis_indptr[rt], counts)
        candidates = (
            self.dis_data[s_base + hub_positions]
            + self.dis_data[t_base + hub_positions]
        )
        out[regular] = np.minimum.reduceat(candidates, seg)
        return out
