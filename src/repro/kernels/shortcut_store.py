"""Frozen upward-shortcut store for CH-style bidirectional searches.

CH-family query stages (DCH, the CH stage of MHL, the PCH stages of PMHL and
PostMHL, TOAIN's sub-core search, the CH-underlying PSP families) all search
an "upward neighbours" mapping — live dict-of-dict shortcut arrays, sometimes
filtered or merged per call.  A :class:`ShortcutStore` freezes the relevant
upward adjacency into per-vertex ``(neighbor, weight)`` tuple lists built in
the source mapping's iteration order, and runs the bidirectional upward
search directly over them.

The search is a literal port of :func:`repro.hierarchy.ch.
ch_bidirectional_query` (same relaxation order, same heap keys, same float
arithmetic), so results are bit-identical to the live-dict reference.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, Iterable, List, Mapping, Tuple

from repro import obs

INF = math.inf


class ShortcutStore:
    """Immutable upward adjacency (vertex -> [(higher-rank neighbor, weight)])."""

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Dict[int, List[Tuple[int, float]]]):
        self._pairs = pairs

    @classmethod
    def freeze(
        cls,
        upward: Callable[[int], Mapping[int, float]],
        vertices: Iterable[int],
    ) -> "ShortcutStore":
        """Materialise ``upward(v)`` for every vertex, preserving item order."""
        if obs.is_enabled():
            obs.registry().counter(
                "repro_kernel_store_freezes_total",
                "Frozen kernel stores built, by store kind",
                store="shortcut_store",
            ).inc()
        return cls({v: list(upward(v).items()) for v in vertices})

    def has_vertex(self, v: int) -> bool:
        return v in self._pairs

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> dict:
        """Serialize the upward adjacency as CSR arrays (order-preserving)."""
        from repro.store.codec import pack_pairs_csr

        return {"kind": "shortcut_store", **pack_pairs_csr(self._pairs.items(), io)}

    @classmethod
    def from_state(cls, state: dict, io) -> "ShortcutStore":
        from repro.store.codec import unpack_pairs_csr

        return cls(unpack_pairs_csr(state, io))

    def query(self, source: int, target: int) -> float:
        """Bidirectional upward search over the frozen shortcut arrays."""
        if source == target:
            return 0.0
        pairs = self._pairs

        dist_f: Dict[int, float] = {source: 0.0}
        dist_b: Dict[int, float] = {target: 0.0}
        heap_f: List[Tuple[float, int]] = [(0.0, source)]
        heap_b: List[Tuple[float, int]] = [(0.0, target)]
        settled_f: Dict[int, float] = {}
        settled_b: Dict[int, float] = {}
        best = INF

        while heap_f or heap_b:
            top_f = heap_f[0][0] if heap_f else INF
            top_b = heap_b[0][0] if heap_b else INF
            if min(top_f, top_b) >= best:
                break
            if top_f <= top_b and heap_f:
                d, v = heapq.heappop(heap_f)
                if v in settled_f:
                    continue
                settled_f[v] = d
                if v in dist_b:
                    best = min(best, d + dist_b[v])
                for u, w in pairs[v]:
                    nd = d + w
                    if nd < dist_f.get(u, INF):
                        dist_f[u] = nd
                        heapq.heappush(heap_f, (nd, u))
                        if u in dist_b:
                            best = min(best, nd + dist_b[u])
            elif heap_b:
                d, v = heapq.heappop(heap_b)
                if v in settled_b:
                    continue
                settled_b[v] = d
                if v in dist_f:
                    best = min(best, d + dist_f[v])
                for u, w in pairs[v]:
                    nd = d + w
                    if nd < dist_b.get(u, INF):
                        dist_b[u] = nd
                        heapq.heappush(heap_b, (nd, u))
                        if u in dist_f:
                            best = min(best, nd + dist_f[u])
            else:
                break
        return best
