"""Frozen upward-shortcut store for CH-style bidirectional searches.

CH-family query stages (DCH, the CH stage of MHL, the PCH stages of PMHL and
PostMHL, TOAIN's sub-core search, the CH-underlying PSP families) all search
an "upward neighbours" mapping — live dict-of-dict shortcut arrays, sometimes
filtered or merged per call.  A :class:`ShortcutStore` freezes the relevant
upward adjacency, preserving the source mapping's iteration order, into CSR
arrays packed in one :class:`~repro.kernels.arena.Arena` (the buffer
``repro.store`` serializes and ``repro.cluster`` shards mmap-share).

The fallback ladder mirrors :class:`~repro.kernels.graph_snapshot.
GraphSnapshot`: the native C kernel borrows the arena views and runs the
bidirectional upward search in C (scalar and batch); without a compiler the
pure-Python loop below iterates lazily materialised per-vertex ``(neighbor,
weight)`` tuple lists.  Both are literal ports of :func:`repro.hierarchy.ch.
ch_bidirectional_query` (same relaxation order, same heap keys, same float
arithmetic), so results are bit-identical to the live-dict reference.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro import obs
from repro.kernels.arena import Arena, build_remap, rows_of
from repro.kernels.native import native_kernel

INF = math.inf


class ShortcutStore:
    """Immutable upward adjacency (vertex -> [(higher-rank neighbor, weight)])."""

    __slots__ = ("arena", "row", "_remap", "capsule", "_pairs_cache")

    def __init__(self, pairs: Dict[int, List[Tuple[int, float]]]):
        self.arena = None
        self.capsule = None
        self._remap = None
        self._pairs_cache = None
        self.row = {v: i for i, v in enumerate(pairs)}
        csr = self._csr_from_pairs(pairs) if np is not None else None
        if csr is None:
            self._pairs_cache = pairs
            return
        self.arena = Arena.pack(csr)
        self._remap = build_remap(self.arena["ids"])
        kernel = native_kernel()
        if kernel is not None:
            self.capsule = kernel.search_build(
                self.arena["ids"],
                self.arena["indptr"],
                self.arena["indices"],
                self.arena["weights"],
            )

    def _csr_from_pairs(self, pairs) -> Optional[Dict[str, object]]:
        position = self.row
        indptr = [0]
        indices: List[int] = []
        weights: List[float] = []
        try:
            for v in pairs:
                for u, w in pairs[v]:
                    indices.append(position[u])
                    weights.append(w)
                indptr.append(len(indices))
            ids = np.asarray(list(pairs), dtype=np.int64)
        except (KeyError, TypeError, ValueError, OverflowError):
            # Adjacency not closed over its keys, or non-integer vertex
            # ids: keep the pure-Python dict path.
            return None
        return {
            "ids": ids,
            "indptr": np.asarray(indptr, dtype=np.int64),
            "indices": np.asarray(indices, dtype=np.int64),
            "weights": np.asarray(weights, dtype=np.float64),
        }

    @property
    def _pairs(self) -> Dict[int, List[Tuple[int, float]]]:
        """Per-vertex tuple lists for the pure-Python search (lazy)."""
        if self._pairs_cache is None:
            arena = self.arena
            ids = arena["ids"].tolist()
            indptr = arena["indptr"].tolist()
            indices = arena["indices"].tolist()
            weights = arena["weights"].tolist()
            pairs: Dict[int, List[Tuple[int, float]]] = {}
            for position, vertex in enumerate(ids):
                start, end = indptr[position], indptr[position + 1]
                pairs[vertex] = [
                    (ids[indices[j]], weights[j]) for j in range(start, end)
                ]
            self._pairs_cache = pairs
        return self._pairs_cache

    @classmethod
    def freeze(
        cls,
        upward: Callable[[int], Mapping[int, float]],
        vertices: Iterable[int],
    ) -> "ShortcutStore":
        """Materialise ``upward(v)`` for every vertex, preserving item order."""
        if obs.is_enabled():
            obs.registry().counter(
                "repro_kernel_store_freezes_total",
                "Frozen kernel stores built, by store kind",
                store="shortcut_store",
            ).inc()
        return cls({v: list(upward(v).items()) for v in vertices})

    def has_vertex(self, v: int) -> bool:
        return v in self.row

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> dict:
        """Serialize the upward adjacency: the arena on array-capable
        backends, order-preserving CSR lists otherwise."""
        if self.arena is not None and getattr(io, "backend", None) == "npz":
            state = self.arena.to_state(io)
            state["kind"] = "shortcut_store"
            return state
        from repro.store.codec import pack_pairs_csr

        return {"kind": "shortcut_store", **pack_pairs_csr(self._pairs.items(), io)}

    @classmethod
    def from_state(cls, state: dict, io) -> "ShortcutStore":
        if "arena" in state and np is not None:
            store = cls.__new__(cls)
            arena = Arena.from_state(state, io)
            store.arena = arena
            store.capsule = None
            store._pairs_cache = None
            store.row = {v: i for i, v in enumerate(arena["ids"].tolist())}
            store._remap = build_remap(arena["ids"])
            kernel = native_kernel()
            if kernel is not None:
                store.capsule = kernel.search_build(
                    arena["ids"], arena["indptr"], arena["indices"], arena["weights"]
                )
            return store
        from repro.store.codec import unpack_pairs_csr

        return cls(unpack_pairs_csr(state, io))

    # ------------------------------------------------------------------
    # Searches (bit-identical ports of repro.hierarchy.ch)
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> float:
        """Bidirectional upward search over the frozen shortcut arrays."""
        if source == target:
            return 0.0
        if self.capsule is not None:
            row = self.row
            return native_kernel().search_query(
                self.capsule, row[source], row[target], 1
            )
        return self._query_py(source, target)

    def one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """The scalar search looped in C: distances in target order."""
        targets = list(targets)
        if not targets:
            return []
        if self.capsule is not None:
            s_rows = np.full(len(targets), self.row[source], dtype=np.int64)
            t_rows = rows_of(self.row, self._remap, targets)
            out = np.empty(len(targets), dtype=np.float64)
            native_kernel().search_query_pairs(self.capsule, s_rows, t_rows, out, 1)
            return out.tolist()
        return [self.query(source, target) for target in targets]

    def query_pairs(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """Distances for arbitrary ``(source, target)`` pairs, input order."""
        pairs = list(pairs)
        if not pairs:
            return []
        if self.capsule is not None:
            s_rows = rows_of(self.row, self._remap, [s for s, _ in pairs])
            t_rows = rows_of(self.row, self._remap, [t for _, t in pairs])
            out = np.empty(len(pairs), dtype=np.float64)
            native_kernel().search_query_pairs(self.capsule, s_rows, t_rows, out, 1)
            return out.tolist()
        return [self.query(s, t) for s, t in pairs]

    def _query_py(self, source: int, target: int) -> float:
        pairs = self._pairs

        dist_f: Dict[int, float] = {source: 0.0}
        dist_b: Dict[int, float] = {target: 0.0}
        heap_f: List[Tuple[float, int]] = [(0.0, source)]
        heap_b: List[Tuple[float, int]] = [(0.0, target)]
        settled_f: Dict[int, float] = {}
        settled_b: Dict[int, float] = {}
        best = INF

        while heap_f or heap_b:
            top_f = heap_f[0][0] if heap_f else INF
            top_b = heap_b[0][0] if heap_b else INF
            if min(top_f, top_b) >= best:
                break
            if top_f <= top_b and heap_f:
                d, v = heapq.heappop(heap_f)
                if v in settled_f:
                    continue
                settled_f[v] = d
                if v in dist_b:
                    best = min(best, d + dist_b[v])
                for u, w in pairs[v]:
                    nd = d + w
                    if nd < dist_f.get(u, INF):
                        dist_f[u] = nd
                        heapq.heappush(heap_f, (nd, u))
                        if u in dist_b:
                            best = min(best, nd + dist_b[u])
            elif heap_b:
                d, v = heapq.heappop(heap_b)
                if v in settled_b:
                    continue
                settled_b[v] = d
                if v in dist_f:
                    best = min(best, d + dist_f[v])
                for u, w in pairs[v]:
                    nd = d + w
                    if nd < dist_b.get(u, INF):
                        dist_b[u] = nd
                        heapq.heappush(heap_b, (nd, u))
                        if u in dist_f:
                            best = min(best, nd + dist_f[u])
            else:
                break
        return best

    # C scalar query raises KeyError like the dict path would for vertices
    # the store never froze; callers guarantee membership.
