"""Frozen query kernels: flat-array stores for the hot query paths.

After a build or update batch completes, each index *freezes* its query-side
state into immutable flat stores (see the per-module docs):

* :class:`~repro.kernels.label_store.LabelStore` — CSR distance/position
  arrays + flattened LCA for H2H-family labels, with a native (C) scalar
  backend and a vectorized numpy batch backend;
* :class:`~repro.kernels.graph_snapshot.GraphSnapshot` — CSR adjacency for
  the index-free stage-1 searches;
* :class:`~repro.kernels.shortcut_store.ShortcutStore` — materialised upward
  adjacency for CH-style bidirectional searches;
* :class:`~repro.kernels.hub_store.HubStore` — flattened hub-label table for
  TOAIN's check-in join.

Freezing is lazy (first query after an invalidation) and keyed to the
index's kernel epoch (see ``repro.base.DistanceIndex.invalidate_kernels``),
so a store is built at most once per update epoch per query stage.  Every
store computes exactly the reference arithmetic; results are bit-identical
to the pure-Python paths, which remain in place as the reference
implementation (``use_kernels=False``).
"""

from repro.kernels.graph_snapshot import GraphSnapshot
from repro.kernels.hub_store import HubStore
from repro.kernels.label_store import LabelStore
from repro.kernels.native import native_kernel, native_kernel_error
from repro.kernels.shortcut_store import ShortcutStore

__all__ = [
    "GraphSnapshot",
    "HubStore",
    "LabelStore",
    "ShortcutStore",
    "native_kernel",
    "native_kernel_error",
]
