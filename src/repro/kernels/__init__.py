"""Frozen query kernels: flat-array stores for the hot query paths.

After a build or update batch completes, each index *freezes* its query-side
state into immutable flat stores (see the per-module docs):

* :class:`~repro.kernels.label_store.LabelStore` — CSR distance/position
  arrays + flattened LCA for H2H-family labels, with native (C) scalar and
  batch backends and a vectorized numpy batch fallback;
* :class:`~repro.kernels.graph_snapshot.GraphSnapshot` — CSR adjacency for
  the index-free stage-1 searches, with a native bidirectional-search /
  one-to-many kernel;
* :class:`~repro.kernels.shortcut_store.ShortcutStore` — materialised upward
  adjacency for CH-style bidirectional searches (native scalar + batch);
* :class:`~repro.kernels.hub_store.HubStore` — flattened hub-label table for
  TOAIN's check-in join.

Every store packs its arrays into one :class:`~repro.kernels.arena.Arena` —
the unified buffer ``repro.store`` serializes as a single payload and
``repro.cluster`` shards mmap-share, and whose views the C kernels borrow
without copying.

Freezing is lazy (first query after an invalidation) and keyed to the
index's kernel epoch (see ``repro.base.DistanceIndex.invalidate_kernels``),
so a store is built at most once per update epoch per query stage.  Every
store computes exactly the reference arithmetic; results are bit-identical
to the pure-Python paths, which remain in place as the reference
implementation (``use_kernels=False``).
"""

from repro.kernels.arena import Arena
from repro.kernels.graph_snapshot import GraphSnapshot
from repro.kernels.hub_store import HubStore
from repro.kernels.label_store import LabelStore
from repro.kernels.native import native_kernel, native_kernel_error
from repro.kernels.shortcut_store import ShortcutStore

__all__ = [
    "Arena",
    "GraphSnapshot",
    "HubStore",
    "LabelStore",
    "ShortcutStore",
    "native_kernel",
    "native_kernel_error",
]
