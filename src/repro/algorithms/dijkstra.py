"""Index-free shortest-path algorithms: Dijkstra, bidirectional Dijkstra, A*.

These serve three roles in the reproduction:

1. *Baselines* — ``BiDijkstra`` is one of the paper's compared methods and the
   Q-Stage-1 fallback of both PMHL and PostMHL (queries are answered by an
   index-free search while the index is stale).
2. *Ground truth* — every index in the test-suite is validated against plain
   Dijkstra.
3. *Substrate* — bounded Dijkstra searches are used by the pre-boundary PSP
   strategy to compute all-pair boundary shortcuts.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.graph import Graph

INF = math.inf


def _dijkstra_settle(
    graph: Graph, source: int, remaining: Optional[set]
) -> Dict[int, float]:
    """Core Dijkstra loop (no validation; ``remaining`` is consumed in place).

    Shared by every one-to-many entry point so batch callers pay validation
    and target-set construction once per source group, not once per call.
    """
    dist: Dict[int, float] = {source: 0.0}
    settled: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in settled:
            continue
        settled[v] = d
        if remaining is not None:
            remaining.discard(v)
            if not remaining:
                break
        for u, w in graph.neighbors(v).items():
            nd = d + w
            if nd < dist.get(u, INF):
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return settled


def dijkstra(graph: Graph, source: int, targets: Optional[Iterable[int]] = None) -> Dict[int, float]:
    """Single-source shortest distances from ``source``.

    Parameters
    ----------
    graph:
        The graph to search.
    source:
        Source vertex.
    targets:
        Optional set of target vertices; the search stops early once all of
        them are settled.  When ``None`` the full distance map is returned.

    Returns
    -------
    dict
        Mapping of reached vertex to shortest distance.  Unreachable vertices
        are absent from the mapping.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    remaining = set(targets) if targets is not None else None
    return _dijkstra_settle(graph, source, remaining)


def dijkstra_one_to_many(
    graph: Graph, source: int, targets: Sequence[int], validate: bool = True
) -> List[float]:
    """Distances from ``source`` to each target, in target order (``inf`` when
    unreachable).

    The batch-plane primitive: one truncated search for the whole target
    group, with source/target validation hoisted out of the search (pass
    ``validate=False`` when the caller has already checked membership, e.g.
    a source-grouped ``query_many`` that validated the batch up front).
    """
    if validate:
        if not graph.has_vertex(source):
            raise VertexNotFoundError(source)
        for target in targets:
            if not graph.has_vertex(target):
                raise VertexNotFoundError(target)
    settled = _dijkstra_settle(graph, source, set(targets))
    return [settled.get(target, INF) for target in targets]


def dijkstra_distance(graph: Graph, source: int, target: int) -> float:
    """Shortest distance between ``source`` and ``target`` (``inf`` if unreachable)."""
    if source == target:
        if not graph.has_vertex(source):
            raise VertexNotFoundError(source)
        return 0.0
    settled = dijkstra(graph, source, targets=[target])
    return settled.get(target, INF)


def dijkstra_path(graph: Graph, source: int, target: int) -> Tuple[float, List[int]]:
    """Shortest distance and one shortest path between ``source`` and ``target``.

    Returns ``(inf, [])`` when the target is unreachable.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        return 0.0, [source]
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    settled: set = set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if v == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return d, path
        for u, w in graph.neighbors(v).items():
            nd = d + w
            if nd < dist.get(u, INF):
                dist[u] = nd
                parent[u] = v
                heapq.heappush(heap, (nd, u))
    return INF, []


def bidijkstra(graph: Graph, source: int, target: int) -> float:
    """Bidirectional Dijkstra shortest distance (the paper's BiDijkstra baseline)."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        return 0.0

    dist_f: Dict[int, float] = {source: 0.0}
    dist_b: Dict[int, float] = {target: 0.0}
    settled_f: set = set()
    settled_b: set = set()
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    best = INF

    while heap_f or heap_b:
        top_f = heap_f[0][0] if heap_f else INF
        top_b = heap_b[0][0] if heap_b else INF
        if best <= top_f + top_b:
            break
        if top_f <= top_b and heap_f:
            d, v = heapq.heappop(heap_f)
            if v in settled_f:
                continue
            settled_f.add(v)
            if v in dist_b:
                best = min(best, d + dist_b[v])
            for u, w in graph.neighbors(v).items():
                nd = d + w
                if nd < dist_f.get(u, INF):
                    dist_f[u] = nd
                    heapq.heappush(heap_f, (nd, u))
                    if u in dist_b:
                        best = min(best, nd + dist_b[u])
        elif heap_b:
            d, v = heapq.heappop(heap_b)
            if v in settled_b:
                continue
            settled_b.add(v)
            if v in dist_f:
                best = min(best, d + dist_f[v])
            for u, w in graph.neighbors(v).items():
                nd = d + w
                if nd < dist_b.get(u, INF):
                    dist_b[u] = nd
                    heapq.heappush(heap_b, (nd, u))
                    if u in dist_f:
                        best = min(best, nd + dist_f[u])
        else:
            break
    return best


def astar(graph: Graph, source: int, target: int) -> float:
    """A* search using the Euclidean coordinate lower bound.

    Falls back to plain Dijkstra when the graph has no coordinates or when
    coordinates are not admissible (weights smaller than Euclidean length are
    possible in synthetic networks, so the heuristic is scaled conservatively).
    """
    if not graph.has_coordinates():
        return dijkstra_distance(graph, source, target)
    if source == target:
        return 0.0

    # Derive a conservative scale so the heuristic never overestimates.
    min_ratio = INF
    for u, v, w in graph.edges():
        cu, cv = graph.coordinate(u), graph.coordinate(v)
        euclid = math.dist(cu, cv)
        if euclid > 0:
            min_ratio = min(min_ratio, w / euclid)
    scale = 0.0 if min_ratio is INF else min_ratio

    target_coord = graph.coordinate(target)

    def heuristic(v: int) -> float:
        return scale * math.dist(graph.coordinate(v), target_coord)

    dist: Dict[int, float] = {source: 0.0}
    settled: set = set()
    heap: List[Tuple[float, int]] = [(heuristic(source), source)]
    while heap:
        _, v = heapq.heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if v == target:
            return dist[v]
        for u, w in graph.neighbors(v).items():
            nd = dist[v] + w
            if nd < dist.get(u, INF):
                dist[u] = nd
                heapq.heappush(heap, (nd + heuristic(u), u))
    return INF


def restricted_dijkstra(
    graph: Graph, source: int, allowed: Iterable[int], targets: Optional[Iterable[int]] = None
) -> Dict[int, float]:
    """Dijkstra restricted to a vertex subset (used for partition-local searches)."""
    allowed_set = set(allowed)
    if source not in allowed_set:
        raise VertexNotFoundError(source)
    remaining = set(targets) if targets is not None else None
    dist: Dict[int, float] = {source: 0.0}
    settled: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in settled:
            continue
        settled[v] = d
        if remaining is not None:
            remaining.discard(v)
            if not remaining:
                break
        for u, w in graph.neighbors(v).items():
            if u not in allowed_set:
                continue
            nd = d + w
            if nd < dist.get(u, INF):
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return settled


def all_pairs_boundary_distances(
    graph: Graph, boundary: Iterable[int]
) -> Dict[Tuple[int, int], float]:
    """All-pair shortest distances among ``boundary`` vertices using Dijkstra.

    This is the *pre-boundary strategy*'s shortcut-construction primitive
    (Section III-C of the paper): each boundary vertex runs a Dijkstra over
    the (sub)graph until all other boundary vertices are settled.
    """
    boundary_list = sorted(set(boundary))
    result: Dict[Tuple[int, int], float] = {}
    for b in boundary_list:  # validate the whole group once, not per search
        if not graph.has_vertex(b):
            raise VertexNotFoundError(b)
    for i, b in enumerate(boundary_list):
        others = boundary_list[i + 1 :]
        if not others:
            continue
        settled = _dijkstra_settle(graph, b, set(others))
        for other in others:
            d = settled.get(other, INF)
            result[(b, other)] = d
            result[(other, b)] = d
    return result
