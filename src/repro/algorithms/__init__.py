"""Index-free shortest-path algorithms (baselines, ground truth, substrates)."""

from repro.algorithms.dijkstra import (
    all_pairs_boundary_distances,
    astar,
    bidijkstra,
    dijkstra,
    dijkstra_distance,
    dijkstra_path,
    restricted_dijkstra,
)

__all__ = [
    "dijkstra",
    "dijkstra_distance",
    "dijkstra_path",
    "bidijkstra",
    "astar",
    "restricted_dijkstra",
    "all_pairs_boundary_distances",
]
