"""Exp 4 / Figure 13 — evolution of queries-per-second during an update interval.

The paper plots, for each method, the instantaneous QPS (``1 / t_q`` of the
fastest currently-available query algorithm) over the update interval: the
multi-stage indexes climb step by step (BiDijkstra → PCH → … → cross-boundary)
while single-stage baselines jump once, when their maintenance completes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.build_cache import load_or_build
from repro.registry import experiment_methods, spec_from_config
from repro.experiments.runner import prepare_dataset, prepare_workload
from repro.graph.updates import generate_update_batch
from repro.throughput.evaluator import ThroughputEvaluator


def qps_evolution_rows(
    dataset: str,
    methods: Optional[Sequence[str]] = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
    num_points: int = 10,
) -> List[Dict[str, object]]:
    """QPS samples over one update interval for every method on one dataset."""
    methods = list(methods) if methods is not None else experiment_methods()
    graph = prepare_dataset(dataset)
    rows: List[Dict[str, object]] = []
    evaluator = ThroughputEvaluator(
        update_interval=config.update_interval,
        response_qos=config.response_qos,
        threads=config.threads,
        query_sample_size=config.query_sample_size,
    )
    for method in methods:
        index = load_or_build(spec_from_config(method, config), graph)
        working = index.graph
        workload = prepare_workload(working, config)
        batch = generate_update_batch(working, config.update_volume, seed=config.seed)
        try:
            report = index.apply_batch(batch)
        except NotImplementedError:
            continue
        for timestamp, qps in evaluator.qps_evolution(index, report, workload, num_points):
            rows.append(
                {
                    "dataset": dataset,
                    "method": method,
                    "time_seconds": timestamp,
                    "queries_per_second": qps,
                }
            )
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Regenerate Figure 13 on NY (and FLA when not in quick mode)."""
    datasets = ("NY",) if quick else ("NY", "FLA")
    methods = experiment_methods(quick=quick)
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(qps_evolution_rows(dataset, methods, config))
    return rows
