"""Table I — dataset statistics (paper networks vs. synthetic analogs)."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.graph.generators import DATASET_SPECS
from repro.graph.validation import graph_stats


def table1_rows(config: ExperimentConfig = DEFAULT_CONFIG,
                datasets: List[str] | None = None) -> List[Dict[str, object]]:
    """One row per dataset: paper size, analog size, default parameters.

    Mirrors Table I of the paper with two extra columns giving the synthetic
    analog's size so the scale-down factor is explicit.
    """
    names = datasets if datasets is not None else list(config.full_datasets)
    rows: List[Dict[str, object]] = []
    for name in names:
        spec = DATASET_SPECS[name]
        graph = spec.build()
        stats = graph_stats(graph)
        rows.append(
            {
                "dataset": spec.name,
                "paper_name": spec.paper_name,
                "paper_|V|": spec.paper_vertices,
                "paper_|E|": spec.paper_edges,
                "analog_|V|": stats.num_vertices,
                "analog_|E|": stats.num_edges,
                "avg_degree": round(stats.avg_degree, 2),
                "k": spec.default_k,
                "ke": spec.default_ke,
                "tau": spec.default_tau,
            }
        )
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Regenerate Table I (analog form)."""
    datasets = list(config.quick_datasets if quick else config.full_datasets)
    return table1_rows(config, datasets)
