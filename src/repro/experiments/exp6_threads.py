"""Exp 6 / Figure 15 — effect of the thread number ``p``.

The paper varies the maintenance thread count from 1 to 160 and reports (a)
the update-time speedup and (b) the throughput speedup of PMHL and PostMHL.
Both rise with ``p`` and then plateau: the overlay update is not parallelised
and the number of partitions bounds the usable parallelism.  Here threads are
virtual (see DESIGN.md §3) — per-partition sequential times are scheduled onto
``p`` workers by the parallel cost model.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.build_cache import load_or_build
from repro.registry import spec_from_config
from repro.experiments.runner import prepare_dataset, prepare_workload
from repro.graph.updates import generate_update_batch
from repro.throughput.evaluator import ThroughputEvaluator
from repro.throughput.parallel import report_wall_seconds


def thread_sweep_rows(
    dataset: str,
    methods: Sequence[str] = ("PMHL", "PostMHL"),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[Dict[str, object]]:
    """Update time and throughput for every thread count, per method."""
    graph = prepare_dataset(dataset)
    rows: List[Dict[str, object]] = []
    for method in methods:
        index = load_or_build(spec_from_config(method, config), graph)
        working = index.graph
        workload = prepare_workload(working, config)
        batch = generate_update_batch(working, config.update_volume, seed=config.seed)
        report = index.apply_batch(batch)

        base_update = report_wall_seconds(report, 1)
        base_throughput = None
        for threads in config.thread_grid:
            evaluator = ThroughputEvaluator(
                update_interval=config.update_interval,
                response_qos=config.response_qos,
                threads=threads,
                query_sample_size=config.query_sample_size,
            )
            result = evaluator.evaluate_from_report(index, report, workload)
            update_wall = report_wall_seconds(report, threads)
            if base_throughput is None:
                base_throughput = result.max_throughput or 1e-12
            rows.append(
                {
                    "dataset": dataset,
                    "method": method,
                    "threads": threads,
                    "update_wall_seconds": update_wall,
                    "update_speedup": base_update / update_wall if update_wall > 0 else 1.0,
                    "throughput": result.max_throughput,
                    "throughput_speedup": (
                        result.max_throughput / base_throughput if base_throughput else 0.0
                    ),
                }
            )
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Regenerate Figure 15 on NY (and FLA when not in quick mode)."""
    datasets = ("NY",) if quick else ("NY", "FLA")
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(thread_sweep_rows(dataset, config=config))
    return rows
