"""Exp 5 / Figure 14 — effect of update volume |U|, interval δt and QoS R*_q.

The paper sweeps the three workload parameters on NY, FLA and SC: throughput
drops as |U| grows (longer maintenance), rises (for the proposed methods) with
larger δt and larger R*_q, while index-free / update-oriented baselines stay
flat because their bottleneck is query time, not maintenance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.build_cache import load_or_build
from repro.registry import experiment_methods, spec_from_config
from repro.experiments.runner import measure_throughput, prepare_dataset


def parameter_sweep_rows(
    dataset: str,
    methods: Optional[Sequence[str]] = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[Dict[str, object]]:
    """Three sweeps (|U|, δt, R*_q) for every method on one dataset."""
    methods = list(methods) if methods is not None else experiment_methods()
    graph = prepare_dataset(dataset)
    rows: List[Dict[str, object]] = []
    for method in methods:
        try:
            index = load_or_build(spec_from_config(method, config), graph)
        except NotImplementedError:  # pragma: no cover - defensive
            continue

        for volume in config.update_volume_grid:
            result = _safe_throughput(method, dataset, config, index, update_volume=volume)
            if result is not None:
                rows.append(_row(dataset, method, "update_volume", volume, result))
        for interval in config.update_interval_grid:
            result = _safe_throughput(method, dataset, config, index, update_interval=interval)
            if result is not None:
                rows.append(_row(dataset, method, "update_interval", interval, result))
        for qos in config.response_qos_grid:
            result = _safe_throughput(method, dataset, config, index, response_qos=qos)
            if result is not None:
                rows.append(_row(dataset, method, "response_qos", qos, result))
    return rows


def _safe_throughput(method, dataset, config, index, **kwargs):
    try:
        return measure_throughput(
            method, dataset, config, graph=index.graph, prebuilt=index, **kwargs
        )
    except NotImplementedError:
        return None


def _row(dataset, method, parameter, value, result) -> Dict[str, object]:
    return {
        "dataset": dataset,
        "method": method,
        "parameter": parameter,
        "value": value,
        "throughput": result.max_throughput,
        "update_wall_seconds": result.update_wall_seconds,
    }


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Regenerate Figure 14 (quick mode restricts to NY and the method subset)."""
    datasets = ("NY",) if quick else ("NY", "FLA", "SC")
    methods = experiment_methods(quick=quick)
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(parameter_sweep_rows(dataset, methods, config))
    return rows
