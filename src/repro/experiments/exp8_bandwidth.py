"""Exp 8 / Figure 18 — effect of the TD-partitioning bandwidth ``τ`` on PostMHL.

Larger ``τ`` admits more subtree roots, shrinking the overlay vertex count but
enlarging the per-partition boundary, which slows the post-boundary query
stage (Q-Stage 3); smaller ``τ`` enlarges the overlay, whose sequential
maintenance slows the update and hence the throughput.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List, Sequence

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.runner import measure_throughput, prepare_dataset, prepare_workload
from repro.experiments.build_cache import load_or_build
from repro.registry import get_spec


def bandwidth_sweep_rows(
    dataset: str,
    bandwidth_grid: Sequence[int],
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[Dict[str, object]]:
    """One row per ``τ``: overlay size, Q-Stage-3 query time, update time, throughput."""
    graph = prepare_dataset(dataset)
    rows: List[Dict[str, object]] = []
    for bandwidth in bandwidth_grid:
        index = load_or_build(
            get_spec(
                "PostMHL",
                bandwidth=bandwidth,
                expected_partitions=config.expected_partitions,
            ),
            graph,
        )
        working = index.graph
        workload = prepare_workload(working, config)
        q3_samples = []
        for source, target in list(workload)[: config.query_sample_size]:
            start = time.perf_counter()
            index.query_post_boundary(source, target)
            q3_samples.append(time.perf_counter() - start)
        result = measure_throughput(
            "PostMHL", dataset, config, graph=working, prebuilt=index
        )
        rows.append(
            {
                "dataset": dataset,
                "bandwidth": bandwidth,
                "realised_partitions": index.td.num_partitions,
                "overlay_vertices": index.overlay_vertex_count,
                "max_boundary": index.td.max_boundary_size(),
                "q3_query_seconds": statistics.fmean(q3_samples) if q3_samples else 0.0,
                "update_wall_seconds": result.update_wall_seconds,
                "throughput": result.max_throughput,
            }
        )
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Regenerate Figure 18 on NY (and FLA when not in quick mode)."""
    datasets = ("NY",) if quick else ("NY", "FLA")
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(bandwidth_sweep_rows(dataset, config.bandwidth_grid, config))
    return rows
