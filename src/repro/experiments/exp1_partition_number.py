"""Exp 1 / Figure 10 — effect of the partition number ``k`` on PMHL.

The paper varies ``k`` from 4 to 128 and reports the throughput ``λ*_q``
(polyline) together with the total boundary-vertex count ``|B|`` (bars): both
very small and very large ``k`` hurt throughput, because few partitions limit
parallelism while many partitions inflate the boundary (and thus the overlay
and cross-boundary maintenance work).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.build_cache import load_or_build
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.runner import measure_throughput, prepare_dataset
from repro.registry import get_spec


def partition_number_rows(
    dataset: str,
    partition_numbers: List[int],
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[Dict[str, object]]:
    """One row per partition number: |B|, update wall time and throughput."""
    graph = prepare_dataset(dataset)
    rows: List[Dict[str, object]] = []
    for k in partition_numbers:
        index = load_or_build(
            get_spec("PMHL", num_partitions=k, seed=config.seed), graph
        )
        result = measure_throughput(
            "PMHL", dataset, config, graph=index.graph, prebuilt=index
        )
        rows.append(
            {
                "dataset": dataset,
                "k": k,
                "boundary_vertices": len(index.partitioning.all_boundary()),
                "max_boundary": index.partitioning.max_boundary_size(),
                "update_wall_seconds": result.update_wall_seconds,
                "throughput": result.max_throughput,
            }
        )
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Regenerate Figure 10 on the configured datasets."""
    datasets = config.quick_datasets if quick else ("FLA", "EC", "W")
    grid = list(config.partition_number_grid)
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(partition_number_rows(dataset, grid, config))
    return rows
