"""Experiment configuration (the scaled-down analogue of the paper's Table II).

The paper's defaults (update volume 10,000 edges, update interval 60-600 s,
QoS 0.5-2 s) target multi-million-vertex networks indexed in C++.  The
synthetic analogs used here have 400-2,600 vertices and pure-Python indexes,
so every knob is scaled down proportionally; what the experiments preserve is
the *relative* behaviour between methods and the direction of every trend.
The mapping is recorded in DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ExperimentConfig:
    """Default parameters shared by the experiment drivers."""

    #: Datasets used by the quick (benchmark) runs, smallest first.
    quick_datasets: Tuple[str, ...] = ("NY", "GD")
    #: Datasets used by the full experiment scripts.
    full_datasets: Tuple[str, ...] = ("NY", "GD", "FLA", "SC", "EC", "W", "CTR", "USA")
    #: Update volume |U| (number of changed edges per batch) — paper: 10,000.
    update_volume: int = 30
    #: Update volume grid for Exp 5 — paper: 500 / 1,000 / 3,000 / 5,000.
    update_volume_grid: Tuple[int, ...] = (10, 20, 40, 60)
    #: Update interval δt in seconds — paper: 60 / 120 / 300 / 600.
    update_interval: float = 2.0
    update_interval_grid: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    #: Response-time QoS R*_q in seconds — paper: 0.5 / 1.0 / 1.5 / 2.0.
    response_qos: float = 0.2
    response_qos_grid: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.4)
    #: Virtual maintenance threads p — paper default 140.
    threads: int = 8
    thread_grid: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 140)
    #: Partition number k for PMHL and the PSP baselines — paper: 8-32.
    partition_number: int = 4
    partition_number_grid: Tuple[int, ...] = (2, 4, 8, 16)
    #: Expected partition number k_e for PostMHL — paper: 32-128.
    expected_partitions: int = 4
    expected_partitions_grid: Tuple[int, ...] = (2, 4, 8, 16)
    #: TD-partitioning bandwidth τ — paper: 100-400.
    bandwidth: int = 14
    bandwidth_grid: Tuple[int, ...] = (8, 10, 14, 18, 24)
    #: TOAIN check-in fraction.
    toain_checkin_fraction: float = 0.25
    #: Number of query pairs sampled per measurement.
    query_sample_size: int = 40
    #: Random seed base.
    seed: int = 7

    def quick(self) -> "ExperimentConfig":
        """A reduced configuration for use inside pytest-benchmark runs."""
        return ExperimentConfig(
            quick_datasets=("NY", "GD"),
            full_datasets=("NY", "GD"),
            update_volume=15,
            update_volume_grid=(10, 20),
            update_interval_grid=(1.0, 2.0),
            response_qos_grid=(0.1, 0.2),
            thread_grid=(1, 4, 16),
            partition_number_grid=(2, 4),
            expected_partitions_grid=(2, 4),
            bandwidth_grid=(10, 14),
            query_sample_size=20,
            seed=self.seed,
        )


#: Default configuration instance used by the experiment drivers.
DEFAULT_CONFIG = ExperimentConfig()

#: The paper's Table II (for the record; values here are *not* used directly).
PAPER_TABLE_II = {
    "update_volume": [500, 1000, 3000, 5000],
    "update_interval_seconds": [60, 120, 300, 600],
    "response_qos_seconds": [0.5, 1.0, 1.5, 2.0],
}
