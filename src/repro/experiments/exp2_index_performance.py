"""Exp 2 / Figure 11 — index performance comparison.

For every method and dataset the paper reports construction time ``t_c``,
index size ``|L|``, average query time ``t_q`` and average update time
``t_u``.  The expected shape: hop-based indexes (DH2H, P-TD-P, PMHL, PostMHL)
query orders of magnitude faster than search-based ones (BiDijkstra, DCH,
N-CH-P); DCH updates fastest among non-partitioned indexes; the partitioned
multi-stage indexes update faster than DH2H thanks to (simulated) parallelism.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.registry import experiment_methods
from repro.experiments.runner import measure_index_performance, prepare_dataset


def index_performance_rows(
    datasets: Sequence[str],
    methods: Optional[Sequence[str]] = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[Dict[str, object]]:
    """One row per (method, dataset) with t_c, |L|, t_q, t_u."""
    methods = list(methods) if methods is not None else experiment_methods()
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        graph = prepare_dataset(dataset)
        for method in methods:
            performance = measure_index_performance(method, dataset, config, graph=graph)
            rows.append(asdict(performance))
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Regenerate Figure 11 (quick mode uses the small datasets and method subset)."""
    datasets = config.quick_datasets if quick else config.full_datasets
    methods = experiment_methods(quick=quick)
    return index_performance_rows(datasets, methods, config)
