"""Command-line entry point for the experiment drivers.

Usage::

    python -m repro.experiments <experiment-id> [--quick] [--output FILE]
    python -m repro.experiments --list

``experiment-id`` is one of the keys of :data:`repro.experiments.EXPERIMENTS`
(``table1``, ``exp1`` … ``exp9``, ``ablations``) or ``all``.  The driver's rows
are printed as a plain-text table and optionally written to a CSV file.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Dict, List, Optional, Sequence

from repro.experiments import EXPERIMENTS
from repro.experiments.config import DEFAULT_CONFIG
from repro.experiments.runner import print_experiment


def _write_csv(rows: List[Dict[str, object]], path: str) -> None:
    if not rows:
        return
    columns: List[str] = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures on the synthetic analogs.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (table1, exp1..exp9, ablations) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced quick configuration (same one the benchmarks use)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list the available experiment ids and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="optional CSV file to write the result rows to",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_experiments or args.experiment is None:
        print("available experiments:")
        for key, module in EXPERIMENTS.items():
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:<10} {summary}")
        return 0

    requested = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    config = DEFAULT_CONFIG.quick() if args.quick else DEFAULT_CONFIG
    all_rows: List[Dict[str, object]] = []
    for name in requested:
        module = EXPERIMENTS[name]
        rows = module.run(config, quick=args.quick)
        title = (module.__doc__ or name).strip().splitlines()[0]
        print_experiment(title, rows)
        all_rows.extend({"experiment": name, **row} for row in rows)

    if args.output:
        _write_csv(all_rows, args.output)
        print(f"\nwrote {len(all_rows)} rows to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
