"""Command-line entry point for the experiment drivers.

Usage::

    python -m repro.experiments <experiment-id> [--quick] [--output FILE]
                                [--cache-dir DIR]
    python -m repro.experiments --list
    python -m repro.experiments snapshot save --method PMHL --dataset NY --path DIR
    python -m repro.experiments snapshot load --path DIR [--verify N]
    python -m repro.experiments snapshot info --path DIR
    python -m repro.experiments obs [--methods PMHL,PostMHL] [--side N]
                                    [--metrics-out FILE] [--trace-out FILE]
    python -m repro.experiments cluster [--method PMHL] [--workers 4]
                                        [--snapshot DIR] [--duration S]
    python -m repro.experiments serve [--snapshot DIR] [--workers N]
                                      [--host H] [--port P] [--qos S]

``experiment-id`` is one of the keys of :data:`repro.experiments.EXPERIMENTS`
(``table1``, ``exp1`` … ``exp9``, ``ablations``) or ``all``.  The driver's rows
are printed as a plain-text table and optionally written to a CSV file.
``--cache-dir`` enables the snapshot build cache (see
:mod:`repro.experiments.build_cache`), so reruns and parameter sweeps skip
redundant index construction; the ``snapshot`` subcommand manages standalone
index snapshots (build-and-save, load-and-verify, inspect); the ``obs``
subcommand runs an instrumented build/maintenance/query workload with
``repro.obs`` enabled and dumps a Prometheus-text metrics file plus a
``chrome://tracing``-loadable trace; the ``cluster`` subcommand serves a
mixed query/update workload from a sharded multi-process
:class:`~repro.cluster.engine.ClusterEngine` over a shared mmap snapshot and
reports per-shard counters and sustained QPS.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments import EXPERIMENTS
from repro.experiments.config import DEFAULT_CONFIG
from repro.experiments.runner import print_experiment


def _write_csv(rows: List[Dict[str, object]], path: str) -> None:
    if not rows:
        return
    columns: List[str] = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures on the synthetic analogs.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (table1, exp1..exp9, ablations) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced quick configuration (same one the benchmarks use)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list the available experiment ids and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="optional CSV file to write the result rows to",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="enable the snapshot build cache in this directory "
        "(skips redundant index rebuilds across experiments and reruns)",
    )
    return parser


def build_snapshot_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments snapshot",
        description="Build, persist, load and inspect index snapshots (repro.store).",
    )
    parser.add_argument("action", choices=("save", "load", "info"))
    parser.add_argument("--path", required=True, help="snapshot directory")
    parser.add_argument(
        "--method", default="PMHL", help="registered method name (save only)"
    )
    parser.add_argument(
        "--dataset", default="NY", help="synthetic dataset name (save only)"
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("npz", "json"),
        help="payload backend (save only; default: npz with numpy, else json)",
    )
    parser.add_argument(
        "--verify",
        type=int,
        default=0,
        metavar="N",
        help="after loading, cross-check N sampled queries against Dijkstra",
    )
    return parser


def _snapshot_main(argv: Sequence[str]) -> int:
    from repro.store import load_index, read_manifest, save_index

    args = build_snapshot_parser().parse_args(argv)

    if args.action == "info":
        manifest = read_manifest(args.path)
        print(json.dumps(manifest, indent=2))
        return 0

    if args.action == "save":
        from repro.graph.generators import load_dataset
        from repro.registry import create_index, spec_from_config

        graph = load_dataset(args.dataset)
        index = create_index(spec_from_config(args.method, DEFAULT_CONFIG), graph)
        started = time.perf_counter()
        index.build()
        built = time.perf_counter() - started
        save_index(index, args.path, backend=args.backend)
        print(
            f"saved {args.method} on {args.dataset} "
            f"(n={graph.num_vertices}, built in {built:.2f}s) to {args.path}"
        )
        return 0

    started = time.perf_counter()
    index = load_index(args.path)
    loaded = time.perf_counter() - started
    print(
        f"loaded {index.name} (n={index.graph.num_vertices}, "
        f"size={index.index_size()}) in {loaded:.3f}s"
    )
    if args.verify > 0:
        import math

        from repro.algorithms.dijkstra import dijkstra_distance
        from repro.throughput.workload import sample_query_pairs

        pairs = list(sample_query_pairs(index.graph, args.verify, seed=1))
        mismatches = 0
        for source, target in pairs:
            answer = index.query(source, target)
            oracle = dijkstra_distance(index.graph, source, target)
            # Label-based answers are bit-identical; BiDijkstra's split sum
            # may differ from the unidirectional oracle in the last ulp.
            if answer != oracle and not math.isclose(answer, oracle, rel_tol=1e-9):
                mismatches += 1
        print(f"verified {len(pairs)} queries against Dijkstra: {mismatches} mismatches")
        return 1 if mismatches else 0
    return 0


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments obs",
        description="Run an instrumented workload (build + update batches + "
        "queries) with repro.obs enabled; dump metrics and a Chrome trace.",
    )
    parser.add_argument(
        "--methods",
        default="PMHL,PostMHL",
        help="comma-separated registered method names (default: PMHL,PostMHL)",
    )
    parser.add_argument(
        "--side", type=int, default=50,
        help="grid side length; the workload runs on a side x side road grid",
    )
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument(
        "--queries", type=int, default=400, help="queries per method (served in batches)"
    )
    parser.add_argument(
        "--batches", type=int, default=3, help="update batches per method"
    )
    parser.add_argument(
        "--batch-size", type=int, default=20, help="edge updates per batch"
    )
    parser.add_argument(
        "--metrics-out", default="obs_metrics.prom",
        help="Prometheus-text metrics dump (default: obs_metrics.prom)",
    )
    parser.add_argument(
        "--json-out", default=None, help="optional JSON metrics dump"
    )
    parser.add_argument(
        "--trace-out", default="obs_trace.json",
        help="Chrome trace-event file, loadable in chrome://tracing "
        "(default: obs_trace.json)",
    )
    return parser


def _obs_main(argv: Sequence[str]) -> int:
    args = build_obs_parser().parse_args(argv)

    from repro import obs
    from repro.graph.generators import grid_road_network
    from repro.graph.updates import generate_update_batch
    from repro.registry import create_index, registered_methods
    from repro.serving.engine import ServingEngine
    from repro.throughput.workload import sample_query_pairs

    methods = [name.strip() for name in args.methods.split(",") if name.strip()]
    known = set(registered_methods())
    unknown = [name for name in methods if name not in known]
    if unknown:
        build_obs_parser().error(
            f"unknown method(s): {', '.join(unknown)} (registered: {sorted(known)})"
        )

    obs.enable()
    base_graph = grid_road_network(args.side, args.side, seed=args.seed)
    print(
        f"observing {', '.join(methods)} on a {args.side}x{args.side} grid "
        f"(n={base_graph.num_vertices}, m={base_graph.num_edges})"
    )

    for method in methods:
        graph = base_graph.copy()
        index = create_index(method, graph)
        with obs.span("obs_cli.workload", method=method):
            with ServingEngine(index, query_threads=2) as engine:
                pairs = list(
                    sample_query_pairs(graph, args.queries, seed=args.seed + 1)
                )
                half = len(pairs) // 2
                engine.query_batch(pairs[:half])
                for number in range(args.batches):
                    batch = generate_update_batch(
                        engine.index.graph,
                        volume=args.batch_size,
                        seed=args.seed + 10 + number,
                    )
                    engine.submit_batch(batch)
                    engine.wait_for_maintenance()
                engine.query_batch(pairs[half:])
                stats = engine.stats()
        print(
            f"  {method}: built in {index.build_seconds:.2f}s, "
            f"{stats['queries_served']} queries served, "
            f"{stats['batches_applied']} batches installed"
        )

    with open(args.metrics_out, "w") as handle:
        handle.write(obs.export_prometheus())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(obs.export_json(), handle, indent=2)
    obs.export_chrome_trace(args.trace_out)
    tracer = obs.tracer()
    print(f"wrote {len(obs.registry().names())} metric families to {args.metrics_out}")
    print(
        f"wrote {len(tracer)} spans to {args.trace_out} "
        "(open in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def build_cluster_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments cluster",
        description="Serve a mixed query/update workload from a sharded "
        "multi-process cluster over a shared mmap snapshot (repro.cluster).",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        help="existing snapshot directory to cluster (default: build "
        "--method on --dataset and snapshot it into a temp dir)",
    )
    parser.add_argument(
        "--method", default="PMHL", help="registered method name (when building)"
    )
    parser.add_argument(
        "--dataset", default="NY", help="synthetic dataset name (when building)"
    )
    parser.add_argument("--workers", type=int, default=4, help="shard process count")
    parser.add_argument(
        "--duration", type=float, default=3.0, help="seconds of closed-loop serving"
    )
    parser.add_argument(
        "--batch-queries", type=int, default=256,
        help="queries per dispatched batch (the cluster's unit of scatter)",
    )
    parser.add_argument(
        "--update-batches", type=int, default=2,
        help="update batches broadcast (two-phase epoch barrier) during the run",
    )
    parser.add_argument(
        "--update-volume", type=int, default=20, help="edge updates per batch"
    )
    parser.add_argument("--qos", type=float, default=None, help="response QoS bound (s)")
    parser.add_argument("--seed", type=int, default=5)
    return parser


def _cluster_main(argv: Sequence[str]) -> int:
    args = build_cluster_parser().parse_args(argv)

    import tempfile

    from repro.cluster import ClusterEngine
    from repro.graph.updates import generate_update_stream
    from repro.store import load_snapshot_graph
    from repro.throughput.workload import sample_query_pairs

    with tempfile.TemporaryDirectory(prefix="repro_cluster_") as scratch:
        snapshot = args.snapshot
        if snapshot is None:
            from repro.graph.generators import load_dataset
            from repro.registry import create_index, spec_from_config
            from repro.store import save_index

            graph = load_dataset(args.dataset)
            index = create_index(spec_from_config(args.method, DEFAULT_CONFIG), graph)
            print(f"building {args.method} on {args.dataset} (n={graph.num_vertices})...")
            index.build()
            snapshot = f"{scratch}/gen-000000"
            save_index(index, snapshot, atomic=True, generation=0)

        graph = load_snapshot_graph(snapshot)
        pairs = list(
            sample_query_pairs(graph, max(args.batch_queries, 512), seed=args.seed)
        )
        batches = generate_update_stream(
            graph, args.update_batches, args.update_volume, seed=args.seed + 1
        )

        engine = ClusterEngine(
            snapshot,
            num_workers=args.workers,
            response_qos=args.qos,
            publish_dir=f"{scratch}/gens",
        )
        with engine:
            print(
                f"cluster up: {engine.num_workers} workers over {snapshot} "
                f"(partition_aware={engine.partition_aware})"
            )
            for batch in batches:
                engine.submit_batch(batch)
            deadline = time.perf_counter() + args.duration
            served = 0
            cursor = 0
            while time.perf_counter() < deadline:
                chunk = [
                    pairs[(cursor + offset) % len(pairs)]
                    for offset in range(args.batch_queries)
                ]
                cursor += args.batch_queries
                served += len(engine.serve_batch(chunk))
            engine.wait_for_maintenance()
            stats = engine.stats()

        print(
            f"served {served} queries in {args.duration:.1f}s "
            f"({stats['lifetime_qps']:.0f} QPS lifetime), epoch {stats['epoch']}, "
            f"{stats['respawns']} respawns, generation {stats['generation']}"
        )
        latency = stats["latency"]
        print(
            f"latency p50/p95/p99: {latency['p50_seconds'] * 1e6:.0f}/"
            f"{latency['p95_seconds'] * 1e6:.0f}/"
            f"{latency['p99_seconds'] * 1e6:.0f} us (amortised per query)"
        )
        for row in stats["workers"]:
            print(
                f"  shard {row['worker']} (pid {row['pid']}): "
                f"{row['queries_served']} queries, {row['batches_applied']} batches, "
                f"epoch {row['epoch']}, {row['publishes']} publishes"
            )
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Expose a serving engine (single-process or sharded "
        "cluster) over the asyncio network query plane (repro.server).",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        help="snapshot directory to warm-start from (default: build --method "
        "on --dataset in-process first)",
    )
    parser.add_argument(
        "--method", default="PMHL", help="registered method name (when building)"
    )
    parser.add_argument(
        "--dataset", default="NY", help="synthetic dataset name (when building)"
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 binds an ephemeral port and prints it)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="shard process count; 0 serves from a single-process "
        "ServingEngine, >=1 from a ClusterEngine over the snapshot",
    )
    parser.add_argument(
        "--qos", type=float, default=None,
        help="response QoS bound in seconds (enables Lemma-1 admission -> "
        "RETRY backpressure frames)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="global in-flight request cap before RETRY frames",
    )
    parser.add_argument(
        "--max-inflight-per-conn", type=int, default=16,
        help="per-connection in-flight cap (a slow client only saturates itself)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds then drain (default: until Ctrl-C)",
    )
    parser.add_argument(
        "--announce", default=None, metavar="FILE",
        help="write 'host port' to FILE once listening (for scripts/tests)",
    )
    return parser


def _serve_main(argv: Sequence[str]) -> int:
    args = build_serve_parser().parse_args(argv)

    import asyncio
    import contextlib
    import tempfile

    from repro.server import QueryServer

    async def _run(backend) -> None:
        server = QueryServer(
            backend,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_inflight_per_connection=args.max_inflight_per_conn,
        )
        await server.start()
        host, port = server.address
        print(f"serving on {host}:{port} (drain with Ctrl-C)", flush=True)
        if args.announce:
            with open(args.announce, "w") as handle:
                handle.write(f"{host} {port}\n")
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:  # pragma: no cover - interactive path
                await asyncio.Event().wait()
        finally:
            print("draining...", flush=True)
            await server.stop()
            stats = server.stats()
            print(
                f"served {stats['requests_total']} requests "
                f"({stats['retries_total']} retries, "
                f"{stats['errors_total']} errors) over "
                f"{stats['connections_total']} connections"
            )

    with contextlib.ExitStack() as stack:
        snapshot = args.snapshot
        if snapshot is None and args.workers > 0:
            # The cluster warm-starts its shards from disk, so build once and
            # snapshot into a scratch directory first.
            scratch = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro_serve_")
            )
            snapshot = f"{scratch}/gen-000000"
            _build_snapshot(args.method, args.dataset, snapshot)

        if args.workers > 0:
            from repro.cluster import ClusterEngine

            backend = ClusterEngine(
                snapshot, num_workers=args.workers, response_qos=args.qos
            )
        elif snapshot is not None:
            from repro.serving.engine import ServingEngine

            backend = ServingEngine.from_snapshot(snapshot, response_qos=args.qos)
        else:
            from repro.graph.generators import load_dataset
            from repro.registry import create_index, spec_from_config
            from repro.serving.engine import ServingEngine

            graph = load_dataset(args.dataset)
            index = create_index(spec_from_config(args.method, DEFAULT_CONFIG), graph)
            print(
                f"building {args.method} on {args.dataset} "
                f"(n={graph.num_vertices})...", flush=True,
            )
            index.build()
            backend = ServingEngine(index, response_qos=args.qos)
        stack.enter_context(backend)

        try:
            asyncio.run(_run(backend))
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
    return 0


def _build_snapshot(method: str, dataset: str, path: str) -> None:
    from repro.graph.generators import load_dataset
    from repro.registry import create_index, spec_from_config
    from repro.store import save_index

    graph = load_dataset(dataset)
    index = create_index(spec_from_config(method, DEFAULT_CONFIG), graph)
    print(f"building {method} on {dataset} (n={graph.num_vertices})...", flush=True)
    index.build()
    save_index(index, path, atomic=True, generation=0)


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "snapshot":
        return _snapshot_main(argv[1:])
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    if argv and argv[0] == "cluster":
        return _cluster_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_dir:
        from repro.experiments.build_cache import set_cache_dir

        set_cache_dir(args.cache_dir)

    if args.list_experiments or args.experiment is None:
        print("available experiments:")
        for key, module in EXPERIMENTS.items():
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:<10} {summary}")
        return 0

    requested = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    config = DEFAULT_CONFIG.quick() if args.quick else DEFAULT_CONFIG
    all_rows: List[Dict[str, object]] = []
    for name in requested:
        module = EXPERIMENTS[name]
        rows = module.run(config, quick=args.quick)
        title = (module.__doc__ or name).strip().splitlines()[0]
        print_experiment(title, rows)
        all_rows.extend({"experiment": name, **row} for row in rows)

    if args.output:
        _write_csv(all_rows, args.output)
        print(f"\nwrote {len(all_rows)} rows to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
