"""Shared experiment machinery: per-method measurements and table formatting.

Every experiment driver reduces to a few calls into this module:

* :func:`measure_index_performance` — construction time, index size, query
  time and update time of one method on one dataset (the paper's Figure 11),
* :func:`measure_throughput` — the maximum sustainable throughput ``λ*_q`` of
  one method under one parameter setting (Figures 12 and 14),
* :func:`format_table` — plain-text rendering of result rows, which is what
  the benchmark harness prints so the paper's tables can be eyeballed
  directly from the bench output.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.base import DistanceIndex
from repro.experiments.build_cache import load_or_build
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.graph.generators import load_dataset
from repro.graph.graph import Graph
from repro.graph.updates import generate_update_batch
from repro.registry import spec_from_config
from repro.throughput.evaluator import ThroughputEvaluator, ThroughputResult
from repro.throughput.parallel import report_wall_seconds
from repro.throughput.workload import QueryWorkload, sample_query_pairs


@dataclass
class IndexPerformance:
    """Figure-11-style measurements of one method on one dataset."""

    method: str
    dataset: str
    build_seconds: float
    index_size: int
    query_seconds: float
    update_seconds: float


def prepare_dataset(name: str) -> Graph:
    """Build the synthetic analog of a paper dataset."""
    return load_dataset(name)


def prepare_workload(
    graph: Graph, config: ExperimentConfig = DEFAULT_CONFIG, seed_offset: int = 0
) -> QueryWorkload:
    """Sample the query workload used by the measurements."""
    return sample_query_pairs(
        graph, config.query_sample_size, seed=config.seed + seed_offset
    )


def measure_query_seconds(
    index: DistanceIndex, workload: QueryWorkload, sample: Optional[int] = None
) -> float:
    """Average per-query time of an index over (a prefix of) the workload.

    A single untimed warm-up query is issued first (see
    :func:`repro.throughput.evaluator.measure_query_cost`).
    """
    pairs = list(workload)
    if sample is not None:
        pairs = pairs[:sample]
    if pairs:
        index.query(pairs[0][0], pairs[0][1])
    timings = []
    for source, target in pairs:
        start = time.perf_counter()
        index.query(source, target)
        timings.append(time.perf_counter() - start)
    return statistics.fmean(timings) if timings else 0.0


def measure_index_performance(
    method: str,
    dataset: str,
    config: ExperimentConfig = DEFAULT_CONFIG,
    graph: Optional[Graph] = None,
) -> IndexPerformance:
    """Construction time, size, query time and update time of one method.

    With the snapshot build cache enabled (see
    :mod:`repro.experiments.build_cache`) the index is loaded instead of
    rebuilt on a repeat visit; the reported ``build_seconds`` is the original
    construction time the snapshot recorded, so cached rows stay comparable.
    """
    graph = graph if graph is not None else prepare_dataset(dataset)
    index = load_or_build(spec_from_config(method, config), graph)
    build_seconds = index.build_seconds
    graph = index.graph
    workload = prepare_workload(graph, config)
    query_seconds = measure_query_seconds(index, workload)
    batch = generate_update_batch(graph, config.update_volume, seed=config.seed)
    try:
        report = index.apply_batch(batch)
        update_seconds = report_wall_seconds(report, config.threads)
    except NotImplementedError:
        update_seconds = float("inf")
    return IndexPerformance(
        method=method,
        dataset=dataset,
        build_seconds=build_seconds,
        index_size=index.index_size(),
        query_seconds=query_seconds,
        update_seconds=update_seconds,
    )


def measure_throughput(
    method: str,
    dataset: str,
    config: ExperimentConfig = DEFAULT_CONFIG,
    graph: Optional[Graph] = None,
    update_volume: Optional[int] = None,
    update_interval: Optional[float] = None,
    response_qos: Optional[float] = None,
    threads: Optional[int] = None,
    prebuilt: Optional[DistanceIndex] = None,
) -> ThroughputResult:
    """Maximum sustainable throughput of one method under one setting."""
    graph = graph if graph is not None else prepare_dataset(dataset)
    if prebuilt is None:
        index = load_or_build(spec_from_config(method, config), graph)
        graph = index.graph
    else:
        index = prebuilt
        graph = index.graph
    workload = prepare_workload(graph, config)
    evaluator = ThroughputEvaluator(
        update_interval=update_interval or config.update_interval,
        response_qos=response_qos or config.response_qos,
        threads=threads or config.threads,
        query_sample_size=config.query_sample_size,
    )
    batch = generate_update_batch(
        graph, update_volume or config.update_volume, seed=config.seed
    )
    return evaluator.evaluate(index, batch, workload)


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render result rows as a fixed-width plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(cells[i]) for cells in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(cells[i].ljust(widths[i]) for i in range(len(columns)))
        for cells in rendered_rows
    ]
    return "\n".join([header, separator, *body])


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def print_experiment(title: str, rows: Iterable[Dict[str, object]],
                     columns: Optional[Sequence[str]] = None) -> str:
    """Format and print an experiment's rows; returns the rendered text."""
    rows = list(rows)
    text = f"\n=== {title} ===\n" + format_table(rows, columns)
    print(text)
    return text
