"""Ablation studies for the design choices called out in DESIGN.md.

* **A1 — cross-boundary strategy**: Section IV-A claims that pre-concatenating
  the overlay and partition labels removes the ``O(|B_max|²)`` per-query
  concatenation.  The ablation compares PMHL's Q-Stage-3/4 (concatenation
  based) query time with Q-Stage-5 (cross-boundary) query time.

* **A2 — multi-stage scheme**: Sections V-A/V-B argue that releasing
  intermediate query stages during maintenance raises throughput.  The
  ablation evaluates PostMHL twice with identical measurements: once with its
  full stage timeline and once pretending only the final stage exists (queries
  before the update finishes fall back to BiDijkstra), which is how a
  single-stage index behaves.

* **A3 — vertex-ordering quality (Theorem 1)**: the upper bound of PSP query
  efficiency says a boundary-first order can never beat the canonical labeling
  it induces, and Section VI motivates TD-partitioning by the *quality gap*
  between partition-imposed orders and the plain MDE order.  The ablation
  builds H2H twice on the same network — once with the pure MDE order (what
  PostMHL uses) and once with the partition-imposed boundary-first order (what
  PMHL and the PSP baselines must use) — and compares tree height, label size
  and query time.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List

from repro.core.pmhl import PMHLIndex
from repro.core.postmhl import PostMHLIndex
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.runner import prepare_dataset, prepare_workload
from repro.graph.updates import generate_update_batch
from repro.throughput.evaluator import ThroughputEvaluator


def cross_boundary_ablation_rows(
    dataset: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> List[Dict[str, object]]:
    """A1: per-stage query time of PMHL (concatenation vs cross-boundary)."""
    graph = prepare_dataset(dataset)
    index = PMHLIndex(graph, num_partitions=config.partition_number, seed=config.seed)
    index.build()
    workload = prepare_workload(graph, config)
    stage_queries = {
        "no_boundary (concatenation)": index.query_no_boundary,
        "post_boundary (concatenation)": index.query_post_boundary,
        "cross_boundary (2-hop)": index.query_cross_boundary,
    }
    rows: List[Dict[str, object]] = []
    for stage_name, query in stage_queries.items():
        samples = []
        for source, target in list(workload)[: config.query_sample_size]:
            start = time.perf_counter()
            query(source, target)
            samples.append(time.perf_counter() - start)
        rows.append(
            {
                "dataset": dataset,
                "query_stage": stage_name,
                "mean_query_seconds": statistics.fmean(samples),
                "max_boundary": index.partitioning.max_boundary_size(),
            }
        )
    return rows


def multistage_ablation_rows(
    dataset: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> List[Dict[str, object]]:
    """A2: PostMHL throughput with and without the multi-stage scheme."""
    graph = prepare_dataset(dataset)
    index = PostMHLIndex(
        graph,
        bandwidth=config.bandwidth,
        expected_partitions=config.expected_partitions,
    )
    index.build()
    workload = prepare_workload(graph, config)
    evaluator = ThroughputEvaluator(
        update_interval=config.update_interval,
        response_qos=config.response_qos,
        threads=config.threads,
        query_sample_size=config.query_sample_size,
    )
    batch = generate_update_batch(graph, config.update_volume, seed=config.seed)
    report = index.apply_batch(batch)

    with_stages = evaluator.evaluate_from_report(index, report, workload)

    full_catalog = index.stage_catalog()
    single_stage_catalog = [full_catalog[0], full_catalog[-1]]
    original = index.stage_catalog
    index.stage_catalog = lambda: single_stage_catalog  # type: ignore[assignment]
    try:
        without_stages = evaluator.evaluate_from_report(index, report, workload)
    finally:
        index.stage_catalog = original  # type: ignore[assignment]

    return [
        {
            "dataset": dataset,
            "variant": "multi-stage (Q1-Q4 released progressively)",
            "throughput": with_stages.max_throughput,
            "update_wall_seconds": with_stages.update_wall_seconds,
        },
        {
            "dataset": dataset,
            "variant": "single-stage (BiDijkstra until full update)",
            "throughput": without_stages.max_throughput,
            "update_wall_seconds": without_stages.update_wall_seconds,
        },
    ]


def ordering_ablation_rows(
    dataset: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> List[Dict[str, object]]:
    """A3: H2H built with the MDE order vs the partition-imposed boundary-first order."""
    from repro.labeling.h2h import H2HIndex
    from repro.partitioning.natural_cut import natural_cut_partition
    from repro.partitioning.ordering import boundary_first_order

    graph = prepare_dataset(dataset)
    workload = prepare_workload(graph, config)
    pairs = list(workload)[: config.query_sample_size]

    partitioning = natural_cut_partition(graph, config.partition_number, seed=config.seed)
    variants = {
        "MDE order (PostMHL / DH2H)": H2HIndex(graph.copy()),
        "boundary-first order (PMHL / PSP baselines)": H2HIndex(
            graph.copy(), order=boundary_first_order(graph, partitioning)
        ),
    }
    rows: List[Dict[str, object]] = []
    for variant, index in variants.items():
        index.build()
        index.query(*pairs[0])  # warm the LCA oracle outside the timed loop
        samples = []
        for source, target in pairs:
            start = time.perf_counter()
            index.query(source, target)
            samples.append(time.perf_counter() - start)
        rows.append(
            {
                "dataset": dataset,
                "vertex_order": variant,
                "tree_height": index.tree_height,
                "treewidth": index.treewidth,
                "label_entries": index.labels.label_entry_count(),
                "mean_query_seconds": statistics.fmean(samples),
            }
        )
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Run all three ablations on the quick datasets."""
    datasets = config.quick_datasets if quick else ("NY", "FLA")
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(cross_boundary_ablation_rows(dataset, config))
        rows.extend(multistage_ablation_rows(dataset, config))
        rows.extend(ordering_ablation_rows(dataset, config))
    return rows
