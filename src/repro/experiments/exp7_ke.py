"""Exp 7 / Figure 17 — effect of the expected partition number ``k_e`` on PostMHL.

As for PMHL's ``k``, both small and large ``k_e`` reduce throughput: few
partitions limit parallel maintenance while many partitions enlarge the
overlay (whose maintenance is sequential) and the boundary arrays.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.runner import measure_throughput, prepare_dataset
from repro.experiments.build_cache import load_or_build
from repro.registry import get_spec


def ke_sweep_rows(
    dataset: str,
    expected_partitions_grid: Sequence[int],
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[Dict[str, object]]:
    """One row per ``k_e``: realised partitions, overlay size, update time, throughput."""
    graph = prepare_dataset(dataset)
    rows: List[Dict[str, object]] = []
    for ke in expected_partitions_grid:
        index = load_or_build(
            get_spec("PostMHL", bandwidth=config.bandwidth, expected_partitions=ke),
            graph,
        )
        result = measure_throughput(
            "PostMHL", dataset, config, graph=index.graph, prebuilt=index
        )
        rows.append(
            {
                "dataset": dataset,
                "ke": ke,
                "realised_partitions": index.td.num_partitions,
                "overlay_vertices": index.overlay_vertex_count,
                "update_wall_seconds": result.update_wall_seconds,
                "throughput": result.max_throughput,
            }
        )
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Regenerate Figure 17 on the configured datasets."""
    datasets = config.quick_datasets if quick else ("FLA", "EC", "W")
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(ke_sweep_rows(dataset, config.expected_partitions_grid, config))
    return rows
