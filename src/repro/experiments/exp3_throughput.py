"""Exp 3 / Figure 12 — throughput comparison across datasets.

The headline result: PMHL and PostMHL outperform every baseline's maximum
sustainable throughput, by up to two orders of magnitude, with PostMHL the
best overall.  DH2H suffers from its long index-unavailable period, DCH and
the search-based methods from slow queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.registry import experiment_methods
from repro.experiments.runner import measure_throughput, prepare_dataset


def throughput_rows(
    datasets: Sequence[str],
    methods: Optional[Sequence[str]] = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[Dict[str, object]]:
    """One row per (method, dataset) with λ*_q and its two ingredients."""
    methods = list(methods) if methods is not None else experiment_methods()
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        graph = prepare_dataset(dataset)
        for method in methods:
            result = measure_throughput(method, dataset, config, graph=graph)
            rows.append(
                {
                    "dataset": dataset,
                    "method": method,
                    "throughput": result.max_throughput,
                    "update_wall_seconds": result.update_wall_seconds,
                    "final_query_seconds": result.final_query_seconds,
                }
            )
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Regenerate Figure 12 (quick mode restricts datasets and methods)."""
    datasets = config.quick_datasets if quick else config.full_datasets
    methods = experiment_methods(quick=quick)
    return throughput_rows(datasets, methods, config)
