"""Experiment drivers: one module per table/figure of the paper's evaluation.

========================  ======================================================
module                    paper artefact
========================  ======================================================
``datasets``              Table I  — dataset statistics
``config``                Table II — parameter defaults (scaled)
``exp1_partition_number`` Figure 10 — effect of partition number ``k`` (PMHL)
``exp2_index_performance`` Figure 11 — t_c, |L|, t_q, t_u comparison
``exp3_throughput``       Figure 12 — throughput comparison across datasets
``exp4_qps_evolution``    Figure 13 — QPS evolution over the update interval
``exp5_parameters``       Figure 14 — effect of |U|, δt, R*_q
``exp6_threads``          Figure 15 — effect of thread number ``p``
``exp7_ke``               Figure 17 — effect of ``k_e`` (PostMHL)
``exp8_bandwidth``        Figure 18 — effect of bandwidth ``τ`` (PostMHL)
``exp9_live_serving``     measured serving QPS vs the analytic λ*_q bound
``ablations``             A1 cross-boundary strategy, A2 multi-stage scheme
========================  ======================================================

Every module exposes ``run(config, quick)`` returning a list of row
dictionaries; ``repro.experiments.runner.print_experiment`` renders them.
"""

from repro.experiments import (
    ablations,
    datasets,
    exp1_partition_number,
    exp2_index_performance,
    exp3_throughput,
    exp4_qps_evolution,
    exp5_parameters,
    exp6_threads,
    exp7_ke,
    exp8_bandwidth,
    exp9_live_serving,
)
from repro.experiments.config import DEFAULT_CONFIG, PAPER_TABLE_II, ExperimentConfig
from repro.experiments.methods import ALL_METHODS, QUICK_METHODS, build_method, method_names
from repro.registry import create_index, experiment_methods, spec_from_config
from repro.experiments.runner import (
    IndexPerformance,
    format_table,
    measure_index_performance,
    measure_throughput,
    print_experiment,
)

#: Mapping of experiment identifier to its driver module.
EXPERIMENTS = {
    "table1": datasets,
    "exp1": exp1_partition_number,
    "exp2": exp2_index_performance,
    "exp3": exp3_throughput,
    "exp4": exp4_qps_evolution,
    "exp5": exp5_parameters,
    "exp6": exp6_threads,
    "exp7": exp7_ke,
    "exp8": exp8_bandwidth,
    "exp9": exp9_live_serving,
    "ablations": ablations,
}

__all__ = [
    "ExperimentConfig",
    "DEFAULT_CONFIG",
    "PAPER_TABLE_II",
    "ALL_METHODS",
    "QUICK_METHODS",
    "build_method",
    "method_names",
    "create_index",
    "experiment_methods",
    "spec_from_config",
    "measure_index_performance",
    "measure_throughput",
    "IndexPerformance",
    "format_table",
    "print_experiment",
    "EXPERIMENTS",
]
