"""Snapshot-backed build cache for the experiment drivers and benchmarks.

Every experiment measures each method on a *freshly built* index, and most
experiments revisit the same (method, dataset, parameters) combination across
parameter grids and reruns — paying the full construction cost every time.
The build cache short-circuits that with :mod:`repro.store` snapshots: the
first build of a combination is saved under a key derived from the method,
its spec parameters and the exact graph fingerprint; later runs load the
snapshot (a fresh, isolated index + graph each time, so update measurements
cannot contaminate one another) instead of rebuilding.

The cache is opt-in: set the ``REPRO_BUILD_CACHE`` environment variable (or
pass ``--cache-dir`` to ``python -m repro.experiments``) to a directory.
Without it, :func:`load_or_build` builds exactly as before.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from typing import Optional

from repro.base import DistanceIndex
from repro.exceptions import SnapshotError
from repro.graph.graph import Graph
from repro.registry import IndexSpec, create_index

#: Environment variable naming the cache directory (empty/unset = disabled).
CACHE_ENV = "REPRO_BUILD_CACHE"

_override_dir: Optional[str] = None


def set_cache_dir(path: Optional[str]) -> None:
    """Set (or clear, with ``None``) the process-wide cache directory."""
    global _override_dir
    _override_dir = path


def cache_dir() -> Optional[str]:
    """The active cache directory, or ``None`` when caching is disabled."""
    if _override_dir is not None:
        return _override_dir
    return os.environ.get(CACHE_ENV) or None


def cache_key(spec: IndexSpec, graph: Graph) -> str:
    """Deterministic snapshot key: method + spec parameters + graph state."""
    from repro.store import graph_fingerprint

    params = ",".join(
        f"{field}={value!r}"
        for field, value in sorted(dataclasses.asdict(spec).items())
        if field != "use_kernels"  # a load-time override, not a build input
    )
    digest = hashlib.sha256(
        f"{spec.method}|{params}|{graph_fingerprint(graph)}".encode()
    ).hexdigest()[:16]
    return f"{spec.method.replace('/', '_')}-{digest}"


def load_or_build(spec: IndexSpec, graph: Graph) -> DistanceIndex:
    """A built index for ``spec`` on (a private copy of) ``graph``.

    With caching disabled this is ``create_index(spec, graph.copy())`` plus
    ``build()``.  With a cache directory set, a hit loads the snapshot (the
    loaded index owns a reconstructed graph, so callers may mutate freely);
    a miss builds, saves and returns the freshly built index.
    """
    directory = cache_dir()
    if directory is None:
        index = create_index(spec, graph.copy())
        index.build()
        return index

    from repro.store import load_index, save_index

    path = os.path.join(directory, cache_key(spec, graph))
    if os.path.isdir(path):
        try:
            return load_index(path, use_kernels=spec.use_kernels)
        except (SnapshotError, OSError):
            pass  # stale/corrupt/unreadable entry: fall through and rebuild
    index = create_index(spec, graph.copy())
    index.build()
    try:
        save_index(index, path)
    except (SnapshotError, OSError):
        pass  # cache writes are best-effort (read-only/full disk included);
        # the build result is still good
    return index
