"""Exp 9 — live serving: measured QPS versus the analytic throughput bound.

The throughput experiments (Exp 3-6) report the *analytic* maximum
sustainable rate ``λ*_q`` computed from sequential stage timings via Lemma 1.
This experiment closes the loop: it runs each method inside the real
:class:`~repro.serving.engine.ServingEngine` — concurrent client threads,
update batches installing on the maintenance worker, stage-aware routing,
distance cache and QoS admission control all live — and reports the
*measured* served QPS and latency quantiles next to the analytic bound.

The two figures are not expected to coincide numerically (the analytic bound
assumes Poisson arrivals and abstracts away lock contention, cache hits and
the GIL), but they must tell the same story: the multi-stage methods sustain
far higher live rates than the baselines that either block queries during
maintenance or pay search-based query costs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.runner import prepare_dataset, prepare_workload
from repro.experiments.build_cache import load_or_build
from repro.registry import spec_from_config
from repro.graph.updates import generate_update_batch, generate_update_stream
from repro.serving.driver import run_mixed_workload
from repro.serving.engine import ServingEngine
from repro.throughput.evaluator import ThroughputEvaluator


def live_serving_rows(
    dataset: str,
    methods: Sequence[str],
    config: ExperimentConfig = DEFAULT_CONFIG,
    duration_seconds: float = 1.5,
    query_threads: int = 2,
    num_batches: int = 2,
    cache_capacity: int = 0,
) -> List[Dict[str, object]]:
    """One row per method: measured serving figures next to the Lemma-1 bound.

    The distance cache is off by default: the sampled workload re-asks the
    same pairs often enough that a warm cache serves >95 % of queries and
    hides the per-method differences this experiment is about.  Pass a
    positive ``cache_capacity`` to measure the cached configuration instead.
    """
    base_graph = prepare_dataset(dataset)
    rows: List[Dict[str, object]] = []
    for method in methods:
        index = load_or_build(spec_from_config(method, config), base_graph)
        graph = index.graph
        workload = prepare_workload(graph, config)

        # Analytic bound first: installs one batch and times its stages.
        evaluator = ThroughputEvaluator(
            update_interval=config.update_interval,
            response_qos=config.response_qos,
            threads=config.threads,
            query_sample_size=config.query_sample_size,
        )
        batch = generate_update_batch(graph, config.update_volume, seed=config.seed)
        analytic = evaluator.evaluate(index, batch, workload)

        # Then the live run on the updated index, with fresh batches drawn
        # against the evolved weights.
        batches = generate_update_stream(
            graph, num_batches, config.update_volume, seed=config.seed + 1
        )
        engine = ServingEngine(
            index,
            response_qos=config.response_qos,
            query_threads=query_threads,
            cache_capacity=cache_capacity,
            snapshot_limit=0,
        )
        with engine:
            report = run_mixed_workload(
                engine,
                list(workload),
                duration_seconds,
                query_threads=query_threads,
                batches=batches,
                seed=config.seed,
            )
        latency = report.stats["latency"]
        cache = report.stats.get("cache", {})
        rows.append(
            {
                "dataset": dataset,
                "method": method,
                "measured_qps": report.measured_qps,
                "analytic_max_throughput": analytic.max_throughput,
                "p50_ms": latency["p50_seconds"] * 1000.0,
                "p95_ms": latency["p95_seconds"] * 1000.0,
                "p99_ms": latency["p99_seconds"] * 1000.0,
                "cache_hit_rate": cache.get("hit_rate", 0.0),
                "shed_fraction": report.shed_fraction,
                "batches_applied": report.batches_applied,
            }
        )
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG, quick: bool = False) -> List[Dict[str, object]]:
    """Measured-versus-analytic serving comparison (PostMHL + baselines)."""
    if quick:
        datasets: Sequence[str] = config.quick_datasets[:1]
        methods: Sequence[str] = ("BiDijkstra", "DH2H", "PostMHL")
        duration = 0.6
    else:
        datasets = config.quick_datasets
        methods = ("BiDijkstra", "DH2H", "TOAIN", "PMHL", "PostMHL")
        duration = 1.5
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(
            live_serving_rows(dataset, methods, config, duration_seconds=duration)
        )
    return rows
