"""Deprecated string-keyed method dispatch (use :mod:`repro.registry`).

This module used to hold a hand-written dispatch table instantiating each of
the paper's compared methods.  Construction now goes through the typed
registry — per-method :class:`~repro.registry.IndexSpec` dataclasses and the
:func:`~repro.registry.create_index` factory — and this module only keeps the
old names alive as thin shims:

* :func:`build_method` → ``create_index(spec_from_config(name, config), graph)``
* :func:`method_names` → :func:`repro.registry.experiment_methods`

Both emit a :class:`DeprecationWarning`; new code should import from
``repro.registry`` (or ``repro``) directly.
"""

from __future__ import annotations

import warnings
from typing import List

from repro.base import DistanceIndex
from repro.graph.graph import Graph
from repro.registry import (
    PAPER_METHODS,
    create_index,
    experiment_methods,
    spec_from_config,
)

#: Method names in the order the paper's figures list them.
ALL_METHODS = PAPER_METHODS

#: Methods used by the quick benchmark runs (all of the paper's methods; the
#: quick configuration only shrinks the datasets and parameter grids).
QUICK_METHODS = ALL_METHODS


def build_method(name: str, graph: Graph, config) -> DistanceIndex:
    """Deprecated: instantiate (but do not build) the method ``name``.

    Use ``repro.create_index(name, graph, **params)`` or
    ``create_index(spec_from_config(name, config), graph)`` instead.
    """
    warnings.warn(
        "repro.experiments.methods.build_method is deprecated; use "
        "repro.create_index / repro.registry.spec_from_config instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return create_index(spec_from_config(name, config), graph)


def method_names(quick: bool = False) -> List[str]:
    """Deprecated: names of the compared methods (quick subset or all).

    Use :func:`repro.registry.experiment_methods` instead.
    """
    warnings.warn(
        "repro.experiments.methods.method_names is deprecated; use "
        "repro.registry.experiment_methods instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return experiment_methods(quick=quick)
