"""Method registry: build any of the paper's compared methods by name.

The evaluation compares eight methods (Section VII-A): BiDijkstra, DCH, DH2H,
TOAIN, N-CH-P, P-TD-P, PMHL and PostMHL.  This registry instantiates each of
them with the experiment configuration so every experiment driver builds
methods the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.base import DistanceIndex
from repro.baselines.bidijkstra_index import BiDijkstraIndex
from repro.baselines.toain import TOAINIndex
from repro.core.pmhl import PMHLIndex
from repro.core.postmhl import PostMHLIndex
from repro.experiments.config import ExperimentConfig
from repro.graph.graph import Graph
from repro.hierarchy.ch import DCHIndex
from repro.labeling.h2h import DH2HIndex
from repro.psp.no_boundary import NCHPIndex
from repro.psp.post_boundary import PTDPIndex

#: Method names in the order the paper's figures list them.
ALL_METHODS = (
    "BiDijkstra",
    "DCH",
    "DH2H",
    "TOAIN",
    "N-CH-P",
    "P-TD-P",
    "PMHL",
    "PostMHL",
)

#: Methods used by the quick benchmark runs (all of the paper's methods; the
#: quick configuration only shrinks the datasets and parameter grids).
QUICK_METHODS = ALL_METHODS


def build_method(name: str, graph: Graph, config: ExperimentConfig) -> DistanceIndex:
    """Instantiate (but do not build) the method ``name`` on ``graph``."""
    builders: Dict[str, Callable[[], DistanceIndex]] = {
        "BiDijkstra": lambda: BiDijkstraIndex(graph),
        "DCH": lambda: DCHIndex(graph),
        "DH2H": lambda: DH2HIndex(graph),
        "TOAIN": lambda: TOAINIndex(graph, checkin_fraction=config.toain_checkin_fraction),
        "N-CH-P": lambda: NCHPIndex(
            graph, num_partitions=config.partition_number, seed=config.seed
        ),
        "P-TD-P": lambda: PTDPIndex(
            graph, num_partitions=config.partition_number, seed=config.seed
        ),
        "PMHL": lambda: PMHLIndex(
            graph, num_partitions=config.partition_number, seed=config.seed
        ),
        "PostMHL": lambda: PostMHLIndex(
            graph,
            bandwidth=config.bandwidth,
            expected_partitions=config.expected_partitions,
        ),
    }
    try:
        return builders[name]()
    except KeyError as exc:
        known = ", ".join(ALL_METHODS)
        raise ValueError(f"unknown method {name!r}; known methods: {known}") from exc


def method_names(quick: bool = False) -> List[str]:
    """Names of the compared methods (quick subset or all)."""
    return list(QUICK_METHODS if quick else ALL_METHODS)
