"""Worker-process management for the cluster engine.

The :class:`Dispatcher` owns the worker pool: it forks N processes (each
warm-starting from the shared snapshot via ``repro.cluster.worker``), routes
per-worker sub-batches through their pipes, enforces liveness (reply timeout
+ ``is_alive`` check), and respawns dead or hung workers from the last
published snapshot generation plus the journal of update batches committed
since — so a respawned worker rejoins at exactly the cluster's current epoch.

Concurrency model: the dispatcher itself is *not* thread-safe — the
:class:`~repro.cluster.engine.ClusterEngine` serializes access under its
dispatch lock.  Parallelism comes from the worker processes: a scatter sends
every sub-batch before gathering any reply, so all shards compute
concurrently while the dispatcher blocks on the slowest one.

Failure model: a worker that dies, hangs past ``worker_timeout`` or reports a
command error fails the in-flight batch with a typed
:class:`~repro.exceptions.ClusterWorkerError` *after* being respawned, so the
next batch finds a full pool again.  Update broadcasts are the exception —
survivors have already installed the batch, so the dispatcher folds it into
the respawn journal and the epoch barrier still closes (see
:meth:`Dispatcher.broadcast_update`).
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.exceptions import ClusterError, ClusterWorkerError
from repro.graph.updates import UpdateBatch

from repro.cluster.worker import worker_main

#: Default seconds a worker may stay silent before it is declared hung.
DEFAULT_WORKER_TIMEOUT = 60.0


def _pick_context(name: Optional[str] = None):
    """The multiprocessing context to spawn workers with.

    ``fork`` is preferred where available: it is fast and lets the page cache
    warmed by the dispatcher's own snapshot reads benefit the children
    immediately.  Everything sent over the pipes is picklable, so ``spawn``
    (macOS/Windows default) works identically, just with a slower start.
    """
    if name is not None:
        return multiprocessing.get_context(name)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class WorkerHandle:
    """One live worker process plus its dispatcher-side pipe end."""

    __slots__ = ("worker_id", "process", "conn")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn

    def is_alive(self) -> bool:
        return self.process.is_alive()


class Dispatcher:
    """Spawn, talk to, supervise and respawn the cluster's worker pool."""

    def __init__(
        self,
        snapshot_path: str,
        num_workers: int,
        base_epoch: int = 0,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
        spawn_timeout: float = 120.0,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ClusterError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.worker_timeout = worker_timeout
        self.spawn_timeout = spawn_timeout
        #: Last published snapshot generation — what respawned workers load.
        self.base_snapshot = snapshot_path
        #: Cluster epoch captured by ``base_snapshot``.
        self.base_epoch = base_epoch
        #: Update batches committed after ``base_epoch``, oldest first;
        #: replayed on respawn, cleared by :meth:`note_published`.
        self.journal: List[UpdateBatch] = []
        self.respawns = 0
        self._ctx = _pick_context(start_method)
        self._handles: Dict[int, WorkerHandle] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        try:
            for worker_id in range(self.num_workers):
                self._handles[worker_id] = self._spawn(worker_id)
        except Exception:
            self.stop()
            raise

    def stop(self, timeout: float = 5.0) -> None:
        """Shut every worker down; no orphan processes survive this call."""
        handles, self._handles = self._handles, {}
        self._started = False
        for handle in handles.values():
            try:
                handle.conn.send(("shutdown", None))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + timeout
        for handle in handles.values():
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
                if handle.process.is_alive():  # pragma: no cover - last resort
                    handle.process.kill()
                    handle.process.join(1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            # Release the process object's resources (semaphores, pidfd).
            if hasattr(handle.process, "close"):
                handle.process.close()

    @property
    def is_started(self) -> bool:
        return self._started

    def worker_ids(self) -> List[int]:
        return sorted(self._handles)

    def processes(self) -> List[object]:
        """Live process handles (tests assert none survive ``stop``)."""
        return [handle.process for handle in self._handles.values()]

    # ------------------------------------------------------------------
    # Spawning and respawning
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                worker_id,
                self.base_snapshot,
                self.base_epoch,
                list(self.journal),
            ),
            name=f"repro-shard-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = WorkerHandle(worker_id, process, parent_conn)
        # Synchronous readiness check: the ping only returns once load_index
        # and the journal replay finished, so a handle returned from here is
        # serving at the cluster's current epoch.
        reply = self._request(handle, "ping", None, timeout=self.spawn_timeout)
        expected = self.base_epoch + len(self.journal)
        if reply["epoch"] != expected:
            self._destroy(handle)
            raise ClusterError(
                f"worker {worker_id} started at epoch {reply['epoch']}, "
                f"expected {expected}"
            )
        return handle

    def _destroy(self, handle: WorkerHandle) -> None:
        """Tear one worker down hard (dead/hung path; no protocol goodbye)."""
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(1.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(1.0)
        if hasattr(handle.process, "close"):
            handle.process.close()

    def _respawn(self, worker_id: int, reason: str) -> None:
        """Replace a failed worker with a fresh one at the current epoch."""
        started = time.perf_counter()
        old = self._handles.pop(worker_id, None)
        if old is not None:
            self._destroy(old)
        self._handles[worker_id] = self._spawn(worker_id)
        self.respawns += 1
        if obs.is_enabled():
            obs.record_span(
                "cluster.respawn", time.perf_counter() - started,
                worker=worker_id, reason=reason,
            )
            obs.registry().counter(
                "repro_cluster_respawns_total",
                "Workers respawned after death/hang/command failure",
            ).inc()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _request(
        self, handle: WorkerHandle, command: str, payload, timeout: Optional[float]
    ):
        """One send/recv round trip; raises ``ClusterWorkerError`` untyped
        (without respawning — callers own the recovery policy)."""
        self._send(handle, command, payload)
        return self._recv(handle, command, timeout)

    def _send(self, handle: WorkerHandle, command: str, payload) -> None:
        try:
            handle.conn.send((command, payload))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise ClusterWorkerError(
                handle.worker_id, f"pipe closed sending {command!r}: {exc}"
            ) from exc

    def _recv(self, handle: WorkerHandle, command: str, timeout: Optional[float]):
        budget = self.worker_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                alive = handle.is_alive()
                raise ClusterWorkerError(
                    handle.worker_id,
                    f"{'hung (alive but silent)' if alive else 'died'} "
                    f"after {budget:.1f}s awaiting {command!r} reply",
                )
            try:
                # Bounded poll so a worker that dies *without* closing the
                # pipe (SIGKILL) is still detected by the liveness check.
                if handle.conn.poll(min(remaining, 0.05)):
                    status, result = handle.conn.recv()
                    break
            except (EOFError, OSError) as exc:
                raise ClusterWorkerError(
                    handle.worker_id, f"pipe closed awaiting {command!r}: {exc}"
                ) from exc
            if not handle.is_alive() and not handle.conn.poll(0):
                raise ClusterWorkerError(
                    handle.worker_id,
                    f"died (exitcode {handle.process.exitcode}) awaiting {command!r}",
                )
        if status != "ok":
            raise ClusterWorkerError(handle.worker_id, f"command {command!r}: {result}")
        return result

    def request(
        self, worker_id: int, command: str, payload=None, timeout: Optional[float] = None
    ):
        """Round trip to one worker, with the standard recovery policy:
        on failure the worker is respawned, then the error propagates."""
        handle = self._handles.get(worker_id)
        if handle is None:
            raise ClusterError(f"no worker {worker_id} (cluster not started?)")
        try:
            return self._request(handle, command, payload, timeout)
        except ClusterWorkerError as exc:
            self._respawn(worker_id, exc.reason)
            raise

    def _scatter(
        self, requests: Dict[int, Tuple[str, object]], timeout: Optional[float] = None
    ) -> Tuple[Dict[int, object], Dict[int, ClusterWorkerError]]:
        """Send every request before gathering any reply.

        Always drains a reply (or a failure) from *every* worker it reached,
        so pipes never hold stale responses for the next batch.  Returns
        ``(results, failures)`` keyed by worker id.
        """
        results: Dict[int, object] = {}
        failures: Dict[int, ClusterWorkerError] = {}
        sent: List[int] = []
        for worker_id, (command, payload) in requests.items():
            handle = self._handles.get(worker_id)
            if handle is None:
                failures[worker_id] = ClusterWorkerError(worker_id, "no such worker")
                continue
            try:
                self._send(handle, command, payload)
                sent.append(worker_id)
            except ClusterWorkerError as exc:
                failures[worker_id] = exc
        for worker_id in sent:
            handle = self._handles[worker_id]
            command = requests[worker_id][0]
            try:
                results[worker_id] = self._recv(handle, command, timeout)
            except ClusterWorkerError as exc:
                failures[worker_id] = exc
        return results, failures

    # ------------------------------------------------------------------
    # Batch operations
    # ------------------------------------------------------------------
    def query_shards(
        self, assignments: Dict[int, List], timeout: Optional[float] = None
    ) -> Dict[int, Tuple[int, List[float]]]:
        """Scatter per-worker pair lists, gather ``(epoch, distances)``.

        On any shard failure the surviving replies are discarded, every
        failed worker is respawned at the current epoch, and the first
        failure is raised — the in-flight batch fails as a whole, typed.
        """
        results, failures = self._scatter(
            {wid: ("query", pairs) for wid, pairs in assignments.items()}, timeout
        )
        if failures:
            for worker_id, failure in sorted(failures.items()):
                self._respawn(worker_id, failure.reason)
            raise next(iter(sorted(failures.items())))[1]
        return results

    def broadcast_update(
        self, batch: UpdateBatch, timeout: Optional[float] = None
    ) -> Tuple[Dict[int, Tuple[int, List]], List[int]]:
        """Phase one of the epoch barrier: install ``batch`` on every shard.

        Returns ``(acks, respawned_ids)`` where each ack is the worker's
        ``(new_epoch, stage_timings)``.  The batch is appended to the respawn
        journal *before* any recovery, so a worker that dies mid-install is
        respawned with the batch included and the barrier still closes: after
        this call every live worker is at the new epoch, unconditionally.
        """
        alive = {wid: ("update", batch) for wid in self._handles}
        results, failures = self._scatter(alive, timeout)
        self.journal.append(batch)
        respawned: List[int] = []
        for worker_id, failure in sorted(failures.items()):
            self._respawn(worker_id, failure.reason)
            respawned.append(worker_id)
        return results, respawned

    # ------------------------------------------------------------------
    # Republish bookkeeping
    # ------------------------------------------------------------------
    def note_published(self, path: str, epoch: int) -> None:
        """A fresh snapshot generation is live: respawns now start there."""
        self.base_snapshot = path
        self.base_epoch = epoch
        self.journal.clear()
