"""repro.cluster — sharded multi-process serving over shared mmap snapshots.

Where :mod:`repro.serving` runs one process whose threads interleave under
the GIL (so measured QPS is capped by Lemma 1's single-core bound), this
package forks N worker processes that each warm-start from the *same*
mmap-backed snapshot (:mod:`repro.store`) at near-zero incremental RSS and
answer query sub-batches on distinct cores — the first configuration that can
honestly beat the analytic single-core bound on wall-clock hardware.

Modules
-------
``engine``      :class:`ClusterEngine` — the ServingEngine-shaped front end:
                epoch barrier, admission, republish lifecycle, stats.
``dispatcher``  worker pool management: scatter/gather, liveness, respawn
                from the last published generation + journal replay.
``worker``      the child-process command loop (one shard).
``routing``     partition-aware batch routing with hash fallback.

Quickstart::

    from repro.cluster import ClusterEngine

    with ClusterEngine("snapshots/pmhl-ny", num_workers=4) as cluster:
        distances = cluster.query_batch([(0, 143), (7, 2100)])
        cluster.apply_batch(batch)          # two-phase epoch barrier
        print(cluster.stats()["epoch"], cluster.published_snapshots)

See DESIGN.md §11 for the dispatcher protocol, the epoch barrier, the
snapshot republish lifecycle and the failure model.
"""

from repro.exceptions import ClusterError, ClusterWorkerError
from repro.cluster.dispatcher import DEFAULT_WORKER_TIMEOUT, Dispatcher, WorkerHandle
from repro.cluster.engine import ClusterEngine
from repro.cluster.routing import ShardRouter

__all__ = [
    "ClusterEngine",
    "ClusterError",
    "ClusterWorkerError",
    "DEFAULT_WORKER_TIMEOUT",
    "Dispatcher",
    "ShardRouter",
    "WorkerHandle",
]
