"""The cluster worker process: one shard serving the shared snapshot.

``worker_main`` is the child-process entry point.  It warm-starts an index
with :func:`repro.store.load_index` from the snapshot path the dispatcher
hands it — every worker maps the *same* mmap-backed ``.npz`` payload
read-only, so N workers cost near-zero incremental RSS over one — replays the
journal of update batches committed since that snapshot's epoch (empty unless
the worker is a respawn or a late joiner), and then serves commands from its
pipe until told to shut down.

The protocol is strictly request/response over a ``multiprocessing`` pipe:
the dispatcher sends ``(command, payload)`` tuples and the worker answers
``("ok", result)`` or ``("err", message)``.  Pipes are FIFO, so within one
worker every query sent before an update broadcast is answered at the
pre-update epoch — the per-worker half of the cluster's epoch barrier.

Commands
--------
``ping``            liveness check; replies with worker id, epoch and pid.
``query``           answer a sub-batch of pairs via ``query_many`` at the
                    worker's current epoch.
``update``          install an :class:`~repro.graph.updates.UpdateBatch`
                    (phase one of the two-phase barrier; the dispatcher
                    commits the new epoch only after *every* worker acked).
``publish``         persist this worker's index as the next snapshot
                    generation (atomic write; see ``repro.store``).
``partition_map``   the vertex→partition map behind partition-aware routing.
``stats``           serving counters for dispatcher-side aggregation.
``shutdown``        drain and exit cleanly.

``_crash`` and ``_hang`` are failure-injection hooks for the robustness
tests: they make the worker die mid-protocol or sleep through its timeout so
the dispatcher's liveness/respawn machinery can be exercised determin-
istically.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

from repro.graph.updates import UpdateBatch


def worker_main(
    conn,
    worker_id: int,
    snapshot_path: str,
    base_epoch: int,
    journal: Optional[List[UpdateBatch]] = None,
) -> None:
    """Child-process entry point (see module docstring).

    Parameters
    ----------
    conn:
        The worker end of a ``multiprocessing.Pipe``.
    worker_id:
        Stable shard id (survives respawns).
    snapshot_path:
        Snapshot directory to warm-start from (the last published generation).
    base_epoch:
        Cluster epoch the snapshot at ``snapshot_path`` captured.
    journal:
        Update batches committed after ``base_epoch``, oldest first; replayed
        before serving so a respawned worker rejoins at the cluster's current
        epoch.
    """
    from repro.store import load_index

    try:
        index = load_index(snapshot_path)
        epoch = base_epoch
        for batch in journal or ():
            index.apply_batch(batch)
            epoch += 1

        queries_served = 0
        batches_applied = 0
        query_seconds = 0.0
        update_seconds = 0.0
        publishes = 0

        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # dispatcher went away; die quietly
            command, payload = message
            try:
                if command == "ping":
                    result = {"worker": worker_id, "epoch": epoch, "pid": os.getpid()}
                elif command == "query":
                    started = time.perf_counter()
                    distances = index.query_many(payload)
                    query_seconds += time.perf_counter() - started
                    queries_served += len(payload)
                    result = (epoch, distances)
                elif command == "update":
                    started = time.perf_counter()
                    report = index.apply_batch(payload)
                    update_seconds += time.perf_counter() - started
                    batches_applied += 1
                    epoch += 1
                    result = (
                        epoch,
                        [(stage.name, stage.seconds) for stage in report.stages],
                    )
                elif command == "publish":
                    path, generation, extras = payload
                    from repro.store import save_index

                    merged = dict(extras or {})
                    merged["epoch"] = epoch
                    merged["worker"] = worker_id
                    save_index(
                        index, path, extras=merged,
                        generation=generation, atomic=True,
                    )
                    publishes += 1
                    result = (epoch, path)
                elif command == "partition_map":
                    result = {
                        vertex: partition
                        for vertex in index.graph.vertices()
                        if (partition := index.vertex_partition(vertex)) is not None
                    }
                elif command == "stats":
                    result = {
                        "worker": worker_id,
                        "pid": os.getpid(),
                        "epoch": epoch,
                        "queries_served": queries_served,
                        "batches_applied": batches_applied,
                        "query_seconds": query_seconds,
                        "update_seconds": update_seconds,
                        "publishes": publishes,
                    }
                elif command == "_hang":
                    time.sleep(payload)
                    result = None
                elif command == "_crash":
                    os._exit(payload if isinstance(payload, int) else 13)
                elif command == "shutdown":
                    conn.send(("ok", None))
                    break
                else:
                    conn.send(("err", f"unknown command {command!r}"))
                    continue
            except Exception as exc:  # report, keep serving later commands
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
                continue
            conn.send(("ok", result))
    finally:
        # Return normally rather than os._exit: multiprocessing's bootstrap
        # owns the exit (prints startup tracebacks, sets the exitcode) and
        # subprocess coverage only flushes when ``run()`` completes.
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
