"""Partition-aware query routing across cluster shards.

Every worker maps the *same* snapshot, so any worker can answer any query —
routing is an affinity policy, not a correctness requirement.  For
partitioned indexes (PMHL, PostMHL, the PSP baselines) the dispatcher pulls
the vertex→partition map once at startup (through the
:meth:`repro.base.DistanceIndex.vertex_partition` hook, see PR 1) and pins
each partition to one worker: queries touching the same partition land on the
same process, so its lazily-frozen per-partition kernel stores and OS page
cache stay hot.  Unpartitioned indexes (and overlay vertices, which
``vertex_partition`` reports as ``None``) fall back to a deterministic
multiplicative hash, which also keeps the load balanced when the partition
count is small or skewed.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.base import QueryPair

#: Knuth's multiplicative hash constant — spreads consecutive vertex ids.
_MIX = 2654435761


def _stable_hash(value: int) -> int:
    """Deterministic 32-bit mix of a vertex id (Python's ``hash`` is identity
    on small ints, which would route every query of a grid row to one worker)."""
    return ((value & 0xFFFFFFFF) * _MIX) & 0xFFFFFFFF


class ShardRouter:
    """Assign query pairs to workers, partition-aware with hash fallback."""

    def __init__(
        self,
        num_workers: int,
        partition_map: Optional[Mapping[int, int]] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self._partition_map: Dict[int, int] = dict(partition_map or {})

    @property
    def partition_aware(self) -> bool:
        return bool(self._partition_map)

    def worker_for(self, source: int, target: int) -> int:
        """Worker id owning the pair.

        Keyed on the source's partition when known (the batch plane groups
        by source, so all one-to-many fan-out of a source stays on one
        worker), else the target's, else a hash of the source.
        """
        partition = self._partition_map.get(source)
        if partition is None:
            partition = self._partition_map.get(target)
        if partition is not None:
            return _stable_hash(partition) % self.num_workers
        return _stable_hash(source) % self.num_workers

    def split(
        self, pairs: Sequence[QueryPair]
    ) -> Dict[int, List[Tuple[int, QueryPair]]]:
        """Partition ``pairs`` into per-worker sub-batches.

        Returns ``{worker_id: [(original_position, pair), ...]}`` with empty
        workers omitted; positions let the dispatcher reassemble answers in
        input order.
        """
        assignments: Dict[int, List[Tuple[int, QueryPair]]] = {}
        for position, pair in enumerate(pairs):
            worker = self.worker_for(pair[0], pair[1])
            assignments.setdefault(worker, []).append((position, pair))
        return assignments
