"""Sharded multi-process serving over a shared mmap snapshot.

:class:`ClusterEngine` presents the :class:`~repro.serving.engine.ServingEngine`
surface — ``serve``/``query``/``serve_batch``/``query_batch``/``query_many``,
``apply_batch``/``submit_batch``/``wait_for_maintenance``, ``stats`` and
``graph_at`` — but answers through N worker *processes* instead of threads.
Each worker warm-starts with :func:`repro.store.load_index` from the same
snapshot directory, so the heavy flat arrays are mapped read-only from one
file and the per-worker incremental RSS is near zero; unlike threads, the
workers then execute queries on distinct cores, which is what lets measured
QPS honestly exceed Lemma 1's single-core bound (DESIGN.md §11 — threads in
one process only interleave under the GIL).

Consistency model
-----------------

The engine counts epochs exactly like the single-process engine: epoch ``e``
is the state after ``e`` committed update batches.  A single dispatch lock
serializes *dispatcher-side* work (scatter/gather is cheap; the shards do the
real work in parallel), which yields a two-phase epoch barrier:

* **Phase 1 (install):** the update batch is broadcast to every worker and
  the dispatcher waits for all acks.  Queries never interleave here — they
  would need the dispatch lock — and worker pipes are FIFO, so anything sent
  earlier was answered at the old epoch.
* **Phase 2 (commit):** only after every shard acked the new epoch does the
  engine bump its epoch, update the graph mirror, and resume dispatching
  queries (now tagged/verified against the new epoch).

Every serve_batch therefore observes one epoch across all shards — the
answers either all precede a batch or all follow it, never a mix — and the
engine double-checks by comparing the epoch each shard reports against its
own (a mismatch raises :class:`~repro.exceptions.ClusterError` rather than
returning a torn read).

After each maintenance window the engine republishes a fresh snapshot
generation (``gen-NNNNNN`` under ``publish_dir``; atomic rename, manifest
``generation`` field), so restarted or late-joining workers warm-start near
the current epoch and replay only the short journal since.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from repro import obs
from repro.base import QueryPair, StageTiming, UpdateReport
from repro.exceptions import (
    ClusterError,
    ClusterWorkerError,
    EngineStoppedError,
    QueryRejectedError,
    VertexNotFoundError,
)
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.serving.admission import AdmissionController, AlwaysAdmit
from repro.serving.engine import QueryResult
from repro.serving.metrics import ServingMetrics
from repro.store import load_snapshot_graph, read_manifest

from repro.cluster.dispatcher import DEFAULT_WORKER_TIMEOUT, Dispatcher
from repro.cluster.routing import ShardRouter

_STOP = object()


class ClusterEngine:
    """Serve shortest-distance queries from N shard processes.

    Parameters
    ----------
    snapshot_path:
        Snapshot directory every worker warm-starts from (written by
        :func:`repro.store.save_index` or
        :meth:`~repro.serving.engine.ServingEngine.export_snapshot`).
    num_workers:
        Shard process count.
    response_qos / admission:
        Cluster-wide admission control, decided once per batch at the
        dispatcher — shards never shed independently, so a batch is admitted
        or rejected as a whole exactly like the single-process engine.
    publish_dir:
        Where republished snapshot generations go (default:
        ``<snapshot_path>-gens``).
    publish_interval:
        Republish a fresh generation after every N committed update batches
        (the paper's maintenance window); ``0`` disables republishing.
    worker_timeout:
        Seconds a shard may stay silent before the in-flight batch fails
        with :class:`~repro.exceptions.ClusterWorkerError` and the shard is
        respawned from the last published generation.
    snapshot_limit:
        Per-epoch graph-mirror snapshots retained for :meth:`graph_at`
        (correctness oracles); ``0`` disables.
    start_method:
        Multiprocessing start method override (default: fork where
        available).
    """

    def __init__(
        self,
        snapshot_path: str,
        num_workers: int = 2,
        response_qos: Optional[float] = None,
        admission=None,
        publish_dir: Optional[str] = None,
        publish_interval: int = 1,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
        snapshot_limit: int = 16,
        start_method: Optional[str] = None,
    ) -> None:
        manifest = read_manifest(snapshot_path)
        self.snapshot_path = snapshot_path
        self.method = manifest.get("method")
        self.publish_interval = publish_interval
        self.publish_dir = (
            publish_dir
            if publish_dir is not None
            else snapshot_path.rstrip("/\\") + "-gens"
        )
        self.metrics = ServingMetrics()
        if admission is not None:
            self.admission = admission
        elif response_qos is not None:
            self.admission = AdmissionController(response_qos)
        else:
            self.admission = AlwaysAdmit()
        self.response_qos = response_qos
        self.update_reports: List[UpdateReport] = []
        self.maintenance_errors: List[Exception] = []

        #: Dispatcher-side graph mirror: vertex validation + per-epoch oracles.
        self._graph = load_snapshot_graph(snapshot_path)
        self._generation = int(manifest.get("generation", 0))
        self._dispatcher = Dispatcher(
            snapshot_path,
            num_workers,
            base_epoch=0,
            worker_timeout=worker_timeout,
            start_method=start_method,
        )
        self._router: Optional[ShardRouter] = None
        self._dispatch = threading.Lock()
        self._state = threading.Lock()
        self._epoch = 0
        self._inflight = 0
        self._batches_since_publish = 0
        self._published: List[str] = []

        self._worker: Optional[threading.Thread] = None
        self._queue: "queue.Queue" = queue.Queue()
        self._pending = 0
        self._pending_cond = threading.Condition()
        self._running = False

        self._snapshot_limit = snapshot_limit
        self._snapshots: "OrderedDict[int, Graph]" = OrderedDict()
        if snapshot_limit > 0:
            self._snapshots[0] = self._graph.copy()

        if obs.is_enabled():
            self._register_obs_gauges()

    @classmethod
    def from_index(cls, index, workdir: str, **engine_kwargs) -> "ClusterEngine":
        """Persist ``index`` as generation 0 under ``workdir`` and cluster it.

        Convenience for tests/benchmarks that start from an in-process index
        rather than an existing snapshot; republished generations land next
        to generation 0 in ``workdir``.
        """
        from repro.store import save_index

        path = os.path.join(workdir, "gen-000000")
        save_index(index, path, atomic=True, generation=0, extras={"epoch": 0})
        engine_kwargs.setdefault("publish_dir", workdir)
        return cls(path, **engine_kwargs)

    def _register_obs_gauges(self) -> None:
        registry = obs.registry()
        registry.gauge(
            "repro_cluster_epoch", "Cluster serving epoch (committed batches)"
        ).set_function(lambda: self._epoch)
        registry.gauge(
            "repro_cluster_workers", "Configured shard process count"
        ).set_function(lambda: self._dispatcher.num_workers)
        registry.gauge(
            "repro_cluster_generation", "Latest published snapshot generation"
        ).set_function(lambda: self._generation)
        registry.gauge(
            "repro_cluster_pending_batches", "Update batches queued or installing"
        ).set_function(lambda: self.pending_batches)
        registry.gauge(
            "repro_cluster_journal_batches",
            "Batches a respawned worker must replay over the last generation",
        ).set_function(lambda: len(self._dispatcher.journal))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterEngine":
        """Fork the shard pool and the maintenance thread (idempotent)."""
        if self._running:
            return self
        with obs.span("cluster.start", workers=self._dispatcher.num_workers):
            self._dispatcher.start()
            partition_map = self._dispatcher.request(
                self._dispatcher.worker_ids()[0], "partition_map"
            )
            self._router = ShardRouter(self._dispatcher.num_workers, partition_map)
        self._running = True
        self._worker = threading.Thread(
            target=self._maintenance_loop, name="repro-cluster-maintain", daemon=True
        )
        self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the maintenance thread and every shard; no orphans remain."""
        if not self._running:
            return
        if drain:
            self.wait_for_maintenance()
        self._running = False
        self._queue.put(_STOP)
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        self._dispatcher.stop()

    def __enter__(self) -> "ClusterEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        return self._running

    @property
    def num_workers(self) -> int:
        return self._dispatcher.num_workers

    @property
    def current_epoch(self) -> int:
        return self._epoch

    @property
    def current_generation(self) -> int:
        return self._generation

    @property
    def graph(self) -> Graph:
        """The dispatcher-side graph mirror at the current epoch."""
        return self._graph

    @property
    def published_snapshots(self) -> List[str]:
        return list(self._published)

    @property
    def partition_aware(self) -> bool:
        return self._router is not None and self._router.partition_aware

    def graph_at(self, epoch: int) -> Graph:
        """Graph mirror snapshot of ``epoch`` (for correctness oracles)."""
        with self._state:
            snapshot = self._snapshots.get(epoch)
        if snapshot is None:
            raise ClusterError(
                f"no graph snapshot retained for epoch {epoch} "
                f"(snapshot_limit={self._snapshot_limit})"
            )
        return snapshot

    # ------------------------------------------------------------------
    # Query plane
    # ------------------------------------------------------------------
    def serve(self, source: int, target: int) -> QueryResult:
        """Serve one query (routed to its owning shard)."""
        return self.serve_batch([(source, target)])[0]

    def query(self, source: int, target: int) -> float:
        return self.serve(source, target).distance

    def serve_batch(self, pairs: Iterable[QueryPair]) -> List[QueryResult]:
        """Serve a batch across the shards at one consistent epoch.

        The batch is split by the partition-aware router, scattered, and the
        shards answer concurrently; every reply must carry the same epoch or
        the call raises :class:`~repro.exceptions.ClusterError` instead of
        returning a torn read.  Admission is decided once for the whole batch
        at the dispatcher.  ``latency_seconds`` is the batch wall amortised
        per query, exactly like the single-process batch plane.
        """
        started = time.perf_counter()
        if not self._running:
            raise EngineStoppedError("serve_batch on a stopped cluster; call start()")
        pair_list: List[QueryPair] = list(pairs)
        for source, target in pair_list:
            if not self._graph.has_vertex(source):
                raise VertexNotFoundError(source)
            if not self._graph.has_vertex(target):
                raise VertexNotFoundError(target)
        if not pair_list:
            return []
        with self._state:
            inflight = self._inflight
        decision = self.admission.decide(inflight=inflight)
        if not decision.admitted:
            self.metrics.record_shed()
            raise QueryRejectedError(decision.reason)
        with self._state:
            self._inflight += 1
        try:
            results = self._dispatch_batch(pair_list, started)
        finally:
            with self._state:
                self._inflight -= 1
        for result in results:
            self.metrics.record_query(result.stage, result.latency_seconds)
        self.admission.observe_latency(results[-1].latency_seconds)
        if obs.is_enabled():
            obs.record_span(
                "cluster.serve_batch", time.perf_counter() - started,
                size=len(results), epoch=results[-1].epoch,
            )
        return results

    def query_batch(self, pairs: Iterable[QueryPair]) -> List[float]:
        return [result.distance for result in self.serve_batch(pairs)]

    # ServingEngine's batch plane calls this ``query_batch``; the index-level
    # name is ``query_many`` — the cluster answers to both.
    query_many = query_batch

    def serve_one_to_many(
        self, source: int, targets: Iterable[int]
    ) -> List[QueryResult]:
        """Serve one source against many targets at a single cluster epoch.

        The pairs share a source, so the partition-aware router sends the
        whole set to one shard whenever the source's partition owns it —
        the shard then amortises through its index's native one-to-many path.
        """
        return self.serve_batch([(source, target) for target in targets])

    def query_one_to_many(self, source: int, targets: Iterable[int]) -> List[float]:
        return [result.distance for result in self.serve_one_to_many(source, targets)]

    def _dispatch_batch(
        self, pair_list: List[QueryPair], started: float
    ) -> List[QueryResult]:
        with self._dispatch:
            epoch = self._epoch
            assignments = self._router.split(pair_list)
            replies = self._dispatcher.query_shards(
                {
                    worker_id: [pair for _pos, pair in entries]
                    for worker_id, entries in assignments.items()
                }
            )
        distances: List[Optional[float]] = [None] * len(pair_list)
        shard_of: List[int] = [0] * len(pair_list)
        epochs = set()
        for worker_id, entries in assignments.items():
            shard_epoch, shard_distances = replies[worker_id]
            epochs.add(shard_epoch)
            for (position, _pair), distance in zip(entries, shard_distances):
                distances[position] = distance
                shard_of[position] = worker_id
        if epochs != {epoch}:
            raise ClusterError(
                f"torn epoch: dispatcher at {epoch}, shards answered at "
                f"{sorted(epochs)} — the barrier protocol was violated"
            )
        latency = (time.perf_counter() - started) / len(pair_list)
        return [
            QueryResult(
                source,
                target,
                distances[position],
                epoch,
                f"shard{shard_of[position]}",
                latency,
            )
            for position, (source, target) in enumerate(pair_list)
        ]

    # ------------------------------------------------------------------
    # Maintenance plane
    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        """Install ``batch`` on every shard under the two-phase barrier.

        Blocks until every shard serves the new epoch, commits it, applies
        the batch to the graph mirror, and republishes a snapshot generation
        when the maintenance window closes.  A shard that dies mid-install is
        respawned with the batch folded into its replay journal, so the
        barrier closes regardless (DESIGN.md §11, failure model).
        """
        if not self._running:
            raise EngineStoppedError("apply_batch on a stopped cluster; call start()")
        started = time.perf_counter()
        with self._dispatch:
            pending_epoch = self._epoch + 1
            with obs.span(
                "cluster.update_broadcast", epoch=pending_epoch, updates=len(batch)
            ):
                acks, _respawned = self._dispatcher.broadcast_update(batch)
            epochs = {epoch for epoch, _stages in acks.values()}
            if epochs - {pending_epoch}:
                raise ClusterError(
                    f"update barrier broke: expected every shard at epoch "
                    f"{pending_epoch}, got {sorted(epochs)}"
                )
            # Commit: from here on queries observe (and verify) the new epoch.
            batch.apply(self._graph)
            with self._state:
                self._epoch = pending_epoch
                if self._snapshot_limit > 0:
                    self._snapshots[pending_epoch] = self._graph.copy()
                    while len(self._snapshots) > self._snapshot_limit:
                        self._snapshots.popitem(last=False)
            report = self._ack_report(acks)
            self._batches_since_publish += 1
            if (
                self.publish_interval > 0
                and self._batches_since_publish >= self.publish_interval
            ):
                self._publish_locked()
        self.update_reports.append(report)
        self.metrics.record_batch(time.perf_counter() - started)
        return report

    @staticmethod
    def _ack_report(acks: Dict[int, tuple]) -> UpdateReport:
        """Aggregate per-shard stage timings: every shard ran the same
        stages; the barrier pays the slowest, so report per-stage maxima."""
        report = UpdateReport()
        timings = [stages for _worker, (_epoch, stages) in sorted(acks.items())]
        if not timings:
            return report
        for position, (name, seconds) in enumerate(timings[0]):
            worst = max(
                (stages[position][1] for stages in timings if position < len(stages)),
                default=seconds,
            )
            report.stages.append(StageTiming(name=name, seconds=worst))
        return report

    def submit_batch(self, batch: UpdateBatch) -> None:
        """Queue an update batch for the background maintenance thread."""
        if not self._running:
            raise EngineStoppedError("submit_batch on a stopped cluster; call start()")
        with self._pending_cond:
            self._pending += 1
        self._queue.put(batch)

    def wait_for_maintenance(self, timeout: Optional[float] = None) -> bool:
        with self._pending_cond:
            return self._pending_cond.wait_for(lambda: self._pending == 0, timeout)

    @property
    def pending_batches(self) -> int:
        with self._pending_cond:
            return self._pending

    def _maintenance_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            try:
                self.apply_batch(item)
            except Exception as exc:  # keep draining; surface via stats()
                self.maintenance_errors.append(exc)
            finally:
                with self._pending_cond:
                    self._pending -= 1
                    self._pending_cond.notify_all()

    # ------------------------------------------------------------------
    # Snapshot republish
    # ------------------------------------------------------------------
    def publish_snapshot(self) -> str:
        """Republish the current epoch as a fresh snapshot generation now."""
        if not self._running:
            raise EngineStoppedError("publish_snapshot on a stopped cluster")
        with self._dispatch:
            return self._publish_locked()

    def _publish_locked(self) -> str:
        generation = self._generation + 1
        path = os.path.join(self.publish_dir, f"gen-{generation:06d}")
        errors: List[ClusterWorkerError] = []
        with obs.span("cluster.publish", generation=generation, epoch=self._epoch):
            # Any shard can publish — they are replicas.  Walk the pool so a
            # publisher dying mid-write (it is respawned by ``request``) only
            # fails the publish if every shard fails.
            for worker_id in self._dispatcher.worker_ids():
                try:
                    epoch, published = self._dispatcher.request(
                        worker_id, "publish",
                        (path, generation, {"cluster_epoch": self._epoch}),
                    )
                except ClusterWorkerError as exc:
                    errors.append(exc)
                    continue
                if epoch != self._epoch:  # pragma: no cover - barrier guards this
                    raise ClusterError(
                        f"publisher {worker_id} at epoch {epoch}, cluster at "
                        f"{self._epoch}"
                    )
                self._generation = generation
                self._batches_since_publish = 0
                self._published.append(published)
                self._dispatcher.note_published(published, self._epoch)
                return published
        raise errors[0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_stats(self) -> List[Dict[str, object]]:
        """Per-shard counters, pulled live from every worker.

        With ``repro.obs`` enabled each shard's counters are re-exported as
        ``repro_cluster_worker_*`` gauges (labelled by worker id), so the
        process-wide registry sees the whole cluster even though the workers
        meter in their own processes.
        """
        rows: List[Dict[str, object]] = []
        with self._dispatch:
            for worker_id in self._dispatcher.worker_ids():
                try:
                    rows.append(self._dispatcher.request(worker_id, "stats"))
                except ClusterWorkerError:
                    continue  # respawned; fresh worker reports zeros next pull
        if obs.is_enabled():
            registry = obs.registry()
            for row in rows:
                for key in ("queries_served", "batches_applied", "epoch", "publishes"):
                    registry.gauge(
                        f"repro_cluster_worker_{key}",
                        f"Per-shard {key.replace('_', ' ')}",
                        worker=row["worker"],
                    ).set(row[key])
        return rows

    def stats(self) -> Dict[str, object]:
        """Merged dispatcher metrics, shard counters and epoch state."""
        snapshot = self.metrics.snapshot()
        snapshot["epoch"] = self._epoch
        snapshot["qps"] = self.metrics.qps()
        snapshot["lifetime_qps"] = self.metrics.lifetime_qps()
        snapshot["workers"] = self.worker_stats()
        snapshot["num_workers"] = self._dispatcher.num_workers
        snapshot["respawns"] = self._dispatcher.respawns
        snapshot["generation"] = self._generation
        snapshot["published_snapshots"] = list(self._published)
        snapshot["journal_batches"] = len(self._dispatcher.journal)
        snapshot["partition_aware"] = self.partition_aware
        snapshot["maintenance_errors"] = [repr(exc) for exc in self.maintenance_errors]
        return snapshot

    # ------------------------------------------------------------------
    # Failure injection (robustness tests)
    # ------------------------------------------------------------------
    def inject_worker_crash(self, worker_id: int, exitcode: int = 13) -> None:
        """Make one shard die mid-protocol (fire-and-forget test hook)."""
        self._dispatcher._send(
            self._dispatcher._handles[worker_id], "_crash", exitcode
        )

    def inject_worker_hang(self, worker_id: int, seconds: float) -> None:
        """Make one shard sleep through its timeout (fire-and-forget test hook)."""
        self._dispatcher._send(
            self._dispatcher._handles[worker_id], "_hang", seconds
        )
