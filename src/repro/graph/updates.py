"""Batch edge-weight updates.

The paper adopts a *batch update arrival model*: every ``δt`` seconds a batch
``U`` of edge weight changes arrives (reflecting traffic changes in the last
period) and must be applied to the index before query processing resumes.
This module defines the update representation and the workload generator used
by every experiment: for each selected edge the weight is decreased to
``0.5 × |e|`` or increased to ``2 × |e|`` (following the paper's Section
VII-A, which follows [32], [39]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.exceptions import EdgeNotFoundError, GraphError, InvalidWeightError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class EdgeUpdate:
    """A single edge-weight change.

    Attributes
    ----------
    u, v:
        Edge endpoints (order is not significant for undirected graphs).
    old_weight:
        Weight before the update (as observed when the batch was generated).
    new_weight:
        Weight after the update.
    """

    u: int
    v: int
    old_weight: float
    new_weight: float

    @property
    def is_increase(self) -> bool:
        """Return ``True`` if this update increases the edge weight."""
        return self.new_weight > self.old_weight

    @property
    def is_decrease(self) -> bool:
        """Return ``True`` if this update decreases the edge weight."""
        return self.new_weight < self.old_weight

    def key(self) -> Tuple[int, int]:
        """Return the canonical ``(min, max)`` endpoint pair."""
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


@dataclass
class UpdateBatch:
    """An ordered batch of edge updates arriving at the same instant."""

    updates: List[EdgeUpdate] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self.updates)

    def __getitem__(self, index: int) -> EdgeUpdate:
        return self.updates[index]

    @property
    def increases(self) -> List[EdgeUpdate]:
        """Updates that increase edge weights."""
        return [u for u in self.updates if u.is_increase]

    @property
    def decreases(self) -> List[EdgeUpdate]:
        """Updates that decrease edge weights."""
        return [u for u in self.updates if u.is_decrease]

    def apply(self, graph: Graph) -> None:
        """Apply every update in the batch to ``graph`` in place."""
        for update in self.updates:
            if not graph.has_edge(update.u, update.v):
                raise EdgeNotFoundError(update.u, update.v)
            if update.new_weight <= 0:
                raise InvalidWeightError(update.new_weight)
            graph.set_edge_weight(update.u, update.v, update.new_weight)

    def revert(self, graph: Graph) -> None:
        """Undo the batch on ``graph`` (restore the recorded old weights)."""
        for update in reversed(self.updates):
            graph.set_edge_weight(update.u, update.v, update.old_weight)


def generate_update_batch(
    graph: Graph,
    volume: int,
    seed: int = 0,
    decrease_factor: float = 0.5,
    increase_factor: float = 2.0,
    decrease_fraction: float = 0.5,
) -> UpdateBatch:
    """Generate one random update batch following the paper's protocol.

    ``volume`` distinct edges are selected uniformly at random; each becomes a
    weight decrease to ``decrease_factor × |e|`` with probability
    ``decrease_fraction`` and otherwise an increase to ``increase_factor × |e|``.
    """
    if volume < 0:
        raise GraphError(f"update volume must be non-negative, got {volume}")
    edges = list(graph.edges())
    if volume > len(edges):
        raise GraphError(
            f"cannot select {volume} distinct edges from a graph with {len(edges)} edges"
        )
    rng = random.Random(seed)
    selected = rng.sample(edges, volume)
    updates = []
    for u, v, w in selected:
        if rng.random() < decrease_fraction:
            new_weight = w * decrease_factor
        else:
            new_weight = w * increase_factor
        updates.append(EdgeUpdate(u, v, w, new_weight))
    return UpdateBatch(updates)


def generate_update_stream(
    graph: Graph,
    num_batches: int,
    volume: int,
    seed: int = 0,
    decrease_factor: float = 0.5,
    increase_factor: float = 2.0,
) -> List[UpdateBatch]:
    """Generate a sequence of update batches, each drawn against the evolving graph.

    The graph passed in is *not* modified: a private copy tracks the evolving
    weights so that ``old_weight`` values recorded in later batches reflect the
    earlier batches, exactly as a live system would observe them.
    """
    if num_batches < 0:
        raise GraphError(f"num_batches must be non-negative, got {num_batches}")
    evolving = graph.copy()
    batches = []
    for batch_index in range(num_batches):
        batch = generate_update_batch(
            evolving,
            volume,
            seed=seed + batch_index,
            decrease_factor=decrease_factor,
            increase_factor=increase_factor,
        )
        batch.apply(evolving)
        batches.append(batch)
    return batches


def split_intra_inter(
    batch: UpdateBatch, vertex_partition: Sequence[int]
) -> Tuple[UpdateBatch, UpdateBatch]:
    """Split a batch into intra-partition and inter-partition updates.

    ``vertex_partition[v]`` is the partition id of vertex ``v``.  Updates whose
    endpoints lie in the same partition are *intra* updates (they touch a
    partition index); the rest are *inter* updates (they only touch the
    overlay index).  This mirrors U-Stage 2 of PMHL.
    """
    intra, inter = [], []
    for update in batch:
        if vertex_partition[update.u] == vertex_partition[update.v]:
            intra.append(update)
        else:
            inter.append(update)
    return UpdateBatch(intra), UpdateBatch(inter)
