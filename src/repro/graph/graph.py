"""Weighted undirected road-network graph.

The :class:`Graph` class is the substrate every index in this package is built
on.  It stores an undirected graph with strictly positive edge weights
(travel times) using an adjacency-dictionary representation, which gives

* O(1) average weight lookup / update (needed by the dynamic-index update
  paths, which touch individual edges),
* cheap iteration over a vertex's neighbours (needed by Dijkstra-family
  searches and by Minimum Degree Elimination), and
* cheap structural copies (needed when building partition subgraphs and
  extended partitions).

Vertices are non-negative integers.  They do not have to be contiguous,
although the synthetic generators produce contiguous ids.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    InvalidWeightError,
    VertexNotFoundError,
)

Edge = Tuple[int, int, float]


def _check_weight(weight: float) -> float:
    """Validate an edge weight and return it as a float."""
    try:
        value = float(weight)
    except (TypeError, ValueError) as exc:
        raise InvalidWeightError(weight) from exc
    if not math.isfinite(value) or value <= 0:
        raise InvalidWeightError(weight)
    return value


class Graph:
    """Undirected graph with positive edge weights and optional coordinates.

    Parameters
    ----------
    num_vertices:
        If given, vertices ``0..num_vertices-1`` are created up front.

    Notes
    -----
    The graph is *undirected*: ``add_edge(u, v, w)`` makes the weight visible
    from both endpoints, and ``set_edge_weight`` keeps both directions in
    sync.  This mirrors the paper, which treats road networks as undirected
    and notes the techniques extend to directed graphs.
    """

    __slots__ = ("_adj", "_coords", "_num_edges", "_version")

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._adj: Dict[int, Dict[int, float]] = {v: {} for v in range(num_vertices)}
        self._coords: Dict[int, Tuple[float, float]] = {}
        self._num_edges = 0
        self._version = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges currently in the graph."""
        return self._num_edges

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every structural/weight change).

        Frozen snapshots (``repro.kernels.GraphSnapshot``) record the version
        at freeze time so staleness is detectable in O(1).
        """
        return self._version

    def vertices(self) -> Iterator[int]:
        """Iterate over all vertex ids."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all undirected edges as ``(u, v, weight)`` with ``u < v``."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    def has_vertex(self, v: int) -> bool:
        """Return ``True`` if vertex ``v`` exists."""
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def degree(self, v: int) -> int:
        """Return the number of neighbours of ``v``."""
        self._require_vertex(v)
        return len(self._adj[v])

    def neighbors(self, v: int) -> Dict[int, float]:
        """Return the neighbour-to-weight mapping of ``v``.

        The returned dictionary is the live internal mapping; callers must not
        mutate it.  Use :meth:`set_edge_weight` / :meth:`add_edge` instead.
        """
        self._require_vertex(v)
        return self._adj[v]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        """Add an isolated vertex ``v`` (no-op if it already exists)."""
        if v < 0:
            raise GraphError(f"vertex ids must be non-negative, got {v}")
        if v not in self._adj:
            self._adj[v] = {}
            self._version += 1

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add the undirected edge ``(u, v)`` with the given weight.

        If the edge already exists its weight is kept at the *minimum* of the
        existing and the new weight.  This matches shortcut-insertion
        semantics used throughout the contraction-based indexes.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (vertex {u})")
        value = _check_weight(weight)
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            if value < self._adj[u][v]:
                self._adj[u][v] = value
                self._adj[v][u] = value
                self._version += 1
        else:
            self._adj[u][v] = value
            self._adj[v][u] = value
            self._num_edges += 1
            self._version += 1

    def set_edge_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite the weight of an existing edge ``(u, v)``."""
        value = _check_weight(weight)
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._adj[u][v] = value
        self._adj[v][u] = value
        self._version += 1

    def edge_weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``(u, v)``; raise if it does not exist."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        return self._adj[u][v]

    def edge_weight_or(self, u: int, v: int, default: float = math.inf) -> float:
        """Return the weight of edge ``(u, v)`` or ``default`` if absent."""
        if u in self._adj:
            return self._adj[u].get(v, default)
        return default

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``(u, v)``; raise if it does not exist."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._version += 1

    def remove_vertex(self, v: int) -> None:
        """Remove vertex ``v`` and all incident edges."""
        self._require_vertex(v)
        for nbr in list(self._adj[v]):
            self.remove_edge(v, nbr)
        del self._adj[v]
        self._coords.pop(v, None)
        self._version += 1

    # ------------------------------------------------------------------
    # Coordinates (used by coordinate-based partitioning and A*)
    # ------------------------------------------------------------------
    def set_coordinate(self, v: int, x: float, y: float) -> None:
        """Attach a planar coordinate to vertex ``v``."""
        self._require_vertex(v)
        self._coords[v] = (float(x), float(y))

    def coordinate(self, v: int) -> Optional[Tuple[float, float]]:
        """Return the coordinate of ``v`` or ``None`` if not set."""
        return self._coords.get(v)

    def has_coordinates(self) -> bool:
        """Return ``True`` if every vertex has a coordinate."""
        return len(self._coords) == len(self._adj) and len(self._adj) > 0

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep structural copy of this graph.

        The copy carries the source's ``version`` counter forward: a holder
        of a version-keyed snapshot that is handed the copy in place of the
        original keeps monotonic staleness detection — the counter can never
        jump *backwards* past a freeze point across the copy boundary.
        """
        g = Graph()
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        g._coords = dict(self._coords)
        g._num_edges = self._num_edges
        g._version = self._version
        return g

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Return the vertex-induced subgraph on ``vertices``.

        Only edges with *both* endpoints inside ``vertices`` are kept, which is
        exactly the intra-partition edge set ``E_intra`` used by the PSP
        indexes.
        """
        keep = set(vertices)
        for v in keep:
            self._require_vertex(v)
        g = Graph()
        for v in keep:
            g.add_vertex(v)
            if v in self._coords:
                g._coords[v] = self._coords[v]
        for v in keep:
            for u, w in self._adj[v].items():
                if u in keep and v < u:
                    g.add_edge(v, u, w)
        return g

    # ------------------------------------------------------------------
    # Frozen export
    # ------------------------------------------------------------------
    def to_csr(self) -> Tuple[List[int], List[int], List[int], List[float]]:
        """Export the adjacency in CSR form: ``(ids, indptr, indices, weights)``.

        ``ids`` lists the vertices in adjacency-iteration order; ``indices``
        holds *positions into* ``ids`` (not vertex ids).  Row contents
        preserve the neighbour-dict iteration order, so searches over the
        CSR relax edges in exactly the order the live graph would — the
        property the frozen-kernel equivalence guarantees rest on.
        """
        ids = list(self._adj)
        position = {v: i for i, v in enumerate(ids)}
        indptr = [0] * (len(ids) + 1)
        indices: List[int] = []
        weights: List[float] = []
        for i, v in enumerate(ids):
            nbrs = self._adj[v]
            for u, w in nbrs.items():
                indices.append(position[u])
                weights.append(w)
            indptr[i + 1] = indptr[i] + len(nbrs)
        return ids, indptr, indices, weights

    # ------------------------------------------------------------------
    # Connectivity helpers
    # ------------------------------------------------------------------
    def connected_components(self) -> List[List[int]]:
        """Return the connected components as lists of vertex ids."""
        seen: set = set()
        components: List[List[int]] = []
        for start in self._adj:
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            component = []
            while stack:
                v = stack.pop()
                component.append(v)
                for u in self._adj[v]:
                    if u not in seen:
                        seen.add(u)
                        stack.append(u)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Return ``True`` if the graph has at most one connected component."""
        if not self._adj:
            return True
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def total_weight(self) -> float:
        """Return the sum of all edge weights (useful as a sanity fingerprint)."""
        return sum(w for _, _, w in self.edges())

    def _require_vertex(self, v: int) -> None:
        if v not in self._adj:
            raise VertexNotFoundError(v)

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
