"""Synthetic road-network generators.

The paper evaluates on eight real road networks (DIMACS USA subsets and
proprietary NavInfo China networks) ranging from 0.26M to 24M vertices.  Those
inputs are not available offline and are far beyond what a pure-Python
reproduction can index within the session budget, so this module provides
*scaled-down synthetic analogs* that preserve the structural properties the
algorithms rely on:

* sparsity (average degree ~2.5-3, like road networks),
* near-planarity and low treewidth (grid-like layout with local shortcuts),
* locally varying edge weights (travel times), and
* a natural planar embedding (coordinates), which the coordinate-based
  partitioner and A* use.

See DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import GraphError
from repro.graph.graph import Graph


def grid_road_network(
    rows: int,
    cols: int,
    seed: int = 0,
    min_weight: float = 1.0,
    max_weight: float = 10.0,
    removal_probability: float = 0.1,
    diagonal_probability: float = 0.05,
) -> Graph:
    """Generate an imperfect grid road network.

    Starts from a ``rows x cols`` lattice with uniformly random travel-time
    weights, removes a fraction of edges (keeping the graph connected) to
    mimic irregular street layouts, and adds a few diagonal "shortcut" streets.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the generated graph has ``rows * cols`` vertices.
    seed:
        Seed for the deterministic pseudo-random generator.
    min_weight, max_weight:
        Edge weights are drawn uniformly from this range.
    removal_probability:
        Probability that a lattice edge is removed (skipped when removal would
        disconnect the graph).
    diagonal_probability:
        Probability that a diagonal edge is added inside a grid cell.
    """
    if rows < 1 or cols < 1:
        raise GraphError(f"grid dimensions must be positive, got {rows}x{cols}")
    rng = random.Random(seed)
    graph = Graph(rows * cols)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            graph.set_coordinate(vid(r, c), float(c), float(r))

    candidate_edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                candidate_edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                candidate_edges.append((vid(r, c), vid(r + 1, c)))

    for u, v in candidate_edges:
        graph.add_edge(u, v, rng.uniform(min_weight, max_weight))

    # Remove a fraction of edges while preserving connectivity.
    removable = list(candidate_edges)
    rng.shuffle(removable)
    target_removals = int(removal_probability * len(removable))
    removed = 0
    for u, v in removable:
        if removed >= target_removals:
            break
        if graph.degree(u) <= 1 or graph.degree(v) <= 1:
            continue
        weight = graph.edge_weight(u, v)
        graph.remove_edge(u, v)
        if _still_connected_locally(graph, u, v):
            removed += 1
        else:
            graph.add_edge(u, v, weight)

    # Add diagonal shortcut streets.
    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() < diagonal_probability:
                u, v = vid(r, c), vid(r + 1, c + 1)
                graph.add_edge(u, v, rng.uniform(min_weight, max_weight) * math.sqrt(2))

    return graph


def _still_connected_locally(graph: Graph, u: int, v: int, hop_limit: int = 64) -> bool:
    """Check whether ``u`` can still reach ``v`` within a bounded BFS.

    A bounded search keeps the generator fast; if the bound is exceeded the
    edge removal is rolled back conservatively.
    """
    if u == v:
        return True
    frontier = [u]
    seen = {u}
    for _ in range(hop_limit):
        next_frontier = []
        for x in frontier:
            for y in graph.neighbors(x):
                if y == v:
                    return True
                if y not in seen:
                    seen.add(y)
                    next_frontier.append(y)
        if not next_frontier:
            return False
        frontier = next_frontier
    return False


def random_connected_graph(
    num_vertices: int,
    extra_edges: int,
    seed: int = 0,
    min_weight: float = 1.0,
    max_weight: float = 10.0,
) -> Graph:
    """Generate a small random connected graph (random tree plus extra edges).

    Used by the property-based tests: not road-like, but exercises every code
    path of the indexes on adversarially irregular topologies.
    """
    if num_vertices < 1:
        raise GraphError("num_vertices must be at least 1")
    rng = random.Random(seed)
    graph = Graph(num_vertices)
    order = list(range(num_vertices))
    rng.shuffle(order)
    for i in range(1, num_vertices):
        u = order[i]
        v = order[rng.randrange(i)]
        graph.add_edge(u, v, rng.uniform(min_weight, max_weight))
    attempts = 0
    added = 0
    while added < extra_edges and attempts < extra_edges * 10:
        attempts += 1
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, rng.uniform(min_weight, max_weight))
        added += 1
    return graph


def highway_network(
    clusters: int,
    cluster_size: int,
    seed: int = 0,
    min_weight: float = 1.0,
    max_weight: float = 10.0,
    highway_factor: float = 0.5,
) -> Graph:
    """Generate a multi-city network: dense city grids joined by fast highways.

    This mimics the paper's motivation of cross-province long-range queries:
    same-partition queries stay inside a city cluster while cross-partition
    queries must traverse highway edges between clusters.
    """
    if clusters < 1 or cluster_size < 1:
        raise GraphError("clusters and cluster_size must be positive")
    rng = random.Random(seed)
    side = max(2, int(math.sqrt(cluster_size)))
    graph = Graph()
    cluster_vertices: List[List[int]] = []
    offset = 0
    grid_cols = int(math.ceil(math.sqrt(clusters)))
    for cluster_index in range(clusters):
        city = grid_road_network(
            side,
            side,
            seed=seed + cluster_index + 1,
            min_weight=min_weight,
            max_weight=max_weight,
        )
        mapping: Dict[int, int] = {}
        base_x = (cluster_index % grid_cols) * (side * 3)
        base_y = (cluster_index // grid_cols) * (side * 3)
        for v in sorted(city.vertices()):
            mapping[v] = offset + v
            graph.add_vertex(offset + v)
            coord = city.coordinate(v)
            graph.set_coordinate(offset + v, base_x + coord[0], base_y + coord[1])
        for u, v, w in city.edges():
            graph.add_edge(mapping[u], mapping[v], w)
        cluster_vertices.append([mapping[v] for v in sorted(city.vertices())])
        offset += city.num_vertices

    # Highways: connect each cluster to the next in a ring plus a few chords.
    for i in range(clusters):
        j = (i + 1) % clusters
        if clusters == 1:
            break
        u = rng.choice(cluster_vertices[i])
        v = rng.choice(cluster_vertices[j])
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.uniform(min_weight, max_weight) * highway_factor * side)
    for _ in range(max(0, clusters - 2)):
        i, j = rng.sample(range(clusters), 2)
        u = rng.choice(cluster_vertices[i])
        v = rng.choice(cluster_vertices[j])
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.uniform(min_weight, max_weight) * highway_factor * side)
    return graph


@dataclass(frozen=True)
class DatasetSpec:
    """Specification of a synthetic analog of one of the paper's datasets."""

    name: str
    paper_name: str
    paper_vertices: int
    paper_edges: int
    rows: int
    cols: int
    seed: int
    default_k: int
    default_ke: int
    default_tau: int

    @property
    def num_vertices(self) -> int:
        return self.rows * self.cols

    def build(self) -> Graph:
        """Build the synthetic analog network."""
        return grid_road_network(self.rows, self.cols, seed=self.seed)


#: Scaled-down analogs of Table I.  Sizes keep the same *ordering* as the paper
#: (NY smallest ... USA largest) so size-dependent trends remain visible, while
#: staying small enough for pure-Python index construction.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "NY": DatasetSpec("NY", "New York City", 264_346, 730_100, 20, 20, 101, 8, 32, 12),
    "GD": DatasetSpec("GD", "Guangdong", 938_957, 2_452_156, 25, 28, 102, 8, 32, 12),
    "FLA": DatasetSpec("FLA", "Florida", 1_070_376, 2_687_902, 28, 30, 103, 8, 32, 12),
    "SC": DatasetSpec("SC", "South China", 1_326_091, 3_388_770, 30, 32, 104, 16, 64, 16),
    "EC": DatasetSpec("EC", "East China", 3_008_173, 7_793_146, 34, 36, 105, 16, 32, 16),
    "W": DatasetSpec("W", "Western USA", 6_262_104, 15_119_284, 38, 40, 106, 16, 32, 20),
    "CTR": DatasetSpec("CTR", "Central USA", 14_081_816, 33_866_826, 44, 46, 107, 16, 64, 24),
    "USA": DatasetSpec("USA", "Full USA", 23_947_347, 57_708_624, 50, 52, 108, 16, 64, 24),
}


def load_dataset(name: str) -> Graph:
    """Build the synthetic analog of one of the paper's datasets by name."""
    try:
        spec = DATASET_SPECS[name.upper()]
    except KeyError as exc:
        known = ", ".join(sorted(DATASET_SPECS))
        raise GraphError(f"unknown dataset {name!r}; known datasets: {known}") from exc
    return spec.build()


def dataset_names(small_only: bool = False) -> List[str]:
    """Return the dataset analog names in the paper's (size) order."""
    names = ["NY", "GD", "FLA", "SC", "EC", "W", "CTR", "USA"]
    if small_only:
        return names[:4]
    return names
