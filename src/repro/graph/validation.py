"""Structural validation helpers for road-network graphs.

Index construction assumes a connected graph with strictly positive finite
weights; these helpers let callers (and the test-suite) assert those
preconditions explicitly instead of failing deep inside an index build.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.exceptions import DisconnectedGraphError, GraphError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (used in Table I style reports)."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    avg_degree: float
    min_weight: float
    max_weight: float
    num_components: int

    @property
    def is_connected(self) -> bool:
        return self.num_components <= 1


def graph_stats(graph: Graph) -> GraphStats:
    """Compute summary statistics of ``graph``."""
    degrees = [graph.degree(v) for v in graph.vertices()]
    weights = [w for _, _, w in graph.edges()]
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        avg_degree=(2.0 * graph.num_edges / graph.num_vertices) if graph.num_vertices else 0.0,
        min_weight=min(weights) if weights else 0.0,
        max_weight=max(weights) if weights else 0.0,
        num_components=len(graph.connected_components()),
    )


def validate_graph(graph: Graph, require_connected: bool = True) -> List[str]:
    """Validate a graph for index construction.

    Returns a list of problems found (empty when the graph is valid) and
    raises for conditions that would make any index build meaningless.
    """
    problems: List[str] = []
    if graph.num_vertices == 0:
        raise GraphError("graph has no vertices")
    for u, v, w in graph.edges():
        if not math.isfinite(w) or w <= 0:
            problems.append(f"edge ({u}, {v}) has invalid weight {w}")
    isolated = [v for v in graph.vertices() if graph.degree(v) == 0]
    if isolated:
        problems.append(f"{len(isolated)} isolated vertices (e.g. {isolated[:5]})")
    if require_connected and not graph.is_connected():
        raise DisconnectedGraphError(
            f"graph has {len(graph.connected_components())} connected components"
        )
    return problems


def assert_valid(graph: Graph, require_connected: bool = True) -> None:
    """Raise :class:`GraphError` if ``validate_graph`` reports any problem."""
    problems = validate_graph(graph, require_connected=require_connected)
    if problems:
        raise GraphError("; ".join(problems))
