"""Road-network graph substrate: graph structure, I/O, generators, updates."""

from repro.graph.graph import Graph
from repro.graph.generators import (
    DATASET_SPECS,
    DatasetSpec,
    dataset_names,
    grid_road_network,
    highway_network,
    load_dataset,
    random_connected_graph,
)
from repro.graph.io import (
    read_dimacs_co,
    read_dimacs_gr,
    read_edge_list,
    write_dimacs_co,
    write_dimacs_gr,
    write_edge_list,
)
from repro.graph.updates import (
    EdgeUpdate,
    UpdateBatch,
    generate_update_batch,
    generate_update_stream,
    split_intra_inter,
)
from repro.graph.validation import GraphStats, assert_valid, graph_stats, validate_graph

__all__ = [
    "Graph",
    "DatasetSpec",
    "DATASET_SPECS",
    "dataset_names",
    "grid_road_network",
    "highway_network",
    "load_dataset",
    "random_connected_graph",
    "read_dimacs_gr",
    "read_dimacs_co",
    "read_edge_list",
    "write_dimacs_gr",
    "write_dimacs_co",
    "write_edge_list",
    "EdgeUpdate",
    "UpdateBatch",
    "generate_update_batch",
    "generate_update_stream",
    "split_intra_inter",
    "GraphStats",
    "graph_stats",
    "validate_graph",
    "assert_valid",
]
