"""Graph input/output in DIMACS and edge-list formats.

The paper evaluates on road networks distributed in the DIMACS shortest-path
challenge format (``.gr`` graph files and ``.co`` coordinate files).  This
module reads and writes that format so users with access to the real DIMACS
datasets can run the harness on them, and so synthetic networks can be saved
and reloaded deterministically.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.exceptions import GraphError
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str):
    """Open a possibly gzip-compressed text file."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_dimacs_gr(path: PathLike) -> Graph:
    """Read a DIMACS ``.gr`` file into a :class:`Graph`.

    DIMACS arcs are directed; road networks ship each undirected edge as two
    arcs.  We collapse them into a single undirected edge keeping the minimum
    weight, matching the paper's undirected-graph model.  DIMACS vertex ids
    are 1-based; they are shifted to 0-based ids here.
    """
    graph = Graph()
    declared_vertices: Optional[int] = None
    with _open_text(path, "r") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphError(f"{path}: malformed problem line at {line_no}: {line!r}")
                declared_vertices = int(parts[2])
                for v in range(declared_vertices):
                    graph.add_vertex(v)
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphError(f"{path}: malformed arc line at {line_no}: {line!r}")
                u, v, w = int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])
                if u == v:
                    continue
                graph.add_edge(u, v, w)
            else:
                raise GraphError(f"{path}: unknown line type at {line_no}: {line!r}")
    if declared_vertices is None:
        raise GraphError(f"{path}: missing 'p sp' problem line")
    return graph


def read_dimacs_co(path: PathLike, graph: Graph) -> None:
    """Read a DIMACS ``.co`` coordinate file and attach coordinates to ``graph``."""
    with _open_text(path, "r") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c") or line.startswith("p"):
                continue
            parts = line.split()
            if parts[0] == "v":
                if len(parts) != 4:
                    raise GraphError(f"{path}: malformed vertex line at {line_no}: {line!r}")
                v, x, y = int(parts[1]) - 1, float(parts[2]), float(parts[3])
                if graph.has_vertex(v):
                    graph.set_coordinate(v, x, y)
            else:
                raise GraphError(f"{path}: unknown line type at {line_no}: {line!r}")


def write_dimacs_gr(graph: Graph, path: PathLike, comment: str = "") -> None:
    """Write ``graph`` as a DIMACS ``.gr`` file (each edge emitted as two arcs)."""
    with _open_text(path, "w") as handle:
        if comment:
            for comment_line in comment.splitlines():
                handle.write(f"c {comment_line}\n")
        handle.write(f"p sp {graph.num_vertices} {graph.num_edges * 2}\n")
        for u, v, w in graph.edges():
            weight = int(w) if float(w).is_integer() else w
            handle.write(f"a {u + 1} {v + 1} {weight}\n")
            handle.write(f"a {v + 1} {u + 1} {weight}\n")


def write_dimacs_co(graph: Graph, path: PathLike) -> None:
    """Write vertex coordinates as a DIMACS ``.co`` file."""
    with _open_text(path, "w") as handle:
        handle.write(f"p aux sp co {graph.num_vertices}\n")
        for v in sorted(graph.vertices()):
            coord = graph.coordinate(v)
            if coord is None:
                continue
            handle.write(f"v {v + 1} {coord[0]:.0f} {coord[1]:.0f}\n")


def read_edge_list(path: PathLike) -> Graph:
    """Read a whitespace-separated ``u v weight`` edge list (0-based ids)."""
    graph = Graph()
    with _open_text(path, "r") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise GraphError(f"{path}: malformed edge line at {line_no}: {line!r}")
            u, v, w = int(parts[0]), int(parts[1]), float(parts[2])
            graph.add_edge(u, v, w)
    return graph


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` as a ``u v weight`` edge list."""
    with _open_text(path, "w") as handle:
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w}\n")


def edges_sorted(graph: Graph) -> List[Tuple[int, int, float]]:
    """Return the edge list sorted by endpoints (stable fingerprint for tests)."""
    return sorted(graph.edges())
