"""Shared (de)serializers for the structures every index snapshot is made of.

Each :meth:`~repro.base.DistanceIndex.to_state` implementation composes these
helpers rather than inventing its own wire format: graphs, MDE contractions,
H2H label arrays, partitionings, partition-index families and overlay indexes
all have exactly one on-disk shape.  The helpers keep two invariants:

* **bit-exactness** — every float travels through a float64 array (or JSON
  ``repr`` round-trip), and dict/list orders are preserved where the live
  structures rely on them, so a loaded index answers queries with the exact
  values the saved one would;
* **maintainability** — everything ``apply_batch`` reads (supporter records,
  base-edge weights, per-partition graphs) is persisted, so a loaded index
  accepts update batches exactly like the original.

Derived structures that are cheap to recompute relative to construction —
tree decompositions, LCA oracles, partition boundary sets — are rebuilt on
load instead of stored; what the paper's methods pay minutes for (the
contraction passes and label arrays) is what goes into the payload.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.store.arrays import ArrayReader, ArrayWriter
from repro.treedec.mde import ContractionResult
from repro.treedec.tree import TreeDecomposition


class LazyDict(dict):
    """A dict whose contents are produced by ``loader`` on first read access.

    Loading a snapshot materialises Python dict-of-list structures from flat
    arrays; for the structures only the *maintenance* paths read (supporter
    records, shortcut arrays, label dicts shadowed by a reattached kernel
    store) that conversion is deferred: the loader closure keeps the (mmap-
    backed) arrays and runs once, on the first read, after which the instance
    behaves as a plain dict.  Query-only warm starts therefore never pay for
    the structures they never touch.
    """

    __slots__ = ("_loader", "_lock")

    def __init__(self, loader):
        super().__init__()
        self._loader = loader
        self._lock = threading.Lock()

    def _ensure(self) -> None:
        # Warm-started serving runs queries on multiple threads; the first
        # touches can race here.  The loader fills a *staging* dict under the
        # lock (so its own writes don't re-enter these overrides) and
        # ``_loader`` flips to None only after ``self`` holds the full
        # contents — a thread seeing None on the fast path therefore always
        # sees a completely materialised dict, never a partial one.
        if self._loader is None:
            return
        with self._lock:
            loader = self._loader
            if loader is None:
                return
            staging: dict = {}
            loader(staging)
            dict.update(self, staging)
            self._loader = None

    def __getitem__(self, key):
        self._ensure()
        return dict.__getitem__(self, key)

    def __contains__(self, key):
        self._ensure()
        return dict.__contains__(self, key)

    def __iter__(self):
        self._ensure()
        return dict.__iter__(self)

    def __len__(self):
        self._ensure()
        return dict.__len__(self)

    def __bool__(self):
        self._ensure()
        return dict.__len__(self) > 0

    def __eq__(self, other):
        self._ensure()
        return dict.__eq__(self, other)

    def __ne__(self, other):
        self._ensure()
        return dict.__ne__(self, other)

    __hash__ = None

    # Writes materialise first too: a loader running *after* a write would
    # silently overwrite it (no current maintenance path writes before
    # reading, but the guarantee should not depend on that).
    def __setitem__(self, key, value):
        self._ensure()
        dict.__setitem__(self, key, value)

    def __delitem__(self, key):
        self._ensure()
        dict.__delitem__(self, key)

    def setdefault(self, key, default=None):
        self._ensure()
        return dict.setdefault(self, key, default)

    def pop(self, *args):
        self._ensure()
        return dict.pop(self, *args)

    def popitem(self):
        self._ensure()
        return dict.popitem(self)

    def update(self, *args, **kwargs):
        self._ensure()
        dict.update(self, *args, **kwargs)

    def clear(self):
        self._loader = None
        dict.clear(self)

    def copy(self):
        self._ensure()
        return dict(self)

    def get(self, key, default=None):
        self._ensure()
        return dict.get(self, key, default)

    def keys(self):
        self._ensure()
        return dict.keys(self)

    def values(self):
        self._ensure()
        return dict.values(self)

    def items(self):
        self._ensure()
        return dict.items(self)


# ----------------------------------------------------------------------
# Graph
# ----------------------------------------------------------------------
def pack_graph(graph: Graph, io: ArrayWriter) -> Dict[str, object]:
    """Serialize a graph's vertices, edges and coordinates."""
    verts = list(graph.vertices())
    edge_u: List[int] = []
    edge_v: List[int] = []
    edge_w: List[float] = []
    for u, v, w in graph.edges():
        edge_u.append(u)
        edge_v.append(v)
        edge_w.append(w)
    state: Dict[str, object] = {
        "vertices": io.put_ints(verts),
        "edge_u": io.put_ints(edge_u),
        "edge_v": io.put_ints(edge_v),
        "edge_w": io.put_floats(edge_w),
    }
    coords = [(v, *c) for v in verts if (c := graph.coordinate(v)) is not None]
    if coords:
        state["coord_v"] = io.put_ints([c[0] for c in coords])
        state["coord_x"] = io.put_floats([c[1] for c in coords])
        state["coord_y"] = io.put_floats([c[2] for c in coords])
    return state


def unpack_graph(state: Dict[str, object], io: ArrayReader) -> Graph:
    verts = io.get_list(state["vertices"])
    edge_u = io.get_list(state["edge_u"])
    edge_v = io.get_list(state["edge_v"])
    edge_w = io.get_list(state["edge_w"])
    # Validate once up front, then build the adjacency directly: the
    # per-edge ``add_edge`` checks would dominate load time on big graphs.
    if any(not (math.isfinite(w) and w > 0) for w in edge_w):
        raise ValueError("snapshot graph payload carries a non-positive edge weight")
    if verts and min(verts) < 0:
        raise ValueError("snapshot graph payload carries a negative vertex id")
    graph = Graph()
    adjacency = {v: {} for v in verts}
    for u, v, w in zip(edge_u, edge_v, edge_w):
        adjacency[u][v] = w
        adjacency[v][u] = w
    graph._adj = adjacency
    graph._num_edges = len(edge_u)
    if "coord_v" in state:
        for v, x, y in zip(
            io.get_list(state["coord_v"]),
            io.get_list(state["coord_x"]),
            io.get_list(state["coord_y"]),
        ):
            graph.set_coordinate(v, x, y)
    return graph


# ----------------------------------------------------------------------
# MDE contraction (order + shortcuts + supporters + base edges)
# ----------------------------------------------------------------------
def pack_contraction(contraction: ContractionResult, io: ArrayWriter) -> Dict[str, object]:
    order = contraction.order
    nbr_indptr = [0]
    nbr_data: List[int] = []
    sc_data: List[float] = []
    for v in order:
        nbrs = contraction.neighbors[v]
        shortcuts = contraction.shortcuts[v]
        nbr_data.extend(nbrs)
        sc_data.extend(shortcuts[u] for u in nbrs)
        nbr_indptr.append(len(nbr_data))
    sup_a: List[int] = []
    sup_b: List[int] = []
    sup_indptr = [0]
    sup_data: List[int] = []
    for (a, b), supporters in contraction.supporters.items():
        sup_a.append(a)
        sup_b.append(b)
        sup_data.extend(supporters)
        sup_indptr.append(len(sup_data))
    base_items = list(contraction.base_edges.items())
    return {
        "order": io.put_ints(order),
        "nbr_indptr": io.put_ints(nbr_indptr),
        "nbr_data": io.put_ints(nbr_data),
        "sc_data": io.put_floats(sc_data),
        "sup_a": io.put_ints(sup_a),
        "sup_b": io.put_ints(sup_b),
        "sup_indptr": io.put_ints(sup_indptr),
        "sup_data": io.put_ints(sup_data),
        "base_u": io.put_ints([k[0] for k, _ in base_items]),
        "base_v": io.put_ints([k[1] for k, _ in base_items]),
        "base_w": io.put_floats([w for _, w in base_items]),
    }


def unpack_contraction(state: Dict[str, object], io: ArrayReader) -> ContractionResult:
    result = ContractionResult()
    order = io.get_list(state["order"])
    result.order = order
    result.rank = {v: i for i, v in enumerate(order)}
    nbr_indptr = io.get_list(state["nbr_indptr"])
    nbr_data = io.get_list(state["nbr_data"])
    for i, v in enumerate(order):
        result.neighbors[v] = nbr_data[nbr_indptr[i] : nbr_indptr[i + 1]]
    neighbors = result.neighbors

    # The shortcut dicts are read by queries (CH-family pure paths) but not
    # by tree reconstruction; the supporter/base-edge records are read only
    # by ``apply_batch``.  All three materialise lazily from the payload.
    def load_shortcuts(target: dict) -> None:
        sc_data = io.get_list(state["sc_data"])
        for i, v in enumerate(order):
            target[v] = dict(
                zip(neighbors[v], sc_data[nbr_indptr[i] : nbr_indptr[i + 1]])
            )

    def load_supporters(target: dict) -> None:
        sup_indptr = io.get_list(state["sup_indptr"])
        sup_data = io.get_list(state["sup_data"])
        for i, (a, b) in enumerate(
            zip(io.get_list(state["sup_a"]), io.get_list(state["sup_b"]))
        ):
            target[(a, b)] = sup_data[sup_indptr[i] : sup_indptr[i + 1]]

    def load_base_edges(target: dict) -> None:
        for u, v, w in zip(
            io.get_list(state["base_u"]),
            io.get_list(state["base_v"]),
            io.get_list(state["base_w"]),
        ):
            target[(u, v)] = w

    result.shortcuts = LazyDict(load_shortcuts)
    result.supporters = LazyDict(load_supporters)
    result.base_edges = LazyDict(load_base_edges)
    return result


# ----------------------------------------------------------------------
# H2H label arrays (dis / pos over a tree decomposition)
# ----------------------------------------------------------------------
def pack_labels(labels, io: ArrayWriter) -> Dict[str, object]:
    """Serialize an ``H2HLabels`` instance as CSR distance/position arrays."""
    verts = list(labels.dis.keys())
    dis_indptr = [0]
    dis_data: List[float] = []
    pos_indptr = [0]
    pos_data: List[int] = []
    for v in verts:
        dis_data.extend(labels.dis[v])
        dis_indptr.append(len(dis_data))
        pos_data.extend(labels.pos[v])
        pos_indptr.append(len(pos_data))
    return {
        "verts": io.put_ints(verts),
        "dis_indptr": io.put_ints(dis_indptr),
        "dis_data": io.put_floats(dis_data),
        "pos_indptr": io.put_ints(pos_indptr),
        "pos_data": io.put_ints(pos_data),
    }


def unpack_labels(state: Dict[str, object], io: ArrayReader, tree: TreeDecomposition):
    from repro.labeling.h2h import H2HLabels

    labels = H2HLabels(tree)

    # With a reattached kernel store the dict-of-list labels are only read
    # by maintenance and the pure reference path; materialise them lazily.
    def load_dis(target: dict) -> None:
        verts = io.get_list(state["verts"])
        indptr = io.get_list(state["dis_indptr"])
        data = io.get_list(state["dis_data"])
        for i, v in enumerate(verts):
            target[v] = data[indptr[i] : indptr[i + 1]]

    def load_pos(target: dict) -> None:
        verts = io.get_list(state["verts"])
        indptr = io.get_list(state["pos_indptr"])
        data = io.get_list(state["pos_data"])
        for i, v in enumerate(verts):
            target[v] = data[indptr[i] : indptr[i + 1]]

    labels.dis = LazyDict(load_dis)
    labels.pos = LazyDict(load_pos)
    return labels


# ----------------------------------------------------------------------
# Planar partitioning
# ----------------------------------------------------------------------
def pack_partitioning(partitioning, io: ArrayWriter) -> Dict[str, object]:
    items = list(partitioning.vertex_partition.items())
    return {
        "verts": io.put_ints([v for v, _ in items]),
        "pids": io.put_ints([p for _, p in items]),
    }


def unpack_partitioning(state: Dict[str, object], io: ArrayReader, graph: Graph):
    from repro.partitioning.base import Partitioning

    assignment = dict(
        zip(io.get_list(state["verts"]), io.get_list(state["pids"]))
    )
    return Partitioning(graph, assignment)


# ----------------------------------------------------------------------
# Partition index family / overlay index
# ----------------------------------------------------------------------
def pack_family(family, io: ArrayWriter) -> Dict[str, object]:
    """Serialize a ``PartitionIndexFamily`` (graph copies included).

    The per-partition graphs are stored rather than re-derived because the
    post-boundary (extended) families carry boundary-pair edges that do not
    exist in the road network.
    """
    return {
        "with_labels": family.with_labels,
        "graphs": [pack_graph(g, io) for g in family.graphs],
        "contractions": [pack_contraction(c, io) for c in family.contractions],
        "labels": [
            pack_labels(lab, io) if lab is not None else None
            for lab in family.labels
        ],
    }


def unpack_family(state: Dict[str, object], io: ArrayReader, partitioning, order):
    from repro.psp.partition_family import PartitionIndexFamily

    graphs = [unpack_graph(g, io) for g in state["graphs"]]
    family = PartitionIndexFamily(
        partitioning, order, with_labels=state["with_labels"], graphs=graphs
    )
    for pid, packed in enumerate(state["contractions"]):
        contraction = unpack_contraction(packed, io)
        tree = TreeDecomposition.from_contraction(contraction, allow_forest=True)
        family.contractions[pid] = contraction
        family.trees[pid] = tree
        packed_labels = state["labels"][pid]
        if packed_labels is not None:
            family.labels[pid] = unpack_labels(packed_labels, io, tree)
    family._built = True
    return family


def pack_overlay(overlay, io: ArrayWriter) -> Dict[str, object]:
    """Serialize an ``OverlayIndex`` (its graph is maintained incrementally
    and can drift from a fresh ``build_overlay_graph``, so it is stored)."""
    return {
        "with_labels": overlay.with_labels,
        "graph": pack_graph(overlay.graph, io),
        "contraction": pack_contraction(overlay.contraction, io),
        "labels": pack_labels(overlay.labels, io) if overlay.labels is not None else None,
    }


def unpack_overlay(state: Dict[str, object], io: ArrayReader, partitioning, family, order):
    from repro.psp.overlay import OverlayIndex

    overlay = OverlayIndex(
        partitioning, family, order, with_labels=state["with_labels"]
    )
    overlay.graph = unpack_graph(state["graph"], io)
    overlay.contraction = unpack_contraction(state["contraction"], io)
    overlay.tree = TreeDecomposition.from_contraction(
        overlay.contraction, allow_forest=True
    )
    if state["labels"] is not None:
        overlay.labels = unpack_labels(state["labels"], io, overlay.tree)
    overlay._built = True
    return overlay


# ----------------------------------------------------------------------
# Weighted adjacency rows: Dict[int, [(int, float), ...]] as CSR arrays
# (shared by ShortcutStore / GraphSnapshot / TOAIN's core-label table)
# ----------------------------------------------------------------------
def pack_pairs_csr(rows, io: ArrayWriter) -> Dict[str, object]:
    """CSR-serialize ``(vertex, [(neighbor, weight), ...])`` rows in order."""
    verts: List[int] = []
    indptr = [0]
    nbrs: List[int] = []
    weights: List[float] = []
    for v, pairs in rows:
        verts.append(v)
        for u, w in pairs:
            nbrs.append(u)
            weights.append(w)
        indptr.append(len(nbrs))
    return {
        "verts": io.put_ints(verts),
        "indptr": io.put_ints(indptr),
        "nbrs": io.put_ints(nbrs),
        "weights": io.put_floats(weights),
    }


def unpack_pairs_csr(
    state: Dict[str, object], io: ArrayReader
) -> Dict[int, List[Tuple[int, float]]]:
    verts = io.get_list(state["verts"])
    indptr = io.get_list(state["indptr"])
    nbrs = io.get_list(state["nbrs"])
    weights = io.get_list(state["weights"])
    return {
        v: list(
            zip(nbrs[indptr[i] : indptr[i + 1]], weights[indptr[i] : indptr[i + 1]])
        )
        for i, v in enumerate(verts)
    }


# ----------------------------------------------------------------------
# Symmetric pair -> distance tables (boundary distance caches)
# ----------------------------------------------------------------------
def pack_pair_table(table: Dict[Tuple[int, int], float], io: ArrayWriter) -> Dict[str, object]:
    """Serialize a symmetric ``(a, b) -> d`` table (one direction stored)."""
    items = [(a, b, d) for (a, b), d in table.items() if a < b]
    return {
        "a": io.put_ints([a for a, _, _ in items]),
        "b": io.put_ints([b for _, b, _ in items]),
        "d": io.put_floats([d for _, _, d in items]),
    }


def unpack_pair_table(state: Dict[str, object], io: ArrayReader) -> Dict[Tuple[int, int], float]:
    table: Dict[Tuple[int, int], float] = {}
    for a, b, d in zip(
        io.get_list(state["a"]), io.get_list(state["b"]), io.get_list(state["d"])
    ):
        table[(a, b)] = d
        table[(b, a)] = d
    return table


# ----------------------------------------------------------------------
# Frozen kernel stores (see repro.kernels)
# ----------------------------------------------------------------------
def pack_kernel_store(store, io: ArrayWriter) -> Optional[Dict[str, object]]:
    """Serialize one frozen kernel store, or ``None`` when the backend can't.

    The numpy-backed stores (``LabelStore``, ``HubStore``) are only persisted
    into npz payloads; the pure-Python stores travel on either backend.
    """
    from repro.kernels.graph_snapshot import GraphSnapshot
    from repro.kernels.hub_store import HubStore
    from repro.kernels.label_store import LabelStore
    from repro.kernels.shortcut_store import ShortcutStore

    if isinstance(store, (LabelStore, HubStore)) and io.backend != "npz":
        return None
    if isinstance(
        store, (LabelStore, HubStore, ShortcutStore, GraphSnapshot)
    ):
        return store.to_state(io)
    return None


def unpack_kernel_store(state: Dict[str, object], io: ArrayReader, graph: Graph):
    """Reattach one frozen kernel store from its snapshot payload."""
    from repro.kernels.graph_snapshot import GraphSnapshot
    from repro.kernels.hub_store import HubStore
    from repro.kernels.label_store import LabelStore
    from repro.kernels.shortcut_store import ShortcutStore

    kinds = {
        "label_store": LabelStore,
        "hub_store": HubStore,
        "shortcut_store": ShortcutStore,
        "graph_snapshot": GraphSnapshot,
    }
    cls = kinds.get(state.get("kind"))
    if cls is None:
        return None
    if cls is GraphSnapshot:
        return cls.from_state(state, io, graph)
    return cls.from_state(state, io)
