"""repro.store — versioned index persistence and mmap-backed snapshot loading.

The subsystem turns every built :class:`~repro.base.DistanceIndex` into a
durable artifact: :func:`save_index` writes a schema-versioned snapshot
directory (JSON manifest + flat-array payload), :func:`load_index` restores a
ready-to-serve index — reconstructing or fingerprint-verifying the graph,
honoring :class:`~repro.registry.IndexSpec` overrides, and reattaching the
frozen kernel stores so the first query after a load already runs at full
speed.  See DESIGN.md §8 for the format and lifecycle.
"""

from repro.exceptions import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotGraphMismatchError,
    SnapshotUnsupportedError,
    SnapshotVersionError,
)
from repro.store.snapshot import (
    FORMAT,
    SCHEMA_VERSION,
    graph_fingerprint,
    load_index,
    load_snapshot_graph,
    read_manifest,
    save_index,
)

__all__ = [
    "FORMAT",
    "SCHEMA_VERSION",
    "save_index",
    "load_index",
    "load_snapshot_graph",
    "read_manifest",
    "graph_fingerprint",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotVersionError",
    "SnapshotGraphMismatchError",
    "SnapshotUnsupportedError",
]
