"""Schema-versioned on-disk snapshots of built distance indexes.

A snapshot is a directory::

    <path>/
      manifest.json   -- format tag, schema version, method + spec params,
                         graph fingerprint, payload backend (written last:
                         its presence marks a complete snapshot)
      state.json      -- the JSON state tree produced by ``to_state`` with
                         embedded array references
      payload.npz     -- flat arrays (numpy backend; mmap-read on load)
      payload.json    -- flat arrays (pure-Python fallback backend)

``save_index`` captures everything the query *and* maintenance paths read,
plus the frozen kernel stores behind the index's default query path, so a
loaded index serves its first query at full speed and accepts update batches
exactly like the original.  ``load_index`` reverses it: spec resolution
through the registry (keyword overrides welcome), graph reconstruction or
fingerprint verification, ``from_state``, then kernel-store reattachment.

Failure modes are typed (:mod:`repro.exceptions`): a truncated or missing
payload raises :class:`SnapshotFormatError`, a schema mismatch
:class:`SnapshotVersionError`, and a graph that does not match the snapshot's
fingerprint :class:`SnapshotGraphMismatchError` — never a silently wrong
distance.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
import time
from typing import Dict, Optional

from repro import obs
from repro.base import DistanceIndex
from repro.exceptions import (
    SnapshotFormatError,
    SnapshotGraphMismatchError,
    SnapshotUnsupportedError,
    SnapshotVersionError,
)
from repro.graph.graph import Graph
from repro.store.arrays import ArrayWriter, open_payload
from repro.store.codec import (
    pack_graph,
    pack_kernel_store,
    unpack_graph,
    unpack_kernel_store,
)

FORMAT = "repro-index-snapshot"
SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"
_STATE = "state.json"


def graph_fingerprint(graph: Graph) -> str:
    """Deterministic digest of a graph's exact topology and weights.

    Weights are hashed through ``repr`` (shortest round-trip form), so two
    graphs fingerprint equal iff they are bit-identical; vertex and edge
    enumeration is sorted, so adjacency iteration order does not matter.
    """
    digest = hashlib.sha256()
    digest.update(f"v{graph.num_vertices};e{graph.num_edges};".encode())
    for v in sorted(graph.vertices()):
        digest.update(f"n{v};".encode())
    for u, v, w in sorted(graph.edges()):
        digest.update(f"{u},{v},{w!r};".encode())
    return "sha256:" + digest.hexdigest()


def _spec_for(index: DistanceIndex):
    if index.spec is not None:
        return index.spec
    from repro.registry import spec_class

    try:
        cls = spec_class(index.name)
    except ValueError as exc:
        raise SnapshotUnsupportedError(
            f"index {type(index).__name__} (name={index.name!r}) is not a "
            "registered method and carries no spec; snapshots cover the "
            "registry's methods"
        ) from exc
    # Directly-constructed index (no registry spec attached): reconstruct the
    # recipe from the instance itself.  Every spec field mirrors a same-named
    # constructor attribute, so the manifest records the parameters the index
    # was actually built with, not the method defaults.
    params = {
        field.name: getattr(index, field.name)
        for field in dataclasses.fields(cls)
        if hasattr(index, field.name)
    }
    return cls(**params)


def save_index(
    index: DistanceIndex,
    path: str,
    backend: Optional[str] = None,
    extras: Optional[Dict[str, object]] = None,
    generation: Optional[int] = None,
    atomic: bool = False,
) -> str:
    """Persist a built index (and its graph) as a snapshot directory.

    Parameters
    ----------
    index:
        Any built, registry-created :class:`~repro.base.DistanceIndex`.
    path:
        Snapshot directory (created if missing, files overwritten).
    backend:
        Payload backend: ``"npz"`` (default with numpy) or ``"json"``
        (pure-Python fallback, always available).
    extras:
        Optional JSON-able metadata recorded in the manifest (e.g. the
        serving engine's epoch).
    generation:
        Monotonic publish counter recorded as the manifest's top-level
        ``generation`` field (defaults to 0).  The cluster layer names each
        republished snapshot with the next generation and reads this field
        back when respawning workers.
    atomic:
        Serialize into a staging directory next to ``path`` and rename it
        into place, so a concurrently-starting reader (e.g. a cluster worker
        warm-starting from ``path``) can never open a half-written snapshot:
        it sees the complete old snapshot, the complete new one, or a typed
        :class:`~repro.exceptions.SnapshotFormatError` — never torn bytes.
    """
    if not index.is_built:
        raise SnapshotUnsupportedError("only built indexes can be snapshotted")
    started = time.perf_counter()
    spec = _spec_for(index)
    writer = ArrayWriter(backend)

    state: Dict[str, object] = {
        "graph": pack_graph(index.graph, writer),
        "index": index.to_state(writer),
    }
    kernels: Dict[str, object] = {}
    if index.use_kernels:
        for key, freezer in index._kernel_exports().items():
            store = freezer()
            if store is None:
                continue
            packed = pack_kernel_store(store, writer)
            if packed is not None:
                kernels[key] = packed
    if kernels:
        state["kernels"] = kernels

    if atomic:
        parent = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(parent, exist_ok=True)
        staging = tempfile.mkdtemp(
            prefix="." + os.path.basename(path) + ".tmp-", dir=parent
        )
        try:
            _write_snapshot_files(index, staging, writer, spec, state, extras, generation)
            if os.path.isdir(path):
                # ``os.rename`` refuses a non-empty target; retire the old
                # snapshot first.  Both renames are atomic, so a reader only
                # ever finds a complete old or complete new directory at
                # ``path`` (or, in the instant between the two renames, no
                # directory — a typed SnapshotFormatError, never torn bytes).
                retired = staging + ".old"
                os.rename(path, retired)
                os.rename(staging, path)
                shutil.rmtree(retired, ignore_errors=True)
            else:
                os.rename(staging, path)
        except Exception:
            shutil.rmtree(staging, ignore_errors=True)
            raise
    else:
        _write_snapshot_files(index, path, writer, spec, state, extras, generation)
    if obs.is_enabled():
        _record_snapshot_op("save", index.name, time.perf_counter() - started, path)
    return path


def _write_snapshot_files(
    index: DistanceIndex,
    path: str,
    writer: ArrayWriter,
    spec,
    state: Dict[str, object],
    extras: Optional[Dict[str, object]],
    generation: Optional[int],
) -> None:
    """Write payload, state and manifest into ``path`` (manifest last)."""
    os.makedirs(path, exist_ok=True)
    # Invalidate any existing snapshot *before* touching its files: payload
    # array names are deterministic (a0000, ...), so a crash mid-overwrite
    # must never leave an old manifest pairing old refs with new bytes —
    # without a manifest the directory reads as SnapshotFormatError, typed.
    manifest_path = os.path.join(path, _MANIFEST)
    if os.path.exists(manifest_path):
        os.remove(manifest_path)
    payload_name = writer.write(path)
    with open(os.path.join(path, _STATE), "w") as handle:
        json.dump(state, handle)
    manifest = {
        "format": FORMAT,
        "schema_version": SCHEMA_VERSION,
        "method": spec.method,
        "spec": dataclasses.asdict(spec),
        "payload": payload_name,
        "payload_backend": writer.backend,
        "state_file": _STATE,
        "generation": int(generation) if generation is not None else 0,
        "graph": {
            "num_vertices": index.graph.num_vertices,
            "num_edges": index.graph.num_edges,
            "fingerprint": graph_fingerprint(index.graph),
        },
        "index": {
            "name": index.name,
            "build_seconds": index.build_seconds,
            "index_size": index.index_size(),
        },
        "created_unix": time.time(),
    }
    if extras:
        manifest["extras"] = extras
    # The manifest goes last: its presence marks a complete snapshot.
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=2)


def _snapshot_bytes(path: str) -> int:
    """Total on-disk size of a snapshot directory's files."""
    total = 0
    try:
        for entry in os.scandir(path):
            if entry.is_file():
                total += entry.stat().st_size
    except OSError:
        pass
    return total


def _record_snapshot_op(op: str, method: str, seconds: float, path: str) -> None:
    size = _snapshot_bytes(path)
    obs.record_span(f"store.{op}_index", seconds, method=method, bytes=size)
    registry = obs.registry()
    registry.counter(
        f"repro_snapshot_{op}s_total", f"Completed snapshot {op}s", method=method
    ).inc()
    registry.histogram(
        f"repro_snapshot_{op}_seconds", f"Wall time per snapshot {op}", method=method
    ).record(seconds)
    registry.gauge(
        "repro_snapshot_last_bytes", "On-disk size of the last snapshot touched", op=op
    ).set(size)


def read_manifest(path: str) -> Dict[str, object]:
    """Read and validate a snapshot's manifest (format + schema version)."""
    manifest_path = os.path.join(path, _MANIFEST)
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise SnapshotFormatError(
            f"{path!r} is not a snapshot directory (no readable manifest): {exc}"
        ) from exc
    except ValueError as exc:
        raise SnapshotFormatError(f"corrupt snapshot manifest {manifest_path!r}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT:
        raise SnapshotFormatError(
            f"{manifest_path!r} is not a {FORMAT} manifest"
        )
    if manifest.get("schema_version") != SCHEMA_VERSION:
        raise SnapshotVersionError(manifest.get("schema_version"), SCHEMA_VERSION)
    return manifest


def load_index(
    path: str,
    graph: Optional[Graph] = None,
    mmap: bool = True,
    **overrides: object,
) -> DistanceIndex:
    """Load a snapshot back into a ready-to-serve index.

    Parameters
    ----------
    path:
        Snapshot directory written by :func:`save_index`.
    graph:
        Optional live graph to build the index on.  It must fingerprint
        exactly as the snapshot's graph (else
        :class:`~repro.exceptions.SnapshotGraphMismatchError`); when omitted
        the graph is reconstructed from the snapshot.
    mmap:
        Attach mmap-backed views onto the npz payload where possible.
    overrides:
        Spec parameter overrides (validated against the method's
        :class:`~repro.registry.IndexSpec`), e.g. ``use_kernels=False``.
    """
    from repro.registry import get_spec

    started = time.perf_counter()
    manifest = read_manifest(path)
    try:
        method = manifest["method"]
        saved_params = dict(manifest["spec"])
        payload_name = manifest["payload"]
        payload_backend = manifest["payload_backend"]
        graph_meta = manifest["graph"]
    except KeyError as exc:
        raise SnapshotFormatError(f"snapshot manifest is missing field {exc}") from None
    saved_params.update(overrides)
    spec = get_spec(method, **saved_params)

    reader = open_payload(path, payload_name, payload_backend, mmap=mmap)
    state_path = os.path.join(path, manifest.get("state_file", _STATE))
    try:
        with open(state_path) as handle:
            state = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotFormatError(f"unreadable snapshot state {state_path!r}: {exc}") from exc

    if graph is not None:
        found = graph_fingerprint(graph)
        if found != graph_meta.get("fingerprint"):
            raise SnapshotGraphMismatchError(
                f"supplied graph (fingerprint {found}) does not match the "
                f"snapshot's graph ({graph_meta.get('fingerprint')}); "
                "the snapshot's labels would answer wrong distances"
            )
    else:
        try:
            graph = unpack_graph(state["graph"], reader)
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise SnapshotFormatError(f"corrupt snapshot graph payload: {exc}") from exc

    index = spec.create(graph)
    index.use_kernels = spec.use_kernels
    index.spec = spec
    try:
        index.from_state(state["index"], reader)
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"corrupt snapshot index payload: {exc}") from exc
    index._built = True
    index.build_seconds = manifest.get("index", {}).get("build_seconds", 0.0)
    index.invalidate_kernels()
    if index.use_kernels:
        try:
            for key, packed in state.get("kernels", {}).items():
                store = unpack_kernel_store(packed, reader, index.graph)
                if store is not None:
                    index._attach_kernel(key, store)
        except (AttributeError, KeyError, IndexError, TypeError, ValueError) as exc:
            raise SnapshotFormatError(
                f"corrupt snapshot kernel payload: {exc}"
            ) from exc
    if obs.is_enabled():
        _record_snapshot_op("load", index.name, time.perf_counter() - started, path)
    return index


def load_snapshot_graph(path: str, mmap: bool = True) -> Graph:
    """Reconstruct only the graph of a snapshot (no index state).

    The cluster dispatcher uses this to keep a lightweight graph mirror for
    vertex validation and per-epoch correctness oracles without paying a full
    ``load_index`` in the dispatcher process.
    """
    manifest = read_manifest(path)
    try:
        payload_name = manifest["payload"]
        payload_backend = manifest["payload_backend"]
    except KeyError as exc:
        raise SnapshotFormatError(f"snapshot manifest is missing field {exc}") from None
    reader = open_payload(path, payload_name, payload_backend, mmap=mmap)
    state_path = os.path.join(path, manifest.get("state_file", _STATE))
    try:
        with open(state_path) as handle:
            state = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotFormatError(f"unreadable snapshot state {state_path!r}: {exc}") from exc
    try:
        return unpack_graph(state["graph"], reader)
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"corrupt snapshot graph payload: {exc}") from exc
