"""Flat-array payloads of an index snapshot: ``.npz`` with mmap, JSON fallback.

A snapshot's structural metadata lives in a small JSON tree (see
``repro.store.snapshot``); every bulk array — CSR label data, contraction
orders, supporter lists, edge arrays — is pulled out of that tree into a
single *payload* file and referenced by name.  Two backends implement the
payload:

* ``npz`` — an ``np.load``-compatible uncompressed archive written by
  :func:`_write_aligned_npz`, which pads each member to a 64-byte data
  offset (plain ``np.savez`` leaves member alignment to chance).  Because
  members are stored with ``ZIP_STORED``, each is a verbatim ``.npy`` byte
  range inside the archive; :class:`NpzPayloadReader` locates those ranges
  and attaches :class:`numpy.memmap` views directly onto them, so loading a
  snapshot maps the flat arrays instead of copying them through the zip
  layer.  Any structural surprise (compressed member, malformed header)
  degrades to an eager in-memory read of that member.
* ``json`` — a plain JSON object of lists, used when numpy is unavailable
  (the pure-Python reference paths).  Python's ``json`` round-trips floats
  through ``repr``, so values survive bit-exactly, including ``inf``.

Both backends raise :class:`~repro.exceptions.SnapshotFormatError` for
missing or truncated payloads so callers never silently read garbage.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zipfile
from typing import Dict, List, Optional, Sequence, Union

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro.exceptions import SnapshotFormatError

#: An array reference as it appears inside the snapshot's JSON state tree.
ArrayRef = Dict[str, str]

_REF_KEY = "__array__"

#: Alignment of every ``.npy`` member's data inside the ``.npz`` archive.
#: ``np.savez`` places members at arbitrary offsets, so whether a member's
#: data lands 8-byte aligned is luck of cumulative member sizes; a memmap
#: view at a misaligned offset forces :class:`repro.kernels.arena.Arena`
#: (and the native kernels, which require aligned 8-byte buffers) to copy
#: the payload, silently losing cross-process sharing.  64 matches numpy's
#: own in-file npy data alignment (``ARRAY_ALIGN``) and cache-line size.
_MEMBER_ALIGN = 64


def _write_aligned_npz(handle, arrays: Dict[str, object]) -> None:
    """Write ``arrays`` as an uncompressed ``.npz`` with aligned members.

    Output is a standard ``np.load``-compatible archive; the only difference
    from ``np.savez`` is a padding *extra field* in each local file header
    sized so the member starts on a :data:`_MEMBER_ALIGN` boundary.  The npy
    format itself pads its header so array data begins at a 64-byte multiple
    within the member, so member alignment gives data alignment.
    """
    with zipfile.ZipFile(handle, "w", zipfile.ZIP_STORED) as archive:
        for name, array in arrays.items():
            payload = io.BytesIO()
            np.lib.format.write_array(
                payload, np.asarray(array), allow_pickle=False
            )
            filename = name + ".npy"
            info = zipfile.ZipInfo(filename, date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_STORED
            # Member data starts after the 30-byte local header, the
            # filename and the extra field; pad the extra field (a valid
            # zip record: 2-byte id, 2-byte length, payload) to align it.
            base = archive.fp.tell() + 30 + len(filename.encode())
            pad = (-base) % _MEMBER_ALIGN
            if 0 < pad < 4:
                pad += _MEMBER_ALIGN
            if pad:
                info.extra = struct.pack("<HH", 0x7061, pad - 4) + b"\x00" * (pad - 4)
            archive.writestr(info, payload.getvalue())


def is_ref(value: object) -> bool:
    """True when ``value`` is an array reference produced by a writer."""
    return isinstance(value, dict) and _REF_KEY in value


class ArrayWriter:
    """Collects named arrays during ``to_state`` and writes one payload file."""

    def __init__(self, backend: Optional[str] = None):
        if backend is None:
            backend = "npz" if np is not None else "json"
        if backend == "npz" and np is None:
            raise SnapshotFormatError("the 'npz' payload backend requires numpy")
        if backend not in ("npz", "json"):
            raise SnapshotFormatError(f"unknown payload backend {backend!r}")
        self.backend = backend
        self._arrays: Dict[str, object] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def _add(self, values: Sequence, dtype: str) -> ArrayRef:
        name = f"a{self._counter:04d}"
        self._counter += 1
        if self.backend == "npz":
            self._arrays[name] = np.asarray(values, dtype=dtype)
        else:
            self._arrays[name] = [
                int(v) if dtype == "int64" else float(v) for v in values
            ]
        return {_REF_KEY: name}

    def put_ints(self, values: Sequence[int]) -> ArrayRef:
        """Store an int64 array; returns the reference to embed in the state tree."""
        return self._add(values, "int64")

    def put_floats(self, values: Sequence[float]) -> ArrayRef:
        """Store a float64 array; returns the reference to embed in the state tree."""
        return self._add(values, "float64")

    def put_array(self, array) -> ArrayRef:
        """Store an existing numpy array verbatim (npz backend only)."""
        if self.backend != "npz":
            raise SnapshotFormatError("raw array payloads require the npz backend")
        name = f"a{self._counter:04d}"
        self._counter += 1
        self._arrays[name] = np.ascontiguousarray(array)
        return {_REF_KEY: name}

    # ------------------------------------------------------------------
    @property
    def filename(self) -> str:
        return "payload.npz" if self.backend == "npz" else "payload.json"

    def write(self, directory: str) -> str:
        """Write the payload file into ``directory``; returns its filename.

        The payload is written to a temp file and ``os.replace``d into
        place: overwriting in place would truncate a file that live indexes
        may still hold mmap views into (re-saving a loaded index over its
        own snapshot), which turns their next page fault into a SIGBUS.
        The rename drops the old name while the old inode survives for
        existing mappings.
        """
        path = os.path.join(directory, self.filename)
        tmp_path = path + ".tmp"
        if self.backend == "npz":
            with open(tmp_path, "wb") as handle:
                _write_aligned_npz(handle, self._arrays)
        else:
            with open(tmp_path, "w") as handle:
                json.dump(self._arrays, handle)
        os.replace(tmp_path, path)
        return self.filename


class ArrayReader:
    """Common interface of the two payload readers."""

    def _fetch(self, name: str):
        raise NotImplementedError

    def _resolve(self, ref: ArrayRef):
        if not is_ref(ref):
            raise SnapshotFormatError(f"expected an array reference, got {ref!r}")
        return self._fetch(ref[_REF_KEY])

    def get_list(self, ref: ArrayRef) -> List:
        """The referenced array as a plain Python list (ints / floats)."""
        values = self._resolve(ref)
        return values.tolist() if hasattr(values, "tolist") else list(values)

    def get_array(self, ref: ArrayRef):
        """The referenced array in its native form (mmap/ndarray, or a list)."""
        return self._resolve(ref)


class JsonPayloadReader(ArrayReader):
    """Reader for the pure-Python JSON payload."""

    def __init__(self, path: str):
        try:
            with open(path) as handle:
                self._arrays = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SnapshotFormatError(f"unreadable JSON payload {path!r}: {exc}") from exc
        if not isinstance(self._arrays, dict):
            raise SnapshotFormatError(f"JSON payload {path!r} is not an object")

    def _fetch(self, name: str):
        try:
            return self._arrays[name]
        except KeyError:
            raise SnapshotFormatError(f"payload is missing array {name!r}") from None


class NpzPayloadReader(ArrayReader):
    """Reader for the ``.npz`` payload with mmap-backed member access.

    ``numpy.savez`` members are uncompressed ``.npy`` files at known offsets
    inside the zip; for each member the local file header and the npy header
    are parsed once, and :func:`numpy.memmap` attaches a read-only view at
    the data offset.  The zip central directory lives at the end of the
    file, so truncation is detected up front by :class:`zipfile.ZipFile`.
    """

    def __init__(self, path: str, mmap: bool = True):
        if np is None:
            raise SnapshotFormatError("reading an npz payload requires numpy")
        self._path = path
        self._mmap = mmap
        self._members: Dict[str, zipfile.ZipInfo] = {}
        self._cache: Dict[str, object] = {}
        self._eager = None
        try:
            # ZipFile validates the end-of-archive central directory, so a
            # truncated payload fails here instead of yielding short arrays.
            with zipfile.ZipFile(path) as archive:
                for info in archive.infolist():
                    name = info.filename
                    if name.endswith(".npy"):
                        name = name[: -len(".npy")]
                    self._members[name] = info
        except (OSError, zipfile.BadZipFile) as exc:
            raise SnapshotFormatError(f"unreadable npz payload {path!r}: {exc}") from exc
        self._handle = open(path, "rb") if mmap else None

    # ------------------------------------------------------------------
    def _mmap_member(self, info: zipfile.ZipInfo):
        """A read-only memmap of one uncompressed ``.npy`` member, or ``None``."""
        if self._handle is None or info.compress_type != zipfile.ZIP_STORED:
            return None
        handle = self._handle
        # Local file header: 30 fixed bytes, then filename + extra field
        # (whose lengths can differ from the central directory's copy).
        handle.seek(info.header_offset)
        header = handle.read(30)
        if len(header) != 30 or header[:4] != b"PK\x03\x04":
            return None
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        handle.seek(info.header_offset + 30 + name_len + extra_len)
        try:
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
        except (ValueError, OSError):
            return None
        if fortran or dtype.hasobject:
            return None
        offset = handle.tell()
        if any(dim == 0 for dim in shape):
            return np.empty(shape, dtype=dtype)
        return np.memmap(self._path, dtype=dtype, mode="r", shape=shape, offset=offset)

    def _fetch(self, name: str):
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        info = self._members.get(name)
        if info is None:
            raise SnapshotFormatError(f"payload is missing array {name!r}")
        array = self._mmap_member(info)
        if array is None:
            # Fallback: one eager np.load shared across members.
            if self._eager is None:
                try:
                    self._eager = np.load(self._path, allow_pickle=False)
                except (OSError, ValueError, zipfile.BadZipFile) as exc:
                    raise SnapshotFormatError(
                        f"unreadable npz payload {self._path!r}: {exc}"
                    ) from exc
            try:
                array = self._eager[name]
            except KeyError:
                raise SnapshotFormatError(f"payload is missing array {name!r}") from None
        self._cache[name] = array
        return array


def open_payload(
    directory: str, filename: str, backend: str, mmap: bool = True
) -> Union[JsonPayloadReader, NpzPayloadReader]:
    """Open the payload file named by a snapshot manifest."""
    path = os.path.join(directory, filename)
    if not os.path.exists(path):
        raise SnapshotFormatError(f"snapshot payload {path!r} does not exist")
    if backend == "json":
        return JsonPayloadReader(path)
    if backend == "npz":
        return NpzPayloadReader(path, mmap=mmap)
    raise SnapshotFormatError(f"unknown payload backend {backend!r}")
