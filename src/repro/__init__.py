"""repro — reproduction of "High Throughput Shortest Distance Query Processing
on Large Dynamic Road Networks" (ICDE 2025).

The package provides, in pure Python:

* a road-network graph substrate with synthetic dataset generators
  (:mod:`repro.graph`),
* classic shortest-path algorithms and dynamic indexes — Dijkstra/BiDijkstra,
  CH/DCH, H2H/DH2H, MHL (:mod:`repro.algorithms`, :mod:`repro.hierarchy`,
  :mod:`repro.labeling`),
* graph partitioning including the paper's TD-partitioning
  (:mod:`repro.partitioning`),
* the Partitioned Shortest Path framework with the no-/post-boundary
  strategies and the N-CH-P / P-TD-P baselines (:mod:`repro.psp`),
* the paper's contributions: the cross-boundary strategy, PMHL and PostMHL
  (:mod:`repro.core`),
* a throughput-evaluation substrate with the paper's Lemma-1 bound, a queue
  simulator and a simulated-parallelism cost model (:mod:`repro.throughput`),
* a live concurrent query-serving engine — epoch-consistent snapshots,
  stage-aware routing, distance caching, QoS admission control and a
  single-epoch batch endpoint (:mod:`repro.serving`),
* a typed method registry: per-method :class:`~repro.registry.IndexSpec`
  dataclasses and the :func:`~repro.registry.create_index` factory
  (:mod:`repro.registry`),
* versioned index persistence: schema-versioned snapshots with mmap-backed
  payloads, :func:`~repro.store.save_index` / :func:`~repro.store.load_index`
  and warm-start serving (:mod:`repro.store`),
* experiment drivers regenerating every table and figure of the evaluation
  (:mod:`repro.experiments`).

Quickstart::

    from repro import create_index, grid_road_network, generate_update_batch

    graph = grid_road_network(20, 20, seed=7)
    index = create_index("PostMHL", graph, bandwidth=12, expected_partitions=8)
    index.build()
    print(index.query(0, 399))

    batch = generate_update_batch(graph, volume=50, seed=1)
    index.apply_batch(batch)
    print(index.query_many([(0, 399), (0, 200), (37, 311)]))
"""

from repro.base import DistanceIndex, StageTiming, UpdateReport
from repro.baselines.bidijkstra_index import BiDijkstraIndex
from repro.baselines.toain import TOAINIndex
from repro.core.pmhl import PMHLIndex
from repro.core.postmhl import PostMHLIndex
from repro.core.stages import PMHLQueryStage, PostMHLQueryStage
from repro.exceptions import (
    EngineStoppedError,
    GraphError,
    IndexNotBuiltError,
    PartitioningError,
    QueryRejectedError,
    ReproError,
    ServingError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotGraphMismatchError,
    SnapshotUnsupportedError,
    SnapshotVersionError,
    WorkloadError,
)
from repro.graph.generators import (
    DATASET_SPECS,
    dataset_names,
    grid_road_network,
    highway_network,
    load_dataset,
    random_connected_graph,
)
from repro.graph.graph import Graph
from repro.graph.updates import (
    EdgeUpdate,
    UpdateBatch,
    generate_update_batch,
    generate_update_stream,
)
from repro.hierarchy.ch import CHIndex, DCHIndex
from repro.labeling.h2h import DH2HIndex, H2HIndex
from repro.labeling.mhl import MHLIndex
from repro.partitioning.natural_cut import natural_cut_partition
from repro.partitioning.td_partition import td_partition
from repro.psp.no_boundary import NCHPIndex, NoBoundaryPSPIndex
from repro.psp.post_boundary import PostBoundaryPSPIndex, PTDPIndex
from repro.registry import (
    PAPER_METHODS,
    IndexSpec,
    create_index,
    get_spec,
    registered_methods,
    spec_from_config,
)
from repro.registry import load_index, save_index
from repro.serving.admission import AdmissionController
from repro.serving.cache import EpochDistanceCache
from repro.serving.driver import MixedWorkloadReport, run_mixed_workload
from repro.serving.engine import QueryResult, ServingEngine
from repro.serving.metrics import ServingMetrics
from repro.serving.router import StageRouter
from repro.throughput.evaluator import ThroughputEvaluator, ThroughputResult
from repro.throughput.workload import sample_query_pairs

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Base interfaces
    "DistanceIndex",
    "StageTiming",
    "UpdateReport",
    # Exceptions
    "ReproError",
    "GraphError",
    "IndexNotBuiltError",
    "PartitioningError",
    "WorkloadError",
    "ServingError",
    "QueryRejectedError",
    "EngineStoppedError",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotVersionError",
    "SnapshotGraphMismatchError",
    "SnapshotUnsupportedError",
    # Graph substrate
    "Graph",
    "grid_road_network",
    "highway_network",
    "random_connected_graph",
    "load_dataset",
    "dataset_names",
    "DATASET_SPECS",
    "EdgeUpdate",
    "UpdateBatch",
    "generate_update_batch",
    "generate_update_stream",
    # Indexes
    "CHIndex",
    "DCHIndex",
    "H2HIndex",
    "DH2HIndex",
    "MHLIndex",
    "BiDijkstraIndex",
    "TOAINIndex",
    "NoBoundaryPSPIndex",
    "NCHPIndex",
    "PostBoundaryPSPIndex",
    "PTDPIndex",
    "PMHLIndex",
    "PostMHLIndex",
    "PMHLQueryStage",
    "PostMHLQueryStage",
    # Typed registry / factory
    "IndexSpec",
    "create_index",
    "get_spec",
    "spec_from_config",
    "registered_methods",
    "PAPER_METHODS",
    # Persistence
    "save_index",
    "load_index",
    # Partitioning
    "natural_cut_partition",
    "td_partition",
    # Throughput
    "ThroughputEvaluator",
    "ThroughputResult",
    "sample_query_pairs",
    # Serving
    "ServingEngine",
    "QueryResult",
    "StageRouter",
    "EpochDistanceCache",
    "AdmissionController",
    "ServingMetrics",
    "MixedWorkloadReport",
    "run_mixed_workload",
]
