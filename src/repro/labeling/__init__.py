"""Hop-based labeling indexes: H2H, DH2H and the multi-stage MHL."""

from repro.labeling.h2h import DH2HIndex, H2HIndex, H2HLabels
from repro.labeling.mhl import MHLIndex, MHLQueryStage

__all__ = ["H2HLabels", "H2HIndex", "DH2HIndex", "MHLIndex", "MHLQueryStage"]
