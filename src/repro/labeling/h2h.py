"""Hierarchical 2-Hop Labeling (H2H) and its dynamic version (DH2H).

H2H [Ouyang et al., SIGMOD 2018] builds a tree decomposition via MDE and
stores, for every vertex ``v``:

* ``X(v).A`` — the ancestor chain from the root down to ``v`` (the index of an
  ancestor inside the chain equals its tree depth),
* ``X(v).dis`` — distances from ``v`` to every vertex of ``X(v).A`` (the last
  entry, the distance to itself, is 0), and
* ``X(v).pos`` — positions inside ``X(v).A`` of the vertices of
  ``X(v) = {v} ∪ X(v).N``.

A query ``q(s, t)`` finds the LCA ``X`` of ``X(s)`` and ``X(t)`` and returns
``min_{i ∈ X.pos} X(s).dis[i] + X(t).dis[i]``.

DH2H [Zhang et al., ICDE 2021] maintains the index in two phases: a bottom-up
*shortcut update* (shared with DCH) followed by a top-down *label update* that
only recomputes distance arrays inside the subtrees rooted at the shallowest
affected tree nodes, pruning untouched branches.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set

from dataclasses import dataclass

from repro import obs
from repro.base import DistanceIndex, StageTiming, Timer, UpdateReport
from repro.exceptions import IndexNotBuiltError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.kernels.label_store import LabelStore
from repro.registry import IndexSpec, register_spec
from repro.treedec.mde import ContractionResult, contract_graph, update_shortcuts_bottom_up
from repro.treedec.tree import TreeDecomposition

INF = math.inf


class H2HLabels:
    """Distance and position arrays of an H2H-style index over a tree decomposition."""

    def __init__(self, tree: TreeDecomposition):
        self.tree = tree
        #: ``dis[v][j]`` = distance from ``v`` to its ancestor at depth ``j``.
        self.dis: Dict[int, List[float]] = {}
        #: ``pos[v]`` = ancestor-chain positions of ``{v} ∪ X(v).N``.
        self.pos: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, vertices: Optional[Iterable[int]] = None) -> None:
        """Build the distance/position arrays top-down.

        ``vertices`` optionally restricts construction to a subset that is
        closed under taking ancestors (used by PostMHL to build the overlay
        index first and the partition indexes later).
        """
        allowed = set(vertices) if vertices is not None else None
        for v in self.tree.top_down_order():
            if allowed is not None and v not in allowed:
                continue
            self.recompute_vertex(v)

    def recompute_vertex(self, v: int) -> List[float]:
        """(Re)compute the distance array of ``v`` from its neighbours' arrays.

        Returns the new distance array (also stored in ``self.dis``).
        """
        tree = self.tree
        anc = tree.ancestors[v]
        depth = tree.depth
        m = len(anc)
        neighbors = tree.neighbors(v)
        shortcuts = tree.contraction.shortcuts[v]

        new = [INF] * m
        new[m - 1] = 0.0
        for j in range(m - 1):
            ancestor = anc[j]
            best = INF
            for x in neighbors:
                px = depth[x]
                if px > j:
                    d = self.dis[x][j]
                else:
                    d = self.dis[ancestor][px]
                candidate = shortcuts[x] + d
                if candidate < best:
                    best = candidate
            new[j] = best
        self.dis[v] = new
        self.pos[v] = [depth[x] for x in neighbors] + [m - 1]
        return new

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> float:
        """2-hop query through the LCA separator.

        Returns ``inf`` when the vertices lie in different components of the
        (forest) decomposition — i.e. they are unreachable in the indexed graph.
        """
        if source == target:
            return 0.0
        if not self.tree.same_component(source, target):
            return INF
        lca = self.tree.lca(source, target)
        dis_s = self.dis[source]
        dis_t = self.dis[target]
        best = INF
        for i in self.pos[lca]:
            candidate = dis_s[i] + dis_t[i]
            if candidate < best:
                best = candidate
        return best

    def query_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Batched 2-hop queries sharing one fetch of the source's label.

        The source's distance array is loaded once and intersected against
        every target's array; per-pair arithmetic is exactly that of
        :meth:`query`, so the results are bit-identical to the scalar path.
        """
        tree = self.tree
        dis = self.dis
        pos = self.pos
        dis_s = dis[source]
        results: List[float] = []
        for target in targets:
            if source == target:
                results.append(0.0)
                continue
            if not tree.same_component(source, target):
                results.append(INF)
                continue
            lca = tree.lca(source, target)
            dis_t = dis[target]
            best = INF
            for i in pos[lca]:
                candidate = dis_s[i] + dis_t[i]
                if candidate < best:
                    best = candidate
            results.append(best)
        return results

    def distance_to_ancestor(self, v: int, ancestor: int) -> float:
        """Distance from ``v`` to one of its ancestors (O(1) label lookup)."""
        return self.dis[v][self.tree.depth[ancestor]]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def update_top_down(
        self, affected: Iterable[int], allowed: Optional[Set[int]] = None
    ) -> Set[int]:
        """Top-down label update (the DH2H label phase).

        ``affected`` is the set of vertices whose shortcut arrays changed.  The
        distance arrays of those vertices and of any descendant whose ancestor
        labels changed are recomputed; the set of vertices whose distance array
        actually changed is returned (the "affected vertex set" ``V_A``
        consumed by later PMHL/PostMHL stages).

        ``allowed`` optionally restricts the update to a vertex subset closed
        under taking ancestors (e.g. the overlay vertices of PostMHL); children
        outside the subset are not descended into.
        """
        affected_set = {v for v in affected if v in self.dis}
        if allowed is not None:
            affected_set &= allowed
        changed: Set[int] = set()
        if not affected_set:
            return changed
        for root in self.tree.branch_roots(sorted(affected_set)):
            stack = [(root, False)]
            while stack:
                v, ancestor_changed = stack.pop()
                vertex_changed = False
                if ancestor_changed or v in affected_set:
                    old = self.dis.get(v)
                    new = self.recompute_vertex(v)
                    if old != new:
                        vertex_changed = True
                        changed.add(v)
                flag = ancestor_changed or vertex_changed
                for child in self.tree.children[v]:
                    if child not in self.dis:
                        continue
                    if allowed is not None and child not in allowed:
                        continue
                    stack.append((child, flag))
        return changed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def label_entry_count(self) -> int:
        """Total number of stored distance-label entries."""
        return sum(len(entries) for entries in self.dis.values())


class H2HIndex(DistanceIndex):
    """Static H2H index (tree decomposition + distance/position arrays)."""

    name = "H2H"

    def __init__(
        self,
        graph: Graph,
        order: Optional[Sequence[int]] = None,
        tiers: Optional[Dict[int, int]] = None,
    ):
        super().__init__(graph)
        self._order = list(order) if order is not None else None
        self._tiers = dict(tiers) if tiers is not None else None
        self.contraction: Optional[ContractionResult] = None
        self.tree: Optional[TreeDecomposition] = None
        self.labels: Optional[H2HLabels] = None

    def _build(self) -> None:
        prefix = self.name.lower() + ".build."
        with obs.span(prefix + "contraction"):
            self.contraction = contract_graph(
                self.graph, order=self._order, tiers=self._tiers
            )
        with obs.span(prefix + "tree_decomposition"):
            self.tree = TreeDecomposition.from_contraction(self.contraction)
        with obs.span(prefix + "labels"):
            self.labels = H2HLabels(self.tree)
            self.labels.build()

    def _require_built(self) -> H2HLabels:
        if self.labels is None:
            raise IndexNotBuiltError(f"{self.name} index has not been built")
        return self.labels

    def _label_store(self):
        """The frozen :class:`LabelStore` of this epoch (``None`` = pure path)."""
        return self._kernel("labels", lambda: LabelStore.freeze(self.labels))

    def query(self, source: int, target: int) -> float:
        labels = self._require_built()
        store = self._label_store()
        if store is not None and store.query_fn is not None:
            # Native scalar kernel; raises VertexNotFoundError for unknown ids.
            return store.query_fn(source, target)
        if source not in self.contraction.rank:
            raise VertexNotFoundError(source)
        if target not in self.contraction.rank:
            raise VertexNotFoundError(target)
        return labels.query(source, target)

    def query_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Amortised batch query: the source label is fetched once."""
        labels = self._require_built()
        store = self._label_store()
        if store is not None:
            return store.one_to_many(source, list(targets))
        rank = self.contraction.rank
        if source not in rank:
            raise VertexNotFoundError(source)
        targets = list(targets)
        for target in targets:
            if target not in rank:
                raise VertexNotFoundError(target)
        return labels.query_one_to_many(source, targets)

    def query_many(self, pairs) -> List[float]:
        """Vectorized batch query over the frozen label store.

        Arbitrary pair batches go straight through the store's pair kernel
        (no source grouping needed); the pure-Python reference keeps the
        source-grouped default of :class:`~repro.base.DistanceIndex`.
        """
        self._require_built()
        store = self._label_store()
        if store is not None:
            return store.query_pairs(list(pairs))
        return super().query_many(pairs)

    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        raise NotImplementedError("H2HIndex is static; use DH2HIndex for dynamic maintenance")

    def index_size(self) -> int:
        labels = self._require_built()
        return labels.label_entry_count() + self.contraction.shortcut_count()

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> Dict[str, object]:
        """Contraction (shortcuts + supporters) and the label CSR arrays.

        The tree decomposition and its LCA oracle are *not* stored: they are
        derived from the contraction in O(n·h) on load, which is negligible
        next to the contraction and label-construction work being skipped.
        """
        from repro.store.codec import pack_contraction, pack_labels

        labels = self._require_built()
        return {
            "contraction": pack_contraction(self.contraction, io),
            "labels": pack_labels(labels, io),
        }

    def from_state(self, state: Dict[str, object], io) -> None:
        from repro.store.codec import unpack_contraction, unpack_labels

        self.contraction = unpack_contraction(state["contraction"], io)
        self.tree = TreeDecomposition.from_contraction(self.contraction)
        self.labels = unpack_labels(state["labels"], io, self.tree)

    def _kernel_exports(self):
        return {"labels": self._label_store}

    @property
    def tree_height(self) -> int:
        self._require_built()
        return self.tree.height

    @property
    def treewidth(self) -> int:
        self._require_built()
        return self.tree.treewidth


class DH2HIndex(H2HIndex):
    """Dynamic H2H (the paper's DH2H baseline).

    ``apply_batch`` reports three stages:

    1. ``edge_update`` — on-spot refresh of the graph weights,
    2. ``shortcut_update`` — bottom-up shortcut maintenance, and
    3. ``label_update`` — top-down distance-array maintenance.

    Queries on the H2H labels are only correct again after stage 3, which is
    exactly why the paper's Figure 1 shows DH2H with a long index-unavailable
    period.
    """

    name = "DH2H"

    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        labels = self._require_built()
        report = UpdateReport()
        # Before any structure mutates: no query may read a pre-update store.
        self.invalidate_kernels()

        with Timer() as timer:
            batch.apply(self.graph)
        self._emit_stage(report, StageTiming("edge_update", timer.seconds))

        with Timer() as timer:
            changed_shortcuts = update_shortcuts_bottom_up(
                self.contraction, self.graph, [update.key() for update in batch]
            )
        self._emit_stage(report, StageTiming("shortcut_update", timer.seconds))

        with Timer() as timer:
            changed_labels = labels.update_top_down(changed_shortcuts.keys())
        self._emit_stage(report, StageTiming("label_update", timer.seconds))

        self.last_changed_shortcuts = changed_shortcuts
        self.last_changed_labels = changed_labels
        return report


@register_spec
@dataclass(frozen=True)
class DH2HSpec(IndexSpec):
    """Construction spec for the dynamic H2H baseline (no knobs)."""

    method = "DH2H"

    def create(self, graph: Graph) -> DH2HIndex:
        return DH2HIndex(graph)
