"""Multi-stage Hierarchical 2-hop Labeling (MHL).

Section V-A of the paper observes (Lemma 4) that DH2H's vertex contraction
produces exactly the shortcuts DCH needs when both use the same MDE order, so
the CH index can be embedded into the H2H tree by storing a shortcut array
``X(v).sc`` per node.  MHL is that extended H2H: during maintenance, the
moment the shortcut phase finishes a CH-style query can already be answered,
and while even the shortcuts are stale an index-free BiDijkstra is used.  This
"use the fastest currently-correct index" idea is the *multi-stage scheme*.

``MHLIndex`` therefore exposes three query paths of increasing speed:

* stage 1 — BiDijkstra on the live graph (always correct),
* stage 2 — CH query on the shortcut arrays (correct after shortcut update),
* stage 3 — H2H query on the distance labels (correct after label update),

plus an :meth:`apply_batch` whose stage report lets the throughput simulator
know when each query stage becomes available.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List

from repro.algorithms.dijkstra import bidijkstra
from repro.base import StageTiming, Timer, UpdateReport
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.hierarchy.ch import ch_bidirectional_query
from repro.kernels.shortcut_store import ShortcutStore
from repro.labeling.h2h import DH2HIndex
from repro.registry import IndexSpec, register_spec
from repro.treedec.mde import update_shortcuts_bottom_up


class MHLQueryStage(IntEnum):
    """Query stages of the non-partitioned MHL index, in increasing efficiency."""

    BIDIJKSTRA = 1
    CH = 2
    H2H = 3


class MHLIndex(DH2HIndex):
    """Multi-stage Hub Labeling: DH2H extended with CH-stage query processing."""

    name = "MHL"

    #: Stage ordering used by the throughput machinery.
    query_stage_order = (MHLQueryStage.BIDIJKSTRA, MHLQueryStage.CH, MHLQueryStage.H2H)

    # ------------------------------------------------------------------
    # Stage-specific query processing
    # ------------------------------------------------------------------
    def query_bidijkstra(self, source: int, target: int) -> float:
        """Stage-1 query: index-free bidirectional Dijkstra on the live graph."""
        snapshot = self._graph_snapshot()
        if snapshot is not None:
            return snapshot.bidijkstra(source, target)
        return bidijkstra(self.graph, source, target)

    def _ch_store(self):
        """Frozen stage-2 shortcut adjacency of this epoch (``None`` = pure path)."""
        return self._kernel(
            "ch",
            lambda: ShortcutStore.freeze(
                lambda v: self.contraction.shortcuts[v], self.contraction.order
            ),
        )

    def query_ch(self, source: int, target: int) -> float:
        """Stage-2 query: CH search over the shortcut arrays ``X(v).sc``."""
        self._require_built()
        store = self._ch_store()
        if store is not None:
            return store.query(source, target)
        return ch_bidirectional_query(
            source, target, lambda v: self.contraction.shortcuts[v]
        )

    def query_h2h(self, source: int, target: int) -> float:
        """Stage-3 query: H2H label lookup (fastest)."""
        labels = self._require_built()
        store = self._label_store()
        if store is not None and store.query_fn is not None:
            return store.query_fn(source, target)
        return labels.query(source, target)

    def query_at_stage(self, source: int, target: int, stage: MHLQueryStage) -> float:
        """Dispatch a query to the requested stage's algorithm."""
        if stage == MHLQueryStage.BIDIJKSTRA:
            return self.query_bidijkstra(source, target)
        if stage == MHLQueryStage.CH:
            return self.query_ch(source, target)
        return self.query_h2h(source, target)

    def query(self, source: int, target: int) -> float:
        """Default query path (the fastest stage; the index is assumed up to date)."""
        return self.query_h2h(source, target)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        """Three-stage maintenance mirroring U-Stages of the multi-stage scheme.

        Stage names map to the query stage that becomes available when the
        stage completes: after ``edge_update`` BiDijkstra is correct, after
        ``shortcut_update`` the CH query is correct, after ``label_update`` the
        H2H query is correct.
        """
        labels = self._require_built()
        report = UpdateReport()
        self.invalidate_kernels()

        with Timer() as timer:
            batch.apply(self.graph)
        self._emit_stage(report, StageTiming("edge_update", timer.seconds))

        with Timer() as timer:
            changed_shortcuts = update_shortcuts_bottom_up(
                self.contraction, self.graph, [update.key() for update in batch]
            )
        self._emit_stage(report, StageTiming("shortcut_update", timer.seconds))

        with Timer() as timer:
            changed_labels = labels.update_top_down(changed_shortcuts.keys())
        self._emit_stage(report, StageTiming("label_update", timer.seconds))

        self.last_changed_shortcuts = changed_shortcuts
        self.last_changed_labels = changed_labels
        return report

    # ------------------------------------------------------------------
    # Snapshot persistence: the DH2H state covers MHL (the CH stage reads
    # the same contraction); additionally persist the stage-2 store so a
    # warm-started engine can serve every stage without a re-freeze.
    # ------------------------------------------------------------------
    def _kernel_exports(self):
        exports = dict(super()._kernel_exports())
        exports["ch"] = self._ch_store
        return exports

    # ------------------------------------------------------------------
    # Stage metadata for the throughput simulator
    # ------------------------------------------------------------------
    def stage_catalog(self) -> List[Dict[str, object]]:
        """Describe the query stages in the order they become available.

        Each entry names the update stage that releases the query stage and the
        callable answering queries at that stage.  The throughput evaluator
        samples each callable to estimate per-stage query cost.
        """
        return [
            {
                "query_stage": MHLQueryStage.BIDIJKSTRA,
                "released_after": "edge_update",
                "query": self.query_bidijkstra,
            },
            {
                "query_stage": MHLQueryStage.CH,
                "released_after": "shortcut_update",
                "query": self.query_ch,
            },
            {
                "query_stage": MHLQueryStage.H2H,
                "released_after": "label_update",
                "query": self.query_h2h,
            },
        ]


@register_spec
@dataclass(frozen=True)
class MHLSpec(IndexSpec):
    """Construction spec for the non-partitioned multi-stage MHL index."""

    method = "MHL"

    def create(self, graph: Graph) -> MHLIndex:
        return MHLIndex(graph)
