"""Query workload generation: Poisson arrivals and query-pair samplers.

Following the paper's setup (Section VII-A), queries arrive as a Poisson
process with rate ``λ_q`` and are drawn uniformly at random from the vertex
set.  The samplers here additionally support a *same-partition bias* (the
"city-level queries on a province-level network" scenario discussed in
Section V-C) so the experiments can contrast same-partition-heavy and
cross-partition-heavy workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.exceptions import WorkloadError
from repro.graph.graph import Graph
from repro.partitioning.base import Partitioning


@dataclass
class QueryWorkload:
    """A set of query pairs plus the Poisson arrival-rate context."""

    pairs: List[Tuple[int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)


def sample_query_pairs(
    graph: Graph,
    count: int,
    seed: int = 0,
    partitioning: Optional[Partitioning] = None,
    same_partition_fraction: Optional[float] = None,
) -> QueryWorkload:
    """Sample ``count`` query pairs uniformly, optionally biased to same-partition pairs.

    Parameters
    ----------
    same_partition_fraction:
        When given (requires ``partitioning``), this fraction of the pairs is
        forced to have both endpoints in the same partition; the rest is forced
        cross-partition when possible.
    """
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count}")
    if same_partition_fraction is not None:
        if partitioning is None:
            raise WorkloadError("same_partition_fraction requires a partitioning")
        if not 0.0 <= same_partition_fraction <= 1.0:
            raise WorkloadError(
                f"same_partition_fraction must be in [0, 1], got {same_partition_fraction}"
            )
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if not vertices:
        raise WorkloadError("cannot sample queries from an empty graph")

    pairs: List[Tuple[int, int]] = []
    if same_partition_fraction is None:
        for _ in range(count):
            pairs.append((rng.choice(vertices), rng.choice(vertices)))
        return QueryWorkload(pairs)

    by_partition: List[List[int]] = [
        partitioning.partition_vertices(pid) for pid in range(partitioning.num_partitions)
    ]
    same_count = int(round(count * same_partition_fraction))
    for i in range(count):
        if i < same_count:
            members = by_partition[rng.randrange(len(by_partition))]
            pairs.append((rng.choice(members), rng.choice(members)))
        else:
            if len(by_partition) >= 2:
                pid_s, pid_t = rng.sample(range(len(by_partition)), 2)
                pairs.append(
                    (rng.choice(by_partition[pid_s]), rng.choice(by_partition[pid_t]))
                )
            else:
                pairs.append((rng.choice(vertices), rng.choice(vertices)))
    rng.shuffle(pairs)
    return QueryWorkload(pairs)


def poisson_arrival_times(rate: float, duration: float, seed: int = 0,
                          max_events: int = 1_000_000) -> List[float]:
    """Arrival times of a Poisson process with the given rate over ``[0, duration)``.

    ``max_events`` caps the generated event count to protect the queue
    simulator from pathological rates.
    """
    if rate < 0:
        raise WorkloadError(f"rate must be non-negative, got {rate}")
    if duration < 0:
        raise WorkloadError(f"duration must be non-negative, got {duration}")
    rng = random.Random(seed)
    times: List[float] = []
    t = 0.0
    if rate == 0:
        return times
    while True:
        t += rng.expovariate(rate)
        if t >= duration or len(times) >= max_events:
            break
        times.append(t)
    return times
