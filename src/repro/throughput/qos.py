"""Analytic throughput bounds (the paper's Lemma 1 and its multi-stage extension).

The system is modelled as an M/G/1 queue with Poisson query arrivals of rate
``λ_q``; the Pollaczek-Khinchine formula gives the mean response time, and the
update window constraint requires all updates to be installed within the batch
interval ``δt``.  Lemma 1 of the paper bounds the maximum sustainable
throughput:

``λ*_q ≤ min( 2(R*_q − t_q) / (V_q + 2 R*_q t_q − t_q²),  (δt − t_u) / (t_q · δt) )``

For a *multi-stage* index the query service time changes during the update
interval (BiDijkstra first, then progressively faster stages), so the bound
generalises by (a) weighting the first two service-time moments over the
interval segments and (b) replacing the capacity term by the total number of
queries the interval can serve, ``Σ_i L_i / s_i / δt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class StageSegment:
    """One piece of the query-processing timeline within an update interval.

    Attributes
    ----------
    start, end:
        Segment boundaries in seconds from the arrival of the update batch.
    mean_service:
        Average per-query processing time of the stage serving this segment.
    service_variance:
        Variance of that per-query processing time.
    stage_name:
        Human-readable stage label (for reports).
    """

    start: float
    end: float
    mean_service: float
    service_variance: float = 0.0
    stage_name: str = ""

    @property
    def length(self) -> float:
        return max(0.0, self.end - self.start)


def pollaczek_khinchine_response(arrival_rate: float, mean_service: float,
                                 service_variance: float) -> float:
    """Mean response time of an M/G/1 queue (waiting + service).

    Returns ``inf`` when the queue is unstable (utilisation >= 1).
    """
    if arrival_rate < 0 or mean_service <= 0:
        raise WorkloadError("arrival_rate must be >= 0 and mean_service > 0")
    utilisation = arrival_rate * mean_service
    if utilisation >= 1.0:
        return float("inf")
    second_moment = service_variance + mean_service * mean_service
    waiting = arrival_rate * second_moment / (2.0 * (1.0 - utilisation))
    return waiting + mean_service


def qos_constrained_rate(mean_service: float, service_variance: float,
                         response_qos: float) -> float:
    """Largest arrival rate whose P-K mean response time stays within the QoS.

    This is the first term of Lemma 1.  Returns 0 when even an idle system
    cannot meet the QoS (``mean_service > response_qos``).
    """
    if response_qos <= 0:
        raise WorkloadError(f"response_qos must be positive, got {response_qos}")
    slack = response_qos - mean_service
    if slack <= 0:
        return 0.0
    denominator = service_variance + 2.0 * response_qos * mean_service - mean_service ** 2
    if denominator <= 0:
        # Degenerate deterministic-service case; fall back to the stability bound.
        return 1.0 / mean_service
    return 2.0 * slack / denominator


def lemma1_max_throughput(
    mean_query_seconds: float,
    query_variance: float,
    update_seconds: float,
    update_interval: float,
    response_qos: float,
) -> float:
    """The paper's Lemma 1 upper bound on the maximum average throughput."""
    if update_interval <= 0:
        raise WorkloadError(f"update_interval must be positive, got {update_interval}")
    if update_seconds >= update_interval:
        return 0.0
    qos_term = qos_constrained_rate(mean_query_seconds, query_variance, response_qos)
    capacity_term = (update_interval - update_seconds) / (
        mean_query_seconds * update_interval
    )
    return min(qos_term, capacity_term)


def interval_service_moments(segments: Sequence[StageSegment]) -> Tuple[float, float]:
    """Time-weighted first and second moments of the service time over an interval."""
    total = sum(segment.length for segment in segments)
    if total <= 0:
        raise WorkloadError("segments must cover a positive-length interval")
    mean = 0.0
    second = 0.0
    for segment in segments:
        weight = segment.length / total
        mean += weight * segment.mean_service
        second += weight * (segment.service_variance + segment.mean_service ** 2)
    return mean, second


def multistage_max_throughput(
    segments: Sequence[StageSegment],
    update_interval: float,
    response_qos: float,
    final_stage_release: float,
) -> float:
    """Maximum sustainable throughput of a multi-stage index over one interval.

    Parameters
    ----------
    segments:
        Query-processing timeline of the interval (must cover ``[0, δt]``).
    update_interval:
        ``δt``.
    response_qos:
        ``R*_q``.
    final_stage_release:
        Simulated wall-clock time at which the *last* update stage finishes; if
        it exceeds ``δt`` the system cannot keep up and throughput is 0
        (the paper's update-window rule).
    """
    if update_interval <= 0:
        raise WorkloadError(f"update_interval must be positive, got {update_interval}")
    if final_stage_release >= update_interval:
        return 0.0
    capacity_queries = 0.0
    for segment in segments:
        if segment.mean_service > 0 and segment.length > 0:
            capacity_queries += segment.length / segment.mean_service
    capacity_term = capacity_queries / update_interval

    mean, second = interval_service_moments(segments)
    variance = max(0.0, second - mean * mean)
    qos_term = qos_constrained_rate(mean, variance, response_qos)
    return min(qos_term, capacity_term)


def build_segments(
    release_times: Sequence[float],
    stage_names: Sequence[str],
    mean_services: Sequence[float],
    service_variances: Sequence[float],
    update_interval: float,
) -> List[StageSegment]:
    """Assemble the query-processing timeline of one update interval.

    ``release_times[i]`` is when query stage ``i`` becomes available; stage 0
    also serves the initial ``[0, release_times[0])`` window because queries
    arriving before any stage is ready simply wait for it.  Stages released
    after ``update_interval`` never serve queries in the interval.
    """
    if not (len(release_times) == len(stage_names) == len(mean_services) == len(service_variances)):
        raise WorkloadError("stage metadata sequences must have equal length")
    if not release_times:
        raise WorkloadError("at least one query stage is required")
    segments: List[StageSegment] = []
    for i, release in enumerate(release_times):
        start = 0.0 if i == 0 else min(release, update_interval)
        end = update_interval if i == len(release_times) - 1 else min(
            release_times[i + 1], update_interval
        )
        if end <= start and i != 0:
            continue
        segments.append(
            StageSegment(
                start=start,
                end=max(end, start),
                mean_service=mean_services[i],
                service_variance=service_variances[i],
                stage_name=stage_names[i],
            )
        )
    # Ensure the timeline covers the full interval.
    if segments and segments[-1].end < update_interval:
        last = segments[-1]
        segments[-1] = StageSegment(
            last.start, update_interval, last.mean_service, last.service_variance, last.stage_name
        )
    return segments
