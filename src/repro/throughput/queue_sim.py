"""Discrete-event simulation of the query-serving system.

The analytic bounds in :mod:`repro.throughput.qos` are fast but approximate;
this simulator replays the system honestly: queries arrive as a Poisson
process, wait in a FIFO queue, and are served by a single worker whose
per-query service time depends on which query stage is available at the moment
service *starts* (the multi-stage timeline repeats every update interval).
It is used to validate the analytic model and by the QPS-evolution experiment.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.exceptions import WorkloadError
from repro.throughput.qos import StageSegment
from repro.throughput.workload import poisson_arrival_times


@dataclass
class SimulationResult:
    """Outcome of one queue simulation run."""

    arrivals: int
    completed: int
    mean_response: float
    max_response: float
    throughput: float
    qos_violated: bool
    response_times: List[float] = field(default_factory=list)


class QueueSimulator:
    """Single-server FIFO queue with a periodic, stage-dependent service time.

    Parameters
    ----------
    segments:
        Query-processing timeline of one update interval (covering
        ``[0, update_interval]``).
    update_interval:
        ``δt`` — the timeline repeats with this period.
    """

    def __init__(self, segments: Sequence[StageSegment], update_interval: float):
        if update_interval <= 0:
            raise WorkloadError("update_interval must be positive")
        if not segments:
            raise WorkloadError("at least one stage segment is required")
        self.segments = sorted(segments, key=lambda s: s.start)
        self.update_interval = update_interval
        self._starts = [segment.start for segment in self.segments]

    def service_time_at(self, time_in_interval: float) -> float:
        """Per-query service time in effect at a point of the (wrapped) interval."""
        position = bisect.bisect_right(self._starts, time_in_interval) - 1
        position = max(0, position)
        return self.segments[position].mean_service

    def run(
        self,
        arrival_rate: float,
        num_intervals: int = 3,
        response_qos: float = float("inf"),
        seed: int = 0,
    ) -> SimulationResult:
        """Simulate ``num_intervals`` update intervals at the given arrival rate."""
        duration = num_intervals * self.update_interval
        arrivals = poisson_arrival_times(arrival_rate, duration, seed=seed)
        server_free = 0.0
        responses: List[float] = []
        for arrival in arrivals:
            start = max(arrival, server_free)
            service = self.service_time_at(start % self.update_interval)
            completion = start + service
            server_free = completion
            responses.append(completion - arrival)
        completed = len(responses)
        mean_response = sum(responses) / completed if completed else 0.0
        max_response = max(responses) if responses else 0.0
        return SimulationResult(
            arrivals=len(arrivals),
            completed=completed,
            mean_response=mean_response,
            max_response=max_response,
            throughput=completed / duration if duration > 0 else 0.0,
            qos_violated=mean_response > response_qos,
            response_times=responses,
        )

    def max_throughput(
        self,
        response_qos: float,
        num_intervals: int = 3,
        seed: int = 0,
        tolerance: float = 0.05,
        max_rate: float = 1e7,
    ) -> float:
        """Find the largest Poisson rate whose simulated mean response meets the QoS.

        Uses doubling to bracket the threshold followed by a bisection, which is
        the simulation analogue of the paper's "increase λ_q until QoS is
        violated" measurement protocol.
        """
        low, high = 0.0, 1.0
        while high < max_rate:
            result = self.run(high, num_intervals=num_intervals,
                              response_qos=response_qos, seed=seed)
            if result.qos_violated:
                break
            low = high
            high *= 2.0
        else:
            return low
        while (high - low) > tolerance * max(high, 1.0):
            mid = (low + high) / 2.0
            result = self.run(mid, num_intervals=num_intervals,
                              response_qos=response_qos, seed=seed)
            if result.qos_violated:
                high = mid
            else:
                low = mid
        return low
