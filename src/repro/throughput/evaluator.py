"""End-to-end throughput evaluation of a shortest-distance index.

The evaluator reproduces the paper's measurement pipeline for one method on
one dataset:

1. install an update batch and record the per-stage maintenance times,
2. convert them into a simulated parallel wall-clock with ``p`` virtual
   threads (``repro.throughput.parallel``),
3. measure the average per-query time (and variance) of every query stage by
   sampling a query workload,
4. assemble the query-processing timeline of one update interval and compute
   the maximum sustainable throughput ``λ*_q`` under the response-time QoS
   (``repro.throughput.qos``), and
5. optionally validate the analytic figure with the discrete-event queue
   simulator.

Indexes that expose ``stage_catalog()`` (MHL, PMHL, PostMHL) get the full
multi-stage treatment; plain indexes (DCH, DH2H, …) are treated as the paper
treats them — BiDijkstra answers queries while their index is being repaired,
and their native query takes over once the update completes.

Analytic λ*_q versus measured serving QPS
-----------------------------------------

The figure produced here is an *analytic upper bound*: it assumes Poisson
arrivals, measures each stage's query cost in isolation on a single thread,
and simulates the maintenance parallelism (``repro.throughput.parallel``).
Its live counterpart is the *measured* served QPS of
:class:`repro.serving.engine.ServingEngine`, where real concurrent clients
contend with the maintenance worker for locks and the GIL;
``repro.experiments.exp9_live_serving`` reports the two side by side.  They
are expected to agree on the story (method ordering, trends), not on the
numbers — the analytic bound abstracts away contention and caching, while
the measured figure is capped by the load the driver offers.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.base import DistanceIndex, UpdateReport
from repro.core.stages import stage_entries
from repro.exceptions import WorkloadError
from repro.graph.updates import UpdateBatch
from repro.throughput.parallel import cumulative_release_times, report_wall_seconds
from repro.throughput.qos import StageSegment, build_segments, multistage_max_throughput
from repro.throughput.queue_sim import QueueSimulator
from repro.throughput.workload import QueryWorkload


@dataclass
class StageQueryCost:
    """Measured per-query cost of one query stage."""

    name: str
    mean_seconds: float
    variance: float
    released_after: str


@dataclass
class ThroughputResult:
    """Everything the experiments report for one (method, dataset, setting) cell."""

    method: str
    max_throughput: float
    update_wall_seconds: float
    stage_costs: List[StageQueryCost] = field(default_factory=list)
    segments: List[StageSegment] = field(default_factory=list)
    release_times: List[float] = field(default_factory=list)
    update_report: Optional[UpdateReport] = None

    @property
    def final_query_seconds(self) -> float:
        """Average query time of the fastest (final) stage."""
        return self.stage_costs[-1].mean_seconds if self.stage_costs else float("inf")


def measure_query_cost(
    query: Callable[[int, int], float], pairs: Sequence[Tuple[int, int]]
) -> Tuple[float, float]:
    """Mean and variance of the per-query wall-clock time of ``query`` over ``pairs``.

    One untimed warm-up call is issued first so lazily-built helpers (e.g. the
    LCA oracle of H2H-style indexes) are charged to construction rather than to
    the first measured query.
    """
    if not pairs:
        raise WorkloadError("cannot measure query cost on an empty workload")
    query(pairs[0][0], pairs[0][1])
    samples: List[float] = []
    for source, target in pairs:
        start = time.perf_counter()
        query(source, target)
        samples.append(time.perf_counter() - start)
    mean = statistics.fmean(samples)
    variance = statistics.pvariance(samples) if len(samples) > 1 else 0.0
    return mean, variance


class ThroughputEvaluator:
    """Measure the maximum sustainable query throughput of an index.

    Parameters
    ----------
    update_interval:
        ``δt`` in seconds (scaled down relative to the paper, see DESIGN.md §3).
    response_qos:
        ``R*_q`` in seconds.
    threads:
        Number of virtual maintenance threads ``p`` for the parallel cost model.
    query_sample_size:
        How many workload pairs to use when measuring per-stage query cost.
    """

    def __init__(
        self,
        update_interval: float,
        response_qos: float,
        threads: int = 4,
        query_sample_size: int = 50,
    ):
        if update_interval <= 0:
            raise WorkloadError("update_interval must be positive")
        if response_qos <= 0:
            raise WorkloadError("response_qos must be positive")
        if threads < 1:
            raise WorkloadError("threads must be >= 1")
        self.update_interval = update_interval
        self.response_qos = response_qos
        self.threads = threads
        self.query_sample_size = query_sample_size

    # ------------------------------------------------------------------
    def stage_queries(self, index: DistanceIndex) -> List[Dict[str, object]]:
        """Query stages of an index in release order.

        Multi-stage indexes provide them via ``stage_catalog``; for the rest
        the paper's protocol applies: BiDijkstra while the index is stale, the
        native query once the last update stage completes.  Delegates to
        :func:`repro.core.stages.stage_entries` — the same table the live
        serving router dispatches on — so the analytic and measured timelines
        can never disagree about the stages themselves.
        """
        return stage_entries(index)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        index: DistanceIndex,
        batch: UpdateBatch,
        workload: QueryWorkload,
        validate_with_simulation: bool = False,
        simulation_seed: int = 0,
    ) -> ThroughputResult:
        """Apply ``batch`` to ``index`` and compute its maximum throughput."""
        report = index.apply_batch(batch)
        return self.evaluate_from_report(
            index,
            report,
            workload,
            validate_with_simulation=validate_with_simulation,
            simulation_seed=simulation_seed,
        )

    def evaluate_from_report(
        self,
        index: DistanceIndex,
        report: UpdateReport,
        workload: QueryWorkload,
        validate_with_simulation: bool = False,
        simulation_seed: int = 0,
    ) -> ThroughputResult:
        """Compute throughput from an already-installed update report."""
        pairs = list(workload)[: self.query_sample_size]
        if not pairs:
            raise WorkloadError("the query workload is empty")

        stage_entries = self.stage_queries(index)
        releases_by_stage = cumulative_release_times(report, self.threads)
        stage_name_to_release = {
            stage.name: releases_by_stage[i] for i, stage in enumerate(report.stages)
        }
        total_wall = report_wall_seconds(report, self.threads)

        release_times: List[float] = []
        names: List[str] = []
        means: List[float] = []
        variances: List[float] = []
        costs: List[StageQueryCost] = []
        for entry in stage_entries:
            released_after = entry["released_after"]
            if released_after == "__last__":
                release = total_wall
            else:
                release = stage_name_to_release.get(released_after, total_wall)
            mean, variance = measure_query_cost(entry["query"], pairs)
            release_times.append(release)
            names.append(str(entry["query_stage"]))
            means.append(mean)
            variances.append(variance)
            costs.append(
                StageQueryCost(
                    name=str(entry["query_stage"]),
                    mean_seconds=mean,
                    variance=variance,
                    released_after=str(released_after),
                )
            )

        segments = build_segments(
            release_times, names, means, variances, self.update_interval
        )
        max_throughput = multistage_max_throughput(
            segments, self.update_interval, self.response_qos, total_wall
        )
        result = ThroughputResult(
            method=index.name,
            max_throughput=max_throughput,
            update_wall_seconds=total_wall,
            stage_costs=costs,
            segments=segments,
            release_times=release_times,
            update_report=report,
        )
        if validate_with_simulation and max_throughput > 0:
            simulator = QueueSimulator(segments, self.update_interval)
            simulated = simulator.max_throughput(
                self.response_qos, num_intervals=2, seed=simulation_seed
            )
            # Keep the more conservative figure when the simulation disagrees badly.
            result.max_throughput = min(max_throughput, max(simulated, 0.0)) or simulated
        return result

    # ------------------------------------------------------------------
    def qps_evolution(
        self,
        index: DistanceIndex,
        report: UpdateReport,
        workload: QueryWorkload,
        num_points: int = 20,
    ) -> List[Tuple[float, float]]:
        """Queries-per-second (``1 / t_q``) over the update interval (Figure 13).

        Returns ``(time, qps)`` samples: at each time point the QPS of the
        fastest query stage already released is reported.
        """
        pairs = list(workload)[: self.query_sample_size]
        stage_entries = self.stage_queries(index)
        releases_by_stage = cumulative_release_times(report, self.threads)
        stage_name_to_release = {
            stage.name: releases_by_stage[i] for i, stage in enumerate(report.stages)
        }
        total_wall = report_wall_seconds(report, self.threads)

        stage_points: List[Tuple[float, float]] = []
        for entry in stage_entries:
            released_after = entry["released_after"]
            release = (
                total_wall
                if released_after == "__last__"
                else stage_name_to_release.get(released_after, total_wall)
            )
            mean, _ = measure_query_cost(entry["query"], pairs)
            stage_points.append((release, 1.0 / mean if mean > 0 else float("inf")))

        samples: List[Tuple[float, float]] = []
        for i in range(num_points):
            t = self.update_interval * i / max(1, num_points - 1)
            qps = 0.0
            for release, stage_qps in stage_points:
                if release <= t:
                    qps = max(qps, stage_qps)
            if qps == 0.0:
                qps = stage_points[0][1]
            samples.append((t, qps))
        return samples
