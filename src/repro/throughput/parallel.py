"""Simulated multi-thread cost model.

The paper runs partition-level maintenance on up to 140 hardware threads.
Python's GIL makes real thread speedups impossible, so the reproduction
measures the *sequential* per-partition (or per-branch-root) times and converts
them into a simulated parallel wall-clock by scheduling them onto ``p``
virtual workers with the classic Longest-Processing-Time (LPT) heuristic.
This reproduces the paper's speedup-versus-threads behaviour (Figure 15):
speedup grows with ``p`` until it plateaus at the number of parallel work
items and at the non-parallelisable (overlay) portion of each stage.

See DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.base import StageTiming, UpdateReport
from repro.exceptions import WorkloadError


def lpt_makespan(times: Sequence[float], workers: int) -> float:
    """Makespan of scheduling ``times`` onto ``workers`` identical workers (LPT).

    LPT is a 4/3-approximation of the optimal makespan and mirrors how a
    thread pool would execute the per-partition jobs.
    """
    if workers < 1:
        raise WorkloadError(f"workers must be >= 1, got {workers}")
    jobs = sorted((t for t in times if t > 0), reverse=True)
    if not jobs:
        return 0.0
    if workers == 1:
        return sum(jobs)
    loads = [0.0] * min(workers, len(jobs))
    heap = list(loads)
    heapq.heapify(heap)
    for job in jobs:
        load = heapq.heappop(heap)
        heapq.heappush(heap, load + job)
    return max(heap)


def parallel_speedup(times: Sequence[float], workers: int) -> float:
    """Speedup of the simulated parallel execution over sequential execution."""
    sequential = sum(t for t in times if t > 0)
    if sequential == 0:
        return 1.0
    return sequential / lpt_makespan(times, workers)


def stage_wall_seconds(stage: StageTiming, workers: int) -> float:
    """Simulated wall-clock duration of one update stage with ``workers`` threads.

    Stages that report ``parallel_times`` (one entry per partition or branch
    root) are scheduled onto the workers; purely sequential stages keep their
    measured duration.
    """
    if stage.parallel_times is not None:
        return lpt_makespan(stage.parallel_times, workers)
    return stage.seconds


def report_wall_seconds(report: UpdateReport, workers: int) -> float:
    """Simulated wall-clock duration of a full update report."""
    return sum(stage_wall_seconds(stage, workers) for stage in report.stages)


def cumulative_release_times(report: UpdateReport, workers: int) -> List[float]:
    """Cumulative completion time of each update stage under ``workers`` threads.

    ``result[i]`` is the simulated wall-clock time at which stage ``i`` of the
    report finishes (measured from the arrival of the update batch).
    """
    releases: List[float] = []
    elapsed = 0.0
    for stage in report.stages:
        elapsed += stage_wall_seconds(stage, workers)
        releases.append(elapsed)
    return releases
