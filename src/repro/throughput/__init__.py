"""Throughput evaluation substrate: QoS bounds, queue simulation, parallel cost model."""

from repro.throughput.evaluator import (
    StageQueryCost,
    ThroughputEvaluator,
    ThroughputResult,
    measure_query_cost,
)
from repro.throughput.parallel import (
    cumulative_release_times,
    lpt_makespan,
    parallel_speedup,
    report_wall_seconds,
    stage_wall_seconds,
)
from repro.throughput.qos import (
    StageSegment,
    build_segments,
    interval_service_moments,
    lemma1_max_throughput,
    multistage_max_throughput,
    pollaczek_khinchine_response,
    qos_constrained_rate,
)
from repro.throughput.queue_sim import QueueSimulator, SimulationResult
from repro.throughput.workload import (
    QueryWorkload,
    poisson_arrival_times,
    sample_query_pairs,
)

__all__ = [
    "ThroughputEvaluator",
    "ThroughputResult",
    "StageQueryCost",
    "measure_query_cost",
    "lpt_makespan",
    "parallel_speedup",
    "stage_wall_seconds",
    "report_wall_seconds",
    "cumulative_release_times",
    "StageSegment",
    "build_segments",
    "lemma1_max_throughput",
    "multistage_max_throughput",
    "pollaczek_khinchine_response",
    "qos_constrained_rate",
    "interval_service_moments",
    "QueueSimulator",
    "SimulationResult",
    "QueryWorkload",
    "sample_query_pairs",
    "poisson_arrival_times",
]
