"""Overlay graph and overlay index construction for planar PSP indexes.

The overlay graph ``G̃`` has the boundary vertices of all partitions as its
vertex set; its edges are the inter-partition edges of the road network plus
the boundary-to-boundary shortcuts produced inside each partition.  Built this
way (the paper's Theorem 2 / the "optimized no-boundary" construction), the
overlay preserves the *global* shortest distances between any two boundary
vertices, so an index over the overlay answers boundary-to-boundary queries
exactly.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import IndexNotBuiltError
from repro.graph.graph import Graph
from repro.hierarchy.ch import ch_bidirectional_query
from repro.labeling.h2h import H2HLabels
from repro.partitioning.base import Partitioning
from repro.partitioning.ordering import restrict_order
from repro.psp.partition_family import PartitionIndexFamily
from repro.treedec.mde import ContractionResult, contract_graph, update_shortcuts_bottom_up
from repro.treedec.tree import TreeDecomposition

INF = math.inf


def build_overlay_graph(
    partitioning: Partitioning, family: PartitionIndexFamily
) -> Graph:
    """Construct the overlay graph ``G̃`` from partition boundary shortcuts.

    Every boundary vertex becomes an overlay vertex; inter-partition edges keep
    their current weights; boundary shortcuts contributed by each partition
    contraction are added with their shortcut values.
    """
    overlay = Graph()
    for b in sorted(partitioning.all_boundary()):
        overlay.add_vertex(b)
        coordinate = partitioning.graph.coordinate(b)
        if coordinate is not None:
            overlay.set_coordinate(b, *coordinate)
    for u, v, w in partitioning.inter_edges():
        overlay.add_edge(u, v, w)
    for pid in range(partitioning.num_partitions):
        for (b1, b2), weight in family.boundary_shortcuts(pid).items():
            overlay.add_edge(b1, b2, weight)
    return overlay


class OverlayIndex:
    """Contraction (and optional H2H labels) over the overlay graph ``G̃``."""

    def __init__(
        self,
        partitioning: Partitioning,
        family: PartitionIndexFamily,
        order: Sequence[int],
        with_labels: bool = True,
    ):
        self.partitioning = partitioning
        self.family = family
        self.order = list(order)
        self.with_labels = with_labels
        self.graph: Optional[Graph] = None
        self.contraction: Optional[ContractionResult] = None
        self.tree: Optional[TreeDecomposition] = None
        self.labels: Optional[H2HLabels] = None
        self.build_seconds = 0.0
        self._built = False

    # ------------------------------------------------------------------
    def build(self) -> float:
        """Build the overlay graph and its index; returns the build time."""
        start = time.perf_counter()
        self.graph = build_overlay_graph(self.partitioning, self.family)
        overlay_order = restrict_order(self.order, self.graph.vertices())
        self.contraction = contract_graph(self.graph, order=overlay_order)
        self.tree = TreeDecomposition.from_contraction(self.contraction, allow_forest=True)
        if self.with_labels:
            self.labels = H2HLabels(self.tree)
            self.labels.build()
        self.build_seconds = time.perf_counter() - start
        self._built = True
        return self.build_seconds

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("overlay index has not been built")

    # ------------------------------------------------------------------
    def query(self, b1: int, b2: int) -> float:
        """Global shortest distance between two boundary vertices."""
        self._require_built()
        if b1 == b2:
            return 0.0
        if self.with_labels:
            return self.labels.query(b1, b2)
        return ch_bidirectional_query(b1, b2, lambda v: self.contraction.shortcuts[v])

    def boundary_pair_distances(self, pid: int) -> Dict[Tuple[int, int], float]:
        """All-pair global distances among the boundary vertices of partition ``pid``."""
        boundary = sorted(self.partitioning.boundary(pid))
        distances: Dict[Tuple[int, int], float] = {}
        for i, b1 in enumerate(boundary):
            for b2 in boundary[i + 1 :]:
                d = self.query(b1, b2)
                distances[(b1, b2)] = d
                distances[(b2, b1)] = d
        return distances

    # ------------------------------------------------------------------
    def apply_updates(
        self,
        inter_updates: Iterable,
        changed_boundary_shortcuts: Dict[Tuple[int, int], float],
    ) -> Tuple[Dict[int, List[int]], Set[int]]:
        """Install overlay edge changes and maintain the overlay index.

        Parameters
        ----------
        inter_updates:
            Edge updates whose endpoints lie in different partitions (their
            weights are copied verbatim onto the overlay edges).
        changed_boundary_shortcuts:
            New values of partition boundary shortcuts that changed during the
            partition shortcut-update phase.

        Returns
        -------
        tuple
            ``(changed_shortcut_report, changed_label_vertices)``.
        """
        self._require_built()
        changed_edges: List[Tuple[int, int]] = []
        for update in inter_updates:
            if self.graph.has_edge(update.u, update.v):
                self.graph.set_edge_weight(update.u, update.v, update.new_weight)
                changed_edges.append(update.key())
        for (b1, b2), weight in changed_boundary_shortcuts.items():
            if self.graph.has_edge(b1, b2):
                if self.graph.edge_weight(b1, b2) != weight:
                    self.graph.set_edge_weight(b1, b2, weight)
                    changed_edges.append((b1, b2) if b1 < b2 else (b2, b1))
            else:
                self.graph.add_edge(b1, b2, weight)
                changed_edges.append((b1, b2) if b1 < b2 else (b2, b1))

        changed_report = update_shortcuts_bottom_up(
            self.contraction, self.graph, changed_edges
        )
        changed_labels: Set[int] = set()
        if self.with_labels and changed_report:
            changed_labels = self.labels.update_top_down(changed_report.keys())
        return changed_report, changed_labels

    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Number of stored overlay shortcut and label entries."""
        self._require_built()
        total = self.contraction.shortcut_count()
        if self.with_labels and self.labels is not None:
            total += self.labels.label_entry_count()
        return total
