"""Post-boundary PSP index (and the P-TD-P baseline).

The *post-boundary strategy* (Section III-C, Steps 4-5) fixes the slow
same-partition queries of the no-boundary strategy: after the overlay index is
available, the all-pair global boundary distances of every partition are
computed from it and inserted into the partition graphs, producing *extended
partitions* ``{G'_i}`` whose indexes ``{L'_i}`` answer same-partition queries
exactly and locally.  Cross-partition queries still concatenate through the
overlay.

``PostBoundaryPSPIndex(underlying="h2h")`` is the paper's **P-TD-P** baseline
(query-oriented PSP with DH2H underlying).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.base import StageTiming, UpdateReport
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.kernels.label_store import LabelStore
from repro.partitioning.base import Partitioning
from repro.psp.no_boundary import NoBoundaryPSPIndex
from repro.psp.partition_family import PartitionIndexFamily
from repro.registry import IndexSpec, register_spec

INF = math.inf


class PostBoundaryPSPIndex(NoBoundaryPSPIndex):
    """Planar PSP index following the post-boundary strategy."""

    name = "P-PSP"

    def __init__(
        self,
        graph: Graph,
        num_partitions: int = 4,
        underlying: str = "h2h",
        partitioning: Optional[Partitioning] = None,
        seed: int = 0,
    ):
        super().__init__(
            graph,
            num_partitions=num_partitions,
            underlying=underlying,
            partitioning=partitioning,
            seed=seed,
        )
        self.extended_family: Optional[PartitionIndexFamily] = None
        #: Per-partition all-pair global boundary distances (for change detection).
        self.boundary_distances: List[Dict[Tuple[int, int], float]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        super()._build()
        with obs.span(self.name.lower() + ".build.extended_partitions"):
            extended_graphs: List[Graph] = []
            self.boundary_distances = []
            for pid in range(self.partitioning.num_partitions):
                extended = self.partitioning.subgraph(pid)
                distances = self.overlay.boundary_pair_distances(pid)
                for (b1, b2), weight in distances.items():
                    if b1 < b2 and weight < INF:
                        if extended.has_edge(b1, b2):
                            extended.set_edge_weight(
                                b1, b2, min(weight, extended.edge_weight(b1, b2))
                            )
                        else:
                            extended.add_edge(b1, b2, weight)
                extended_graphs.append(extended)
                self.boundary_distances.append(distances)
            self.extended_family = PartitionIndexFamily(
                self.partitioning,
                self.order,
                with_labels=(self.underlying == "h2h"),
                graphs=extended_graphs,
            )
            self.extended_family.build()

    # ------------------------------------------------------------------
    # Query processing (same-partition queries go straight to {L'_i})
    #
    # Boundary distances flow through the extended family here, so the
    # inherited ``query_many`` batch memo automatically caches extended-family
    # lookups instead of the base family's; the frozen per-partition stores
    # likewise snapshot the *extended* structures.
    # ------------------------------------------------------------------
    def _extended_store(self, pid: int):
        return self._store_for(
            f"extended_{pid}",
            self.extended_family.labels[pid],
            self.extended_family.contractions[pid],
        )

    def _to_boundary(self, pid: int, vertex: int) -> Dict[int, float]:
        store = self._extended_store(pid)
        if store is not None:
            # LabelStore and ShortcutStore both answer the boundary fan-out
            # as one native batch (hoisted source / C-looped scalar search).
            boundary = sorted(self.partitioning.boundary(pid))
            return dict(zip(boundary, store.one_to_many(vertex, boundary)))
        return self.extended_family.distances_to_boundary(pid, vertex)

    def _same_partition_query(
        self,
        pid: int,
        source: int,
        target: int,
        overlay_query: Callable[[int, int], float],
        to_boundary: Callable[[int, int], Dict[int, float]],
    ) -> float:
        store = self._extended_store(pid)
        if isinstance(store, LabelStore):
            if store.query_fn is not None:
                return store.query_fn(source, target)
        elif store is not None:
            return store.query(source, target)
        return self.extended_family.query(pid, source, target)

    # ``_boundary_to_inner`` / ``_inner_to_inner`` are inherited: the
    # concatenation loops (and their vectorized batch plane) are identical —
    # only the per-partition stores they consult differ, via ``_to_boundary``.

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        report = super()._apply_batch(batch)
        post_times = self._update_extended_partitions(batch)
        self._emit_stage(report,
            StageTiming("post_boundary_update", sum(post_times), parallel_times=post_times)
        )
        self.last_report = report
        return report

    def _update_extended_partitions(self, batch: UpdateBatch) -> List[float]:
        """Refresh the extended partitions after the overlay index is up to date."""
        partitioning = self.partitioning
        per_partition_updates: Dict[int, List] = {}
        for update in batch:
            pid_u = partitioning.partition_of(update.u)
            pid_v = partitioning.partition_of(update.v)
            if pid_u == pid_v:
                per_partition_updates.setdefault(pid_u, []).append(update)

        times: List[float] = []
        for pid in range(partitioning.num_partitions):
            start = time.perf_counter()
            boundary = partitioning.boundary(pid)
            new_distances = self.overlay.boundary_pair_distances(pid)
            changed_pairs = {
                pair: weight
                for pair, weight in new_distances.items()
                if pair[0] < pair[1]
                and weight < INF
                and self.boundary_distances[pid].get(pair) != weight
            }
            intra_updates = [
                u
                for u in per_partition_updates.get(pid, [])
                if not (u.u in boundary and u.v in boundary)
            ]
            if not changed_pairs and not intra_updates:
                times.append(time.perf_counter() - start)
                continue
            self.boundary_distances[pid] = new_distances
            changed_edges = self.extended_family.apply_edge_updates(pid, intra_updates)
            changed_edges += self.extended_family.set_edge_weights(pid, changed_pairs)
            changed_report = self.extended_family.update_shortcuts(pid, changed_edges)
            self.extended_family.update_labels(pid, changed_report.keys())
            times.append(time.perf_counter() - start)
        return times

    # ------------------------------------------------------------------
    def index_size(self) -> int:
        return super().index_size() + self.extended_family.index_size()

    # ------------------------------------------------------------------
    # Snapshot persistence: the no-boundary state plus the extended
    # partitions (whose boundary-pair edges exist nowhere else) and the
    # boundary distance tables used for update change detection.
    # ------------------------------------------------------------------
    def to_state(self, io) -> Dict[str, object]:
        from repro.store import codec

        state = super().to_state(io)
        state["extended_family"] = codec.pack_family(self.extended_family, io)
        state["boundary_distances"] = [
            codec.pack_pair_table(table, io) for table in self.boundary_distances
        ]
        return state

    def from_state(self, state: Dict[str, object], io) -> None:
        from repro.store import codec

        super().from_state(state, io)
        self.extended_family = codec.unpack_family(
            state["extended_family"], io, self.partitioning, self.order
        )
        self.boundary_distances = [
            codec.unpack_pair_table(table, io) for table in state["boundary_distances"]
        ]


class PTDPIndex(PostBoundaryPSPIndex):
    """The paper's **P-TD-P** baseline: post-boundary PSP with DH2H underlying."""

    name = "P-TD-P"

    def __init__(
        self,
        graph: Graph,
        num_partitions: int = 4,
        partitioning: Optional[Partitioning] = None,
        seed: int = 0,
    ):
        super().__init__(
            graph,
            num_partitions=num_partitions,
            underlying="h2h",
            partitioning=partitioning,
            seed=seed,
        )


@register_spec
@dataclass(frozen=True)
class PTDPSpec(IndexSpec):
    """Construction spec for the P-TD-P baseline (post-boundary PSP, DH2H underlying)."""

    method = "P-TD-P"
    aliases = ("PTDP",)
    config_fields = {"num_partitions": "partition_number", "seed": "seed"}

    #: Number of partitions ``k``.
    num_partitions: int = 4
    #: Partitioner seed.
    seed: int = 0

    def create(self, graph: Graph) -> PTDPIndex:
        return PTDPIndex(graph, num_partitions=self.num_partitions, seed=self.seed)
