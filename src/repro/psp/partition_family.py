"""Per-partition index structures sharing a global boundary-first order.

A *partition index family* holds, for every partition ``G_i`` (or extended
partition ``G'_i``), its own copy of the (sub)graph, its MDE contraction under
the restriction of a shared global vertex order, the resulting tree
decomposition and (optionally) H2H distance labels.  PMHL's no-boundary and
post-boundary indexes and the N-CH-P / P-TD-P baselines are all built from
such families, so the class also exposes the per-partition maintenance
primitives (shortcut update, label update) together with their individual
wall-clock times, which the throughput machinery converts into simulated
parallel stage times.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import IndexNotBuiltError
from repro.graph.graph import Graph
from repro.hierarchy.ch import ch_bidirectional_query
from repro.labeling.h2h import H2HLabels
from repro.partitioning.base import Partitioning
from repro.partitioning.ordering import restrict_order
from repro.treedec.mde import ContractionResult, contract_graph, update_shortcuts_bottom_up
from repro.treedec.tree import TreeDecomposition

INF = math.inf


class PartitionIndexFamily:
    """Contractions (and optional H2H labels) for every partition of a road network.

    Parameters
    ----------
    partitioning:
        The planar partitioning (provides vertex sets and boundaries).
    order:
        Global boundary-first vertex order; each partition uses its restriction.
    with_labels:
        Build H2H labels per partition (hop-based underlying index).  When
        ``False`` only the shortcut arrays are kept (CH underlying index).
    graphs:
        Optional per-partition graphs; defaults to the intra-edge subgraphs
        ``G_i``.  The post-boundary strategy passes extended partitions
        ``G'_i`` here.
    """

    def __init__(
        self,
        partitioning: Partitioning,
        order: Sequence[int],
        with_labels: bool = True,
        graphs: Optional[List[Graph]] = None,
    ):
        self.partitioning = partitioning
        self.order = list(order)
        self.with_labels = with_labels
        if graphs is not None:
            self.graphs = graphs
        else:
            self.graphs = [
                partitioning.subgraph(pid) for pid in range(partitioning.num_partitions)
            ]
        self.contractions: List[Optional[ContractionResult]] = [None] * len(self.graphs)
        self.trees: List[Optional[TreeDecomposition]] = [None] * len(self.graphs)
        self.labels: List[Optional[H2HLabels]] = [None] * len(self.graphs)
        self.build_times: List[float] = [0.0] * len(self.graphs)
        self._built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.graphs)

    def build(self) -> List[float]:
        """Build every partition structure; returns per-partition build times."""
        for pid in range(self.num_partitions):
            start = time.perf_counter()
            subgraph = self.graphs[pid]
            partition_order = restrict_order(self.order, subgraph.vertices())
            contraction = contract_graph(subgraph, order=partition_order)
            tree = TreeDecomposition.from_contraction(contraction, allow_forest=True)
            self.contractions[pid] = contraction
            self.trees[pid] = tree
            if self.with_labels:
                labels = H2HLabels(tree)
                labels.build()
                self.labels[pid] = labels
            self.build_times[pid] = time.perf_counter() - start
        self._built = True
        return list(self.build_times)

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("partition index family has not been built")

    # ------------------------------------------------------------------
    # Queries inside one partition
    # ------------------------------------------------------------------
    def query(self, pid: int, source: int, target: int) -> float:
        """Distance between two vertices of partition ``pid`` *within its graph*."""
        self._require_built()
        if self.with_labels:
            return self.labels[pid].query(source, target)
        contraction = self.contractions[pid]
        return ch_bidirectional_query(source, target, lambda v: contraction.shortcuts[v])

    def distances_to_boundary(self, pid: int, vertex: int) -> Dict[int, float]:
        """Distances from ``vertex`` to every boundary vertex of its partition."""
        self._require_built()
        return {
            b: self.query(pid, vertex, b) for b in sorted(self.partitioning.boundary(pid))
        }

    # ------------------------------------------------------------------
    # Boundary shortcuts (overlay-graph construction, Theorem 2)
    # ------------------------------------------------------------------
    def boundary_shortcuts(self, pid: int) -> Dict[Tuple[int, int], float]:
        """Shortcuts among boundary vertices produced by the partition contraction.

        Under the boundary-first order all non-boundary vertices of the
        partition are contracted first, so the shortcut arrays of the boundary
        vertices describe the boundary-to-boundary contracted graph, which
        preserves global distances (Theorem 2 of the paper).
        """
        self._require_built()
        contraction = self.contractions[pid]
        boundary = self.partitioning.boundary(pid)
        shortcuts: Dict[Tuple[int, int], float] = {}
        for b in boundary:
            if b not in contraction.shortcuts:
                continue
            for u, weight in contraction.shortcuts[b].items():
                if u in boundary:
                    shortcuts[(b, u)] = weight
        return shortcuts

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def apply_edge_updates(self, pid: int, updates: Iterable) -> List[Tuple[int, int]]:
        """Apply edge-weight updates to the partition's graph copy.

        Returns the list of changed edge keys (for the shortcut update seed).
        Updates whose edge does not exist in the partition graph are skipped
        (e.g. boundary-pair virtual edges handled separately by the caller).
        """
        graph = self.graphs[pid]
        changed: List[Tuple[int, int]] = []
        for update in updates:
            if graph.has_edge(update.u, update.v):
                graph.set_edge_weight(update.u, update.v, update.new_weight)
                changed.append(update.key())
        return changed

    def set_edge_weights(
        self, pid: int, new_weights: Dict[Tuple[int, int], float]
    ) -> List[Tuple[int, int]]:
        """Set explicit edge weights on the partition graph (adding missing edges).

        Used for the extended partitions, whose boundary-pair edges carry the
        global boundary distances.
        """
        graph = self.graphs[pid]
        changed: List[Tuple[int, int]] = []
        for (u, v), weight in new_weights.items():
            if graph.has_edge(u, v):
                if graph.edge_weight(u, v) != weight:
                    graph.set_edge_weight(u, v, weight)
                    changed.append((u, v) if u < v else (v, u))
            else:
                graph.add_edge(u, v, weight)
                changed.append((u, v) if u < v else (v, u))
        return changed

    def update_shortcuts(
        self, pid: int, changed_edges: Sequence[Tuple[int, int]]
    ) -> Dict[int, List[int]]:
        """Bottom-up shortcut maintenance of one partition; returns the change report."""
        self._require_built()
        return update_shortcuts_bottom_up(
            self.contractions[pid], self.graphs[pid], changed_edges
        )

    def update_labels(self, pid: int, affected: Iterable[int]) -> Set[int]:
        """Top-down label maintenance of one partition; returns changed vertices."""
        self._require_built()
        if not self.with_labels:
            return set()
        return self.labels[pid].update_top_down(affected)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Total number of stored shortcut and label entries."""
        self._require_built()
        total = 0
        for pid in range(self.num_partitions):
            total += self.contractions[pid].shortcut_count()
            if self.with_labels and self.labels[pid] is not None:
                total += self.labels[pid].label_entry_count()
        return total
