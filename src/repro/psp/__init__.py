"""Partitioned Shortest Path (PSP) framework: strategies, overlay, baselines."""

from repro.psp.no_boundary import NCHPIndex, NoBoundaryPSPIndex
from repro.psp.overlay import OverlayIndex, build_overlay_graph
from repro.psp.partition_family import PartitionIndexFamily
from repro.psp.post_boundary import PostBoundaryPSPIndex, PTDPIndex

__all__ = [
    "PartitionIndexFamily",
    "OverlayIndex",
    "build_overlay_graph",
    "NoBoundaryPSPIndex",
    "NCHPIndex",
    "PostBoundaryPSPIndex",
    "PTDPIndex",
]
