"""No-boundary PSP index (and the N-CH-P baseline).

The *no-boundary strategy* (Section III-C) builds partition indexes directly on
the partition subgraphs ``{G_i}``, derives the overlay graph from the
boundary shortcuts those indexes produce, and builds an overlay index on top.
Construction and maintenance are fast (no Dijkstra-based boundary shortcut
computation, partition maintenance is embarrassingly parallel) but queries pay
for distance concatenation:

* same-partition:  ``min(d_{L_i}(s,t), min_{b_p,b_q∈B_i} d_{L_i}(s,b_p) + d_{L̃}(b_p,b_q) + d_{L_i}(b_q,t))``
* cross-partition: ``min_{b_p∈B_i, b_q∈B_j} d_{L_i}(s,b_p) + d_{L̃}(b_p,b_q) + d_{L_j}(b_q,t)``

``NoBoundaryPSPIndex(underlying="ch")`` is the paper's **N-CH-P** baseline
(update-oriented, slow queries); ``underlying="h2h"`` gives the hop-based
variant used inside PMHL.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro import obs
from repro.base import DistanceIndex, StageTiming, Timer, UpdateReport
from repro.exceptions import IndexNotBuiltError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.kernels.label_store import LabelStore
from repro.kernels.shortcut_store import ShortcutStore
from repro.partitioning.base import Partitioning
from repro.partitioning.natural_cut import natural_cut_partition
from repro.partitioning.ordering import boundary_first_order
from repro.psp.overlay import OverlayIndex
from repro.psp.partition_family import PartitionIndexFamily
from repro.registry import IndexSpec, register_spec

INF = math.inf


class NoBoundaryPSPIndex(DistanceIndex):
    """Planar PSP index following the (optimized) no-boundary strategy.

    Parameters
    ----------
    graph:
        The road network.
    num_partitions:
        Number of partitions ``k``.
    underlying:
        ``"h2h"`` (hop-based partition/overlay indexes) or ``"ch"``
        (shortcut-based, the N-CH-P baseline).
    partitioning:
        Optional pre-computed partitioning; by default the PUNCH-substitute
        natural-cut partitioner is used.
    seed:
        Partitioner seed.
    """

    name = "N-PSP"

    def __init__(
        self,
        graph: Graph,
        num_partitions: int = 4,
        underlying: str = "h2h",
        partitioning: Optional[Partitioning] = None,
        seed: int = 0,
    ):
        super().__init__(graph)
        if underlying not in ("h2h", "ch"):
            raise ValueError(f"underlying must be 'h2h' or 'ch', got {underlying!r}")
        self.num_partitions = num_partitions
        self.underlying = underlying
        self.seed = seed
        self.partitioning = partitioning
        self.order: List[int] = []
        self.family: Optional[PartitionIndexFamily] = None
        self.overlay: Optional[OverlayIndex] = None
        self.last_report: Optional[UpdateReport] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        prefix = self.name.lower() + ".build."
        with obs.span(prefix + "partitioning_and_ordering"):
            if self.partitioning is None:
                self.partitioning = natural_cut_partition(
                    self.graph, self.num_partitions, seed=self.seed
                )
            self.order = boundary_first_order(self.graph, self.partitioning)
        with_labels = self.underlying == "h2h"
        with obs.span(prefix + "partition_indexes"):
            self.family = PartitionIndexFamily(
                self.partitioning, self.order, with_labels=with_labels
            )
            self.family.build()
        with obs.span(prefix + "overlay"):
            self.overlay = OverlayIndex(
                self.partitioning, self.family, self.order, with_labels=with_labels
            )
            self.overlay.build()

    def _require_built(self) -> None:
        if self.family is None or self.overlay is None or not self.overlay._built:
            raise IndexNotBuiltError(f"{self.name} index has not been built")

    # ------------------------------------------------------------------
    # Frozen stores (see repro.kernels)
    #
    # H2H-underlying structures freeze into :class:`LabelStore`\ s, CH
    # underlying ones into :class:`ShortcutStore`\ s.  Per-partition stores
    # are memoised under distinct keys so a query batch touching one
    # partition never freezes the others.
    # ------------------------------------------------------------------
    def _store_for(self, key: str, labels, contraction):
        def freeze():
            if self.with_kernel_labels and labels is not None:
                return LabelStore.freeze(labels)
            return ShortcutStore.freeze(
                lambda v: contraction.shortcuts[v], contraction.order
            )

        return self._kernel(key, freeze)

    @property
    def with_kernel_labels(self) -> bool:
        return self.underlying == "h2h"

    def _overlay_store(self):
        return self._store_for(
            "overlay", self.overlay.labels, self.overlay.contraction
        )

    def _partition_store(self, pid: int):
        return self._store_for(
            f"partition_{pid}", self.family.labels[pid], self.family.contractions[pid]
        )

    def _overlay_distance(self, b1: int, b2: int) -> float:
        store = self._overlay_store()
        if isinstance(store, LabelStore):
            if store.query_fn is not None:
                return store.query_fn(b1, b2)
        elif store is not None:
            return store.query(b1, b2)
        return self.overlay.query(b1, b2)

    def _partition_distance(self, pid: int, source: int, target: int) -> float:
        store = self._partition_store(pid)
        if isinstance(store, LabelStore):
            if store.query_fn is not None:
                return store.query_fn(source, target)
        elif store is not None:
            return store.query(source, target)
        return self.family.query(pid, source, target)

    # ------------------------------------------------------------------
    # Query processing
    #
    # The case analysis is written against two injectable fetchers so the
    # batch plane can share memoised lookups across a whole batch:
    #
    # * ``overlay_query(bp, bq)`` — global boundary-to-boundary distance,
    # * ``to_boundary(pid, v)``   — distances from ``v`` to its partition
    #   boundary (through whichever family answers same-partition queries).
    #
    # The scalar path passes the raw (unmemoised) fetchers, the batch path
    # memoising wrappers around the very same calls, so both produce
    # bit-identical distances.  Both route through the frozen stores above
    # when ``use_kernels`` is on.
    # ------------------------------------------------------------------
    def _to_boundary(self, pid: int, vertex: int) -> Dict[int, float]:
        """Distances from ``vertex`` to its partition boundary (overridable)."""
        store = self._partition_store(pid)
        if store is not None:
            # LabelStore and ShortcutStore both answer the boundary fan-out
            # as one native batch (hoisted source / C-looped scalar search).
            boundary = sorted(self.partitioning.boundary(pid))
            return dict(zip(boundary, store.one_to_many(vertex, boundary)))
        return self.family.distances_to_boundary(pid, vertex)

    def query(self, source: int, target: int) -> float:
        self._require_built()
        if not self.graph.has_vertex(source):
            raise VertexNotFoundError(source)
        if not self.graph.has_vertex(target):
            raise VertexNotFoundError(target)
        return self._query_with(
            source, target, self._overlay_distance, self._to_boundary
        )

    def query_many(self, pairs: Iterable[Tuple[int, int]]) -> List[float]:
        """Batched queries sharing overlay/boundary lookups across the batch.

        One memo of overlay boundary-pair distances and one of
        vertex-to-boundary distance maps span the whole batch, so the
        concatenation lookups that dominate PSP queries — shared by every
        pair with the same (source-partition, target-partition) footprint —
        are paid once per distinct vertex/boundary pair instead of once per
        query pair.
        """
        self._require_built()
        pair_list = list(pairs)
        for source, target in pair_list:
            if not self.graph.has_vertex(source):
                raise VertexNotFoundError(source)
            if not self.graph.has_vertex(target):
                raise VertexNotFoundError(target)

        overlay_memo: Dict[Tuple[int, int], float] = {}
        overlay_query = self._overlay_distance

        def cached_overlay(bp: int, bq: int) -> float:
            key = (bp, bq)
            hit = overlay_memo.get(key)
            if hit is None:
                hit = overlay_query(bp, bq)
                overlay_memo[key] = hit
            return hit

        boundary_memo: Dict[Tuple[int, int], Dict[int, float]] = {}

        def cached_to_boundary(pid: int, vertex: int) -> Dict[int, float]:
            key = (pid, vertex)
            hit = boundary_memo.get(key)
            if hit is None:
                hit = self._to_boundary(pid, vertex)
                boundary_memo[key] = hit
            return hit

        # With a frozen overlay store, collapse the double loops over
        # boundary sets into one numpy broadcast over a memoised overlay
        # distance block per boundary-set pair (see _attach_vector_concat).
        if np is not None and self._overlay_store() is not None:
            self._attach_vector_concat(cached_overlay)

        return [
            self._query_with(source, target, cached_overlay, cached_to_boundary)
            for source, target in pair_list
        ]

    def _attach_vector_concat(self, overlay_query: Callable[[int, int], float]) -> None:
        """Equip the batch plane's overlay fetcher with vectorized combiners.

        ``concat_min`` and ``row_min`` evaluate the same candidates as the
        scalar concatenation loops — ``(d_s + overlay) + d_t`` in the same
        association order, minimised — over an overlay distance block fetched
        once per distinct boundary-set pair through the frozen store's native
        batch API, so results are bit-identical while the per-query Python
        cost drops from ``|B_s|·|B_t|`` loop iterations to one broadcast.
        """
        store = self._overlay_store()
        block_memo: Dict[Tuple, object] = {}

        def block(bs: Tuple[int, ...], bt: Tuple[int, ...]):
            hit = block_memo.get((bs, bt))
            if hit is None:
                hit = np.array(
                    [store.one_to_many(bp, bt) for bp in bs], dtype=np.float64
                )
                block_memo[(bs, bt)] = hit
            return hit

        def concat_min(source_map: Dict[int, float], target_map: Dict[int, float]) -> float:
            if not source_map or not target_map:
                return INF
            bs = tuple(source_map)
            bt = tuple(target_map)
            d_s = np.fromiter(source_map.values(), np.float64, len(bs))
            d_t = np.fromiter(target_map.values(), np.float64, len(bt))
            return float(np.min((d_s[:, None] + block(bs, bt)) + d_t[None, :]))

        def row_min(boundary_vertex: int, target_map: Dict[int, float]) -> float:
            if not target_map:
                return INF
            bt = tuple(target_map)
            hit = block_memo.get((boundary_vertex, bt))
            if hit is None:
                hit = np.asarray(
                    store.one_to_many(boundary_vertex, bt), dtype=np.float64
                )
                block_memo[(boundary_vertex, bt)] = hit
            d_t = np.fromiter(target_map.values(), np.float64, len(bt))
            return float(np.min(hit + d_t))

        overlay_query.concat_min = concat_min
        overlay_query.row_min = row_min

    def query_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """One-to-many batch: the source's boundary distances are fetched once."""
        return self.query_many([(source, target) for target in targets])

    def _query_with(
        self,
        source: int,
        target: int,
        overlay_query: Callable[[int, int], float],
        to_boundary: Callable[[int, int], Dict[int, float]],
    ) -> float:
        """Shared scalar/batch case analysis (Section III-C query cases)."""
        if source == target:
            return 0.0
        partitioning = self.partitioning
        pid_s = partitioning.partition_of(source)
        pid_t = partitioning.partition_of(target)
        boundary_s = partitioning.boundary(pid_s)
        boundary_t = partitioning.boundary(pid_t)
        source_is_boundary = source in boundary_s
        target_is_boundary = target in boundary_t

        if pid_s == pid_t:
            return self._same_partition_query(
                pid_s, source, target, overlay_query, to_boundary
            )
        if source_is_boundary and target_is_boundary:
            return overlay_query(source, target)
        if source_is_boundary:
            return self._boundary_to_inner(source, pid_t, target, overlay_query, to_boundary)
        if target_is_boundary:
            return self._boundary_to_inner(target, pid_s, source, overlay_query, to_boundary)
        return self._inner_to_inner(pid_s, source, pid_t, target, overlay_query, to_boundary)

    def _same_partition_query(
        self,
        pid: int,
        source: int,
        target: int,
        overlay_query: Callable[[int, int], float],
        to_boundary: Callable[[int, int], Dict[int, float]],
    ) -> float:
        """Same-partition query: local distance vs. detour through the overlay."""
        best = self._partition_distance(pid, source, target)
        source_to_boundary = to_boundary(pid, source)
        target_to_boundary = to_boundary(pid, target)
        concat_min = getattr(overlay_query, "concat_min", None)
        if concat_min is not None:
            detour = concat_min(source_to_boundary, target_to_boundary)
            return detour if detour < best else best
        for bp, d_s in source_to_boundary.items():
            if d_s == INF:
                continue
            for bq, d_t in target_to_boundary.items():
                if d_t == INF:
                    continue
                candidate = d_s + overlay_query(bp, bq) + d_t
                if candidate < best:
                    best = candidate
        return best

    def _boundary_to_inner(
        self,
        boundary_vertex: int,
        pid: int,
        inner: int,
        overlay_query: Callable[[int, int], float],
        to_boundary: Callable[[int, int], Dict[int, float]],
    ) -> float:
        """Query between a boundary vertex and a non-boundary vertex of partition ``pid``."""
        row_min = getattr(overlay_query, "row_min", None)
        if row_min is not None:
            return row_min(boundary_vertex, to_boundary(pid, inner))
        best = INF
        for bq, d_t in to_boundary(pid, inner).items():
            if d_t == INF:
                continue
            candidate = overlay_query(boundary_vertex, bq) + d_t
            if candidate < best:
                best = candidate
        return best

    def _inner_to_inner(
        self,
        pid_s: int,
        source: int,
        pid_t: int,
        target: int,
        overlay_query: Callable[[int, int], float],
        to_boundary: Callable[[int, int], Dict[int, float]],
    ) -> float:
        """Cross-partition query between two non-boundary vertices."""
        source_to_boundary = to_boundary(pid_s, source)
        target_to_boundary = to_boundary(pid_t, target)
        concat_min = getattr(overlay_query, "concat_min", None)
        if concat_min is not None:
            return concat_min(source_to_boundary, target_to_boundary)
        best = INF
        for bp, d_s in source_to_boundary.items():
            if d_s == INF:
                continue
            for bq, d_t in target_to_boundary.items():
                if d_t == INF:
                    continue
                candidate = d_s + overlay_query(bp, bq) + d_t
                if candidate < best:
                    best = candidate
        return best

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        self._require_built()
        report = UpdateReport()
        # Before any structure mutates (kernel staleness protocol).
        self.invalidate_kernels()

        with Timer() as timer:
            batch.apply(self.graph)
        self._emit_stage(report, StageTiming("edge_update", timer.seconds))

        partition_times, changed_boundary = self._update_partitions(batch, report)

        with Timer() as timer:
            inter_updates = [
                u
                for u in batch
                if self.partitioning.partition_of(u.u) != self.partitioning.partition_of(u.v)
            ]
            self.overlay.apply_updates(inter_updates, changed_boundary)
        self._emit_stage(report, StageTiming("overlay_update", timer.seconds))

        self.last_report = report
        return report

    def _update_partitions(
        self, batch: UpdateBatch, report: UpdateReport
    ) -> Tuple[List[float], Dict[Tuple[int, int], float]]:
        """Maintain the partition indexes; returns per-partition times and the
        boundary shortcuts whose values changed (for the overlay update)."""
        partitioning = self.partitioning
        per_partition: Dict[int, List] = {}
        for update in batch:
            pid_u = partitioning.partition_of(update.u)
            pid_v = partitioning.partition_of(update.v)
            if pid_u == pid_v:
                per_partition.setdefault(pid_u, []).append(update)

        partition_times: List[float] = []
        changed_boundary: Dict[Tuple[int, int], float] = {}
        for pid, updates in sorted(per_partition.items()):
            start = time.perf_counter()
            changed_edges = self.family.apply_edge_updates(pid, updates)
            changed_report = self.family.update_shortcuts(pid, changed_edges)
            self.family.update_labels(pid, changed_report.keys())
            boundary = partitioning.boundary(pid)
            for v, neighbours in changed_report.items():
                if v not in boundary:
                    continue
                for u in neighbours:
                    if u in boundary:
                        changed_boundary[(v, u)] = self.family.contractions[pid].shortcuts[v][u]
            partition_times.append(time.perf_counter() - start)

        self._emit_stage(report,
            StageTiming(
                "partition_update", sum(partition_times), parallel_times=partition_times
            )
        )
        return partition_times, changed_boundary

    # ------------------------------------------------------------------
    def vertex_partition(self, v: int) -> Optional[int]:
        if self.partitioning is None:
            return None
        return self.partitioning.partition_of(v)

    def index_size(self) -> int:
        self._require_built()
        return self.family.index_size() + self.overlay.index_size()

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> Dict[str, object]:
        """Partition assignment, global order, family and overlay structures.

        The overlay graph is stored explicitly (it is maintained
        incrementally and can legitimately differ from a fresh
        ``build_overlay_graph``); the per-partition graphs travel inside the
        family payload.
        """
        from repro.store import codec

        self._require_built()
        return {
            "partitioning": codec.pack_partitioning(self.partitioning, io),
            "order": io.put_ints(self.order),
            "family": codec.pack_family(self.family, io),
            "overlay": codec.pack_overlay(self.overlay, io),
        }

    def from_state(self, state: Dict[str, object], io) -> None:
        from repro.store import codec

        self.partitioning = codec.unpack_partitioning(
            state["partitioning"], io, self.graph
        )
        self.order = io.get_list(state["order"])
        self.family = codec.unpack_family(
            state["family"], io, self.partitioning, self.order
        )
        self.overlay = codec.unpack_overlay(
            state["overlay"], io, self.partitioning, self.family, self.order
        )

    def _kernel_exports(self):
        return {"overlay": self._overlay_store}


class NCHPIndex(NoBoundaryPSPIndex):
    """The paper's **N-CH-P** baseline: no-boundary PSP with DCH underlying."""

    name = "N-CH-P"

    def __init__(
        self,
        graph: Graph,
        num_partitions: int = 4,
        partitioning: Optional[Partitioning] = None,
        seed: int = 0,
    ):
        super().__init__(
            graph,
            num_partitions=num_partitions,
            underlying="ch",
            partitioning=partitioning,
            seed=seed,
        )


@register_spec
@dataclass(frozen=True)
class NCHPSpec(IndexSpec):
    """Construction spec for the N-CH-P baseline (no-boundary PSP, DCH underlying)."""

    method = "N-CH-P"
    aliases = ("NCHP",)
    config_fields = {"num_partitions": "partition_number", "seed": "seed"}

    #: Number of partitions ``k``.
    num_partitions: int = 4
    #: Partitioner seed.
    seed: int = 0

    def create(self, graph: Graph) -> NCHPIndex:
        return NCHPIndex(graph, num_partitions=self.num_partitions, seed=self.seed)
