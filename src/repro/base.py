"""Common interface of every shortest-distance index in the package.

The experiment harness treats all methods uniformly (BiDijkstra, DCH, DH2H,
N-CH-P, P-TD-P, TOAIN, PMHL, PostMHL): each exposes

* :meth:`DistanceIndex.build` — construct the index (records ``t_c``),
* :meth:`DistanceIndex.query` — answer a shortest-distance query (``t_q``),
* :meth:`DistanceIndex.query_many` / :meth:`DistanceIndex.query_one_to_many` —
  the batch query plane: answer many queries in one call, amortising
  per-query work where the index allows it,
* :meth:`DistanceIndex.apply_batch` — install a batch of edge-weight updates
  (``t_u``), returning a per-stage timing breakdown for the multi-stage
  methods, and
* :meth:`DistanceIndex.index_size` — number of stored index entries (``|L|``).

Sizes are reported as *entry counts* rather than bytes because pure-Python
object overhead would otherwise dominate and hide the paper's size ordering.

Frozen query kernels
--------------------

Every index additionally participates in the *frozen kernel* protocol (see
``repro.kernels``): after a build or update batch completes, the query-side
state can be frozen into flat-array stores that answer scalar and batch
queries without walking dict-of-dict structures.  The base class owns the
lifecycle — a per-index **kernel epoch** that update paths bump via
:meth:`DistanceIndex.invalidate_kernels`, and a per-epoch memo
(:meth:`DistanceIndex._kernel`) so each store is frozen at most once per
epoch.  The ``use_kernels`` flag (default on, settable through the registry
specs) switches an index between the frozen kernels and the pure-Python
reference path; both return bit-identical distances.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch

#: One ``(source, target)`` query pair of the batch query plane.
QueryPair = Tuple[int, int]

#: Sentinel distinguishing "not yet frozen" from a cached ``None`` (freeze
#: unsupported for this structure — e.g. numpy unavailable).
_UNFROZEN = object()


@dataclass
class StageTiming:
    """Wall-clock duration of one named update stage.

    ``parallel_times`` optionally carries the per-partition sequential times of
    a stage that the paper would run on parallel threads; the throughput
    evaluator converts them into a simulated parallel wall-clock (see
    ``repro.throughput.parallel``).
    """

    name: str
    seconds: float
    parallel_times: Optional[List[float]] = None


@dataclass
class UpdateReport:
    """Result of installing one update batch."""

    stages: List[StageTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Sequential wall-clock total over all stages."""
        return sum(stage.seconds for stage in self.stages)

    def stage_seconds(self, name: str) -> float:
        """Total seconds spent in stages with the given name."""
        return sum(stage.seconds for stage in self.stages if stage.name == name)


class Timer:
    """Minimal context-manager stopwatch used to record stage timings."""

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self.start


class DistanceIndex(abc.ABC):
    """Abstract base class of all shortest-distance indexes."""

    #: Human-readable method name used in experiment tables.
    name: str = "index"

    def __init__(self, graph: Graph):
        self.graph = graph
        self.build_seconds: float = 0.0
        self._built = False
        #: The :class:`~repro.registry.IndexSpec` this index was created from
        #: (set by ``create_index``); ``save_index`` persists its parameters.
        self.spec = None
        self._stage_listener: Optional[Callable[[StageTiming], None]] = None
        #: Frozen-kernel switch: ``True`` answers queries through the flat
        #: array stores of ``repro.kernels``; ``False`` keeps the pure-Python
        #: reference path.  Results are bit-identical either way.
        self.use_kernels: bool = True
        self._kernel_epoch = 0
        self._kernel_stores: Dict[str, object] = {}
        self._graph_snapshot_cache = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def build(self) -> float:
        """Construct the index; returns the construction time in seconds."""
        with obs.span(
            self.name.lower() + ".build",
            index=self.name,
            vertices=self.graph.num_vertices,
            edges=self.graph.num_edges,
        ):
            with Timer() as timer:
                self._build()
        self.build_seconds = timer.seconds
        self._built = True
        self.invalidate_kernels()
        if obs.is_enabled():
            registry = obs.registry()
            registry.counter(
                "repro_index_builds_total", "Completed index builds", index=self.name
            ).inc()
            registry.histogram(
                "repro_index_build_seconds", "Index construction wall time",
                index=self.name,
            ).record(timer.seconds)
            rss = obs.peak_rss_bytes()
            if rss is not None:
                registry.gauge(
                    "repro_index_build_peak_rss_bytes",
                    "Process peak RSS sampled right after the build",
                    index=self.name,
                ).set(rss)
        return self.build_seconds

    @abc.abstractmethod
    def _build(self) -> None:
        """Concrete construction logic."""

    @abc.abstractmethod
    def query(self, source: int, target: int) -> float:
        """Return the shortest distance between ``source`` and ``target``."""

    # ------------------------------------------------------------------
    # Batch query plane
    # ------------------------------------------------------------------
    def query_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Shortest distances from ``source`` to every vertex of ``targets``.

        The default implementation is a scalar loop over :meth:`query`, so it
        is always available and always agrees with the scalar path.  Indexes
        override it to amortise per-query work across the batch (fetching the
        source label once, sharing a single truncated search, …); overrides
        must return the same distances the scalar path returns.
        """
        return [self.query(source, target) for target in targets]

    def query_many(self, pairs: Iterable[QueryPair]) -> List[float]:
        """Shortest distances for many ``(source, target)`` pairs at once.

        Pairs are grouped by source and each group is answered through
        :meth:`query_one_to_many`, so any index that amortises the
        one-to-many case speeds up arbitrary batches for free.  Results are
        returned in input order.  With the default scalar
        :meth:`query_one_to_many` this is exactly the scalar loop.
        """
        pair_list = list(pairs)
        by_source: Dict[int, List[int]] = {}
        for position, (source, _target) in enumerate(pair_list):
            by_source.setdefault(source, []).append(position)
        results: List[float] = [0.0] * len(pair_list)
        for source, positions in by_source.items():
            distances = self.query_one_to_many(
                source, [pair_list[position][1] for position in positions]
            )
            for position, distance in zip(positions, distances):
                results[position] = distance
        return results

    def apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        """Apply a batch of edge-weight updates to the graph and the index.

        Template method: the per-method maintenance logic lives in
        :meth:`_apply_batch`; this wrapper owns the cross-cutting concerns —
        currently the ``<method>.apply_batch`` tracing span that every
        per-stage span nests under (see ``repro.obs``).
        """
        if not obs.is_enabled():
            return self._apply_batch(batch)
        with obs.span(
            self.name.lower() + ".apply_batch", index=self.name, updates=len(batch)
        ):
            return self._apply_batch(batch)

    @abc.abstractmethod
    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        """Concrete maintenance logic of :meth:`apply_batch`."""

    @abc.abstractmethod
    def index_size(self) -> int:
        """Number of stored index entries (labels + shortcuts)."""

    # ------------------------------------------------------------------
    # Serving hooks
    # ------------------------------------------------------------------
    def set_stage_listener(
        self, listener: Optional[Callable[[StageTiming], None]]
    ) -> None:
        """Install (or clear, with ``None``) the update-stage listener.

        The listener is invoked from within :meth:`apply_batch`, on the thread
        running the update, immediately after each stage completes — i.e. at a
        point where the structures maintained by that stage are internally
        consistent.  The serving engine uses this to publish query-stage
        availability epochs while a batch is still being installed.
        """
        self._stage_listener = listener

    def _emit_stage(self, report: UpdateReport, timing: StageTiming) -> None:
        """Record a finished update stage and notify the stage listener."""
        report.stages.append(timing)
        if obs.is_enabled():
            # Back-dated by its duration, the stage span sits inside the
            # enclosing ``<method>.apply_batch`` span's window.
            obs.record_span(
                self.name.lower() + ".apply_batch." + timing.name,
                timing.seconds,
                index=self.name,
                stage=timing.name,
            )
            obs.registry().counter(
                "repro_update_stages_total", "Completed apply_batch stages",
                index=self.name, stage=timing.name,
            ).inc()
        if self._stage_listener is not None:
            self._stage_listener(timing)

    def vertex_partition(self, v: int) -> Optional[int]:
        """Partition id of ``v``, or ``None`` for unpartitioned indexes.

        Partitioned indexes (PMHL, PostMHL, the PSP baselines) override this;
        the serving engine's distance cache uses it to tag entries so an
        update batch only evicts the partitions it touches.  ``None`` also
        denotes overlay vertices of indexes whose overlay lives outside every
        partition (PostMHL).
        """
        return None

    # ------------------------------------------------------------------
    # Frozen query kernels (see repro.kernels)
    # ------------------------------------------------------------------
    @property
    def kernel_epoch(self) -> int:
        """Monotonic counter of kernel invalidations (one per build/update)."""
        return self._kernel_epoch

    def invalidate_kernels(self) -> None:
        """Drop every frozen store; the next query refreezes lazily.

        Called by :meth:`build` and at the *start* of every ``apply_batch``
        (before any structure is mutated), so no query can ever read a store
        frozen from pre-update state.  The serving engine additionally calls
        this when it opens a new epoch, keying freezes to its epoch counter.
        """
        self._kernel_epoch += 1
        self._kernel_stores.clear()
        self._graph_snapshot_cache = None
        if obs.is_enabled():
            obs.registry().counter(
                "repro_kernel_invalidations_total",
                "Kernel-epoch bumps (one per build/update/serving epoch)",
                index=self.name,
            ).inc()

    def _kernel(self, key: str, builder: Callable[[], object]):
        """Per-epoch memo of one frozen store.

        ``builder()`` runs at most once per kernel epoch per ``key``; a
        ``None`` result (freeze unsupported — e.g. numpy unavailable) is
        cached too so unsupported structures don't retry on every query.
        Returns ``None`` whenever ``use_kernels`` is off.
        """
        if not self.use_kernels:
            return None
        entry = self._kernel_stores.get(key, _UNFROZEN)
        if entry is _UNFROZEN:
            if obs.is_enabled():
                with obs.span("kernels.freeze." + key, index=self.name, store=key):
                    entry = builder()
                obs.registry().counter(
                    "repro_kernel_freezes_total",
                    "Frozen-store builds (label 'frozen' distinguishes "
                    "successful freezes from unsupported ones)",
                    index=self.name, store=key, frozen=entry is not None,
                ).inc()
            else:
                entry = builder()
            self._kernel_stores[key] = entry
        return entry

    def _graph_snapshot(self):
        """CSR snapshot of the live graph for index-free searches.

        Self-invalidating: keyed to ``graph.version`` rather than the kernel
        epoch, so out-of-band graph mutation (e.g. a caller editing the graph
        directly) can never be served from a stale snapshot.
        """
        if not self.use_kernels:
            return None
        snapshot = self._graph_snapshot_cache
        if snapshot is None or not snapshot.is_fresh(self.graph):
            from repro.kernels.graph_snapshot import GraphSnapshot

            snapshot = GraphSnapshot.freeze(self.graph)
            self._graph_snapshot_cache = snapshot
        return snapshot

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> Dict[str, object]:
        """Serialize the built index state into a payload writer.

        ``io`` is a :class:`repro.store.arrays.ArrayWriter`; implementations
        compose the shared serializers of :mod:`repro.store.codec` and return
        a JSON-able tree with embedded array references.  Everything the
        query *and* maintenance paths read must be captured — a loaded index
        answers queries bit-identically and accepts ``apply_batch`` exactly
        like the original.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement snapshot persistence"
        )

    def from_state(self, state: Dict[str, object], io) -> None:
        """Restore the structures serialized by :meth:`to_state`.

        Called on a freshly created (unbuilt) index whose ``graph`` already
        carries the snapshot's edge weights; ``io`` is an array reader over
        the snapshot payload.  ``save_index``/``load_index`` own the
        surrounding lifecycle (built flag, kernel epoch, store reattachment).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement snapshot persistence"
        )

    def _kernel_exports(self) -> Dict[str, Callable[[], object]]:
        """Frozen stores worth persisting: ``{memo key: freezer}``.

        ``save_index`` calls each freezer (forcing a freeze of the current
        epoch if necessary) and writes the resulting store's arrays next to
        the index state, so a loaded index answers its first query through
        reattached stores instead of paying a re-freeze.  The base class
        persists nothing; indexes override this with the stores behind their
        default query path.
        """
        return {}

    def _attach_kernel(self, key: str, store: object) -> None:
        """Install a reattached frozen store under the current kernel epoch."""
        if key == "__graph__":
            self._graph_snapshot_cache = store
        else:
            self._kernel_stores[key] = store

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        return self._built

    def describe(self) -> Dict[str, object]:
        """Small summary dictionary used by the experiment reports."""
        return {
            "name": self.name,
            "build_seconds": self.build_seconds,
            "index_size": self.index_size() if self._built else 0,
        }
