"""Constant-time Lowest Common Ancestor oracle (Euler tour + sparse table).

H2H-style query processing needs one LCA per query, so the oracle is built
once per tree (O(n log n) preprocessing) and answered in O(1), following the
classic reduction of LCA to range-minimum queries [Bender & Farach-Colton].
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import GraphError


class LCAOracle:
    """LCA oracle over a rooted tree (or forest) given as parent/children maps.

    For a forest the Euler tours of the individual trees are concatenated;
    queries are only valid within one tree (callers check components first).
    """

    def __init__(
        self,
        parent: Dict[int, Optional[int]],
        children: Dict[int, List[int]],
        roots,
        depth: Dict[int, int],
    ):
        if isinstance(roots, int):
            roots = [roots]
        self._depth = depth
        euler: List[int] = []
        first: Dict[int, int] = {}

        # Iterative Euler tour (one per root) to avoid recursion limits.
        for root in roots:
            stack: List[tuple] = [(root, iter(children[root]))]
            euler.append(root)
            first[root] = len(euler) - 1
            while stack:
                vertex, child_iter = stack[-1]
                child = next(child_iter, None)
                if child is None:
                    stack.pop()
                    if stack:
                        euler.append(stack[-1][0])
                    continue
                euler.append(child)
                first.setdefault(child, len(euler) - 1)
                stack.append((child, iter(children[child])))

        if len(first) != len(parent):
            raise GraphError("LCA oracle: Euler tour did not visit every vertex")

        self._euler = euler
        self._first = first
        self._build_sparse_table()

    def _build_sparse_table(self) -> None:
        euler = self._euler
        depth = self._depth
        n = len(euler)
        log = [0] * (n + 1)
        for i in range(2, n + 1):
            log[i] = log[i // 2] + 1
        self._log = log
        table: List[List[int]] = [list(range(n))]
        k = 1
        while (1 << k) <= n:
            previous = table[k - 1]
            span = 1 << (k - 1)
            row = []
            for i in range(n - (1 << k) + 1):
                left = previous[i]
                right = previous[i + span]
                row.append(left if depth[euler[left]] <= depth[euler[right]] else right)
            table.append(row)
            k += 1
        self._table = table

    def query(self, u: int, v: int) -> int:
        """Return the LCA of ``u`` and ``v``."""
        if u not in self._first:
            raise GraphError(f"vertex {u} is not part of this tree")
        if v not in self._first:
            raise GraphError(f"vertex {v} is not part of this tree")
        left, right = self._first[u], self._first[v]
        if left > right:
            left, right = right, left
        k = self._log[right - left + 1]
        euler = self._euler
        depth = self._depth
        a = self._table[k][left]
        b = self._table[k][right - (1 << k) + 1]
        return euler[a] if depth[euler[a]] <= depth[euler[b]] else euler[b]
