"""Tree decomposition built on top of an MDE contraction.

Definition 1 of the paper: every vertex ``v`` owns a tree node
``X(v) = {v} ∪ X(v).N`` where ``X(v).N`` are the neighbours of ``v`` in the
contracted graph at the moment of ``v``'s contraction.  ``X(u)`` is the parent
of ``X(v)`` when ``u`` is the lowest-rank vertex of ``X(v).N``.

The resulting rooted tree is what H2H, MHL, PMHL and PostMHL hang their
distance/position/boundary arrays on.  This module only captures the
*structure* (parents, children, depths, ancestor chains, subtree sizes) plus a
constant-time LCA oracle; the label arrays live with the individual indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.exceptions import GraphError
from repro.treedec.lca import LCAOracle
from repro.treedec.mde import ContractionResult


@dataclass
class TreeDecomposition:
    """Rooted tree decomposition derived from a contraction result.

    Attributes
    ----------
    contraction:
        The underlying :class:`ContractionResult` (owns shortcut arrays).
    root:
        The highest-rank vertex (contracted last).
    parent:
        ``parent[v]`` is the parent vertex of ``v`` (``None`` for the root).
    children:
        ``children[v]`` lists the children of ``v``.
    depth:
        ``depth[v]`` is the number of proper ancestors of ``v`` (root = 0).
    ancestors:
        ``ancestors[v]`` is ``X(v).A``: the vertex chain from the root down to
        and *including* ``v`` (so ``ancestors[v][-1] == v``), matching the
        paper's distance-array convention where the last entry is 0.
    """

    contraction: ContractionResult
    root: int
    roots: List[int] = field(default_factory=list)
    parent: Dict[int, Optional[int]] = field(default_factory=dict)
    children: Dict[int, List[int]] = field(default_factory=dict)
    depth: Dict[int, int] = field(default_factory=dict)
    ancestors: Dict[int, List[int]] = field(default_factory=dict)
    component: Dict[int, int] = field(default_factory=dict)
    #: Bumped whenever the tree *structure* is (re)computed; memoised
    #: traversal orders and frozen kernel layouts key off this counter.
    structure_version: int = 0
    _lca: Optional[LCAOracle] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_contraction(
        cls, contraction: ContractionResult, allow_forest: bool = False
    ) -> "TreeDecomposition":
        """Build the tree from a contraction.

        By default the contraction must come from a connected graph (a single
        tree); pass ``allow_forest=True`` to accept one tree per connected
        component, which is what the partition indexes need when a partition
        subgraph is internally disconnected.
        """
        if not contraction.order:
            raise GraphError("cannot build a tree decomposition from an empty contraction")
        rank = contraction.rank
        parent: Dict[int, Optional[int]] = {}
        children: Dict[int, List[int]] = {v: [] for v in contraction.order}
        roots: List[int] = []
        for v in contraction.order:
            nbrs = contraction.neighbors[v]
            if not nbrs:
                parent[v] = None
                roots.append(v)
                continue
            p = min(nbrs, key=lambda u: rank[u])
            parent[v] = p
            children[p].append(v)
        if len(roots) != 1 and not allow_forest:
            raise GraphError(
                f"tree decomposition requires a connected graph; found {len(roots)} roots"
            )

        tree = cls(
            contraction=contraction,
            root=roots[-1],
            roots=roots,
            parent=parent,
            children=children,
        )
        tree._compute_depths_and_ancestors()
        return tree

    def _compute_depths_and_ancestors(self) -> None:
        """Fill depth and ancestor chains with an explicit top-down traversal."""
        self.depth = {}
        self.ancestors = {}
        self.component = {}
        order: List[int] = []
        for component_id, root in enumerate(self.roots):
            stack = [root]
            self.depth[root] = 0
            self.ancestors[root] = [root]
            self.component[root] = component_id
            while stack:
                v = stack.pop()
                order.append(v)
                for child in self.children[v]:
                    self.depth[child] = self.depth[v] + 1
                    self.ancestors[child] = self.ancestors[v] + [child]
                    self.component[child] = component_id
                    stack.append(child)
        if len(order) != len(self.contraction.order):
            raise GraphError("tree traversal did not reach every vertex")
        # Structural change: invalidate every structure-keyed memo (traversal
        # orders, the LCA oracle, frozen kernel layouts).
        self._topdown_order = tuple(order)
        self._bottomup_order = tuple(reversed(order))
        self.structure_version += 1
        self._lca = None
        self._kernel_layout = None

    # ------------------------------------------------------------------
    # Queries on the structure
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.parent)

    @property
    def height(self) -> int:
        """Tree height (max number of nodes on a root-to-leaf path)."""
        return max(self.depth.values()) + 1 if self.depth else 0

    @property
    def treewidth(self) -> int:
        """Width of the decomposition (max neighbour-set size)."""
        return self.contraction.treewidth_upper_bound

    def top_down_order(self) -> Sequence[int]:
        """Vertices in an order where every parent precedes its children.

        Memoised: returns the cached (immutable) tuple rather than a fresh
        list — ``H2HLabels.build`` and the partial-rebuild paths call this on
        every (re)construction, so the per-call O(n) copy was pure waste.
        The memo is invalidated by :meth:`_compute_depths_and_ancestors`,
        the single place the tree structure changes.
        """
        return self._topdown_order

    def bottom_up_order(self) -> Sequence[int]:
        """Vertices in an order where every child precedes its parent (memoised)."""
        return self._bottomup_order

    def neighbors(self, v: int) -> List[int]:
        """``X(v).N`` — the tree-node neighbour set of ``v``."""
        return self.contraction.neighbors[v]

    def shortcut(self, v: int, u: int) -> float:
        """Current shortcut value ``sc(v, u)`` for ``u in X(v).N``."""
        return self.contraction.shortcuts[v][u]

    def subtree(self, v: int) -> Iterator[int]:
        """Iterate over the subtree rooted at ``v`` (including ``v``), top-down."""
        stack = [v]
        while stack:
            x = stack.pop()
            yield x
            stack.extend(self.children[x])

    def subtree_sizes(self) -> Dict[int, int]:
        """Number of descendants (including self) for every vertex."""
        sizes = {v: 1 for v in self.parent}
        for v in self.bottom_up_order():
            p = self.parent[v]
            if p is not None:
                sizes[p] += sizes[v]
        return sizes

    def is_ancestor(self, u: int, v: int) -> bool:
        """Return ``True`` if ``u`` is an ancestor of ``v`` (or equal)."""
        if self.component[u] != self.component[v]:
            return False
        return self.lca(u, v) == u

    def same_component(self, u: int, v: int) -> bool:
        """Return ``True`` if both vertices belong to the same tree of the forest."""
        return self.component[u] == self.component[v]

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v`` (same component required)."""
        if self.component[u] != self.component[v]:
            raise GraphError(
                f"vertices {u} and {v} are in different components; no common ancestor"
            )
        if self._lca is None:
            self._lca = LCAOracle(self.parent, self.children, self.roots, self.depth)
        return self._lca.query(u, v)

    def branch_roots(self, vertices: Sequence[int]) -> List[int]:
        """Return the shallowest vertices of ``vertices`` with no proper ancestor in the set.

        This is the "representative / branch root" selection used by the label
        update phases (U-Stage 3/5 of PMHL, U-Stage 3-5 of PostMHL): updating
        the subtrees rooted at the branch roots covers every affected vertex
        exactly once.
        """
        vertex_set = set(vertices)
        roots: List[int] = []
        for v in sorted(vertex_set, key=lambda x: self.depth[x]):
            ancestor_in_set = False
            u = self.parent[v]
            while u is not None:
                if u in vertex_set:
                    ancestor_in_set = True
                    break
                u = self.parent[u]
            if not ancestor_in_set:
                roots.append(v)
        return roots
