"""Tree decomposition substrate: MDE contraction, tree structure, LCA oracle."""

from repro.treedec.lca import LCAOracle
from repro.treedec.mde import (
    ContractionResult,
    contract_graph,
    mde_order,
    recompute_shortcut,
    update_shortcuts_bottom_up,
)
from repro.treedec.tree import TreeDecomposition

__all__ = [
    "ContractionResult",
    "contract_graph",
    "mde_order",
    "recompute_shortcut",
    "update_shortcuts_bottom_up",
    "TreeDecomposition",
    "LCAOracle",
]
