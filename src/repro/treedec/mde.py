"""Minimum Degree Elimination (MDE) vertex contraction.

MDE is the shared substrate of the hierarchy-based (CH/DCH) and hop-based
(H2H/DH2H/MHL) indexes: it contracts vertices one by one, inserting all-pair
shortcuts among the contracted vertex's current neighbours, and thereby
produces

* a vertex order ``r`` (ascending contraction order = ascending importance),
* the neighbour set ``X(v).N`` and shortcut array ``X(v).sc`` of every tree
  node, and
* *supporter* records: for every shortcut pair ``(u, w)`` the list of lower
  vertices whose contraction contributed the value ``sc(x, u) + sc(x, w)``.
  Supporters are what make bottom-up dynamic maintenance (DCH / the shortcut
  phase of DH2H) possible for both weight increases and decreases.

The contraction can be driven by the classic minimum-degree heuristic, by a
caller-specified fixed order, or by a *tiered* minimum-degree rule (contract
all tier-0 vertices before any tier-1 vertex, and so on), which is how the
boundary-first property of PSP indexes is realised.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graph.graph import Graph

INF = math.inf


def _pair_key(u: int, w: int) -> Tuple[int, int]:
    """Canonical unordered pair key."""
    return (u, w) if u < w else (w, u)


@dataclass
class ContractionResult:
    """Everything produced by one MDE contraction pass.

    Attributes
    ----------
    order:
        ``order[i]`` is the vertex contracted in round ``i`` (ascending rank).
    rank:
        ``rank[v]`` is the contraction round of ``v``; higher rank = more
        important (contracted later).
    neighbors:
        ``neighbors[v]`` is ``X(v).N``: the neighbours of ``v`` in the
        contracted graph at the moment ``v`` was contracted.  All of them have
        higher rank than ``v``.
    shortcuts:
        ``shortcuts[v][u]`` is ``sc(v, u)`` for ``u in neighbors[v]``.
    supporters:
        ``supporters[(u, w)]`` (canonical pair) lists the vertices whose
        contraction created/supported the shortcut between ``u`` and ``w``.
    base_edges:
        ``base_edges[(u, w)]`` is the original graph weight of ``(u, w)`` at
        build time (used to detect which pairs are real edges).
    """

    order: List[int] = field(default_factory=list)
    rank: Dict[int, int] = field(default_factory=dict)
    neighbors: Dict[int, List[int]] = field(default_factory=dict)
    shortcuts: Dict[int, Dict[int, float]] = field(default_factory=dict)
    supporters: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    base_edges: Dict[Tuple[int, int], float] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        return len(self.order)

    @property
    def treewidth_upper_bound(self) -> int:
        """Width of the elimination ordering (max neighbour-set size)."""
        if not self.neighbors:
            return 0
        return max(len(n) for n in self.neighbors.values())

    def shortcut_count(self) -> int:
        """Total number of (vertex, higher neighbour) shortcut entries."""
        return sum(len(n) for n in self.neighbors.values())

    def owner(self, u: int, w: int) -> int:
        """Return the lower-rank endpoint, which owns the shortcut ``(u, w)``."""
        return u if self.rank[u] < self.rank[w] else w

    def shortcut_value(self, u: int, w: int) -> float:
        """Current value of shortcut ``(u, w)`` regardless of endpoint order."""
        low = self.owner(u, w)
        high = w if low == u else u
        return self.shortcuts[low].get(high, INF)


def mde_order(graph: Graph, tiers: Optional[Dict[int, int]] = None) -> List[int]:
    """Compute a (tiered) minimum-degree elimination order without shortcuts.

    ``tiers[v]`` (default 0) groups vertices; all vertices of a lower tier are
    eliminated before any vertex of a higher tier.  Within a tier the vertex
    with the minimum current degree is eliminated first (ties broken by id for
    determinism).
    """
    return contract_graph(graph, tiers=tiers).order


def contract_graph(
    graph: Graph,
    order: Optional[Sequence[int]] = None,
    tiers: Optional[Dict[int, int]] = None,
) -> ContractionResult:
    """Contract every vertex of ``graph`` and record shortcuts and supporters.

    Parameters
    ----------
    graph:
        Graph to contract.  It is not modified.
    order:
        Optional explicit contraction order covering every vertex.  When
        omitted the (tiered) minimum-degree heuristic decides the order.
    tiers:
        Optional tier map used only when ``order`` is omitted; lower tiers are
        contracted first (this realises the boundary-first property when
        boundary vertices are given a higher tier).
    """
    if graph.num_vertices == 0:
        raise GraphError("cannot contract an empty graph")
    if order is not None and len(set(order)) != graph.num_vertices:
        raise GraphError(
            f"explicit order must cover all {graph.num_vertices} vertices exactly once"
        )

    # Working adjacency (contracted graph G_i).
    work: Dict[int, Dict[int, float]] = {
        v: dict(graph.neighbors(v)) for v in graph.vertices()
    }
    result = ContractionResult()
    for u, v, w in graph.edges():
        result.base_edges[_pair_key(u, v)] = w

    if order is not None:
        sequence = list(order)
        selector = None
    else:
        sequence = None
        tier_of = tiers or {}
        # Lazy-deletion heap keyed by (tier, degree, vertex-id).
        heap: List[Tuple[int, int, int]] = [
            (tier_of.get(v, 0), len(work[v]), v) for v in work
        ]
        heapq.heapify(heap)

        def selector() -> int:
            while heap:
                tier, degree, v = heapq.heappop(heap)
                if v not in work:
                    continue
                if degree != len(work[v]) or tier != tier_of.get(v, 0):
                    continue  # stale entry
                return v
            raise GraphError("contraction heap exhausted before all vertices were contracted")

    contracted_count = 0
    total = graph.num_vertices
    while contracted_count < total:
        if sequence is not None:
            v = sequence[contracted_count]
            if v not in work:
                raise GraphError(f"vertex {v} appears twice in the contraction order")
        else:
            v = selector()

        nbrs = work[v]
        nbr_list = sorted(nbrs)
        result.order.append(v)
        result.rank[v] = contracted_count
        result.neighbors[v] = nbr_list
        result.shortcuts[v] = {u: nbrs[u] for u in nbr_list}

        # Insert all-pair shortcuts among the neighbours and record support.
        for i, u in enumerate(nbr_list):
            du = nbrs[u]
            for w_vertex in nbr_list[i + 1 :]:
                dw = nbrs[w_vertex]
                through = du + dw
                key = _pair_key(u, w_vertex)
                result.supporters.setdefault(key, []).append(v)
                current = work[u].get(w_vertex, INF)
                if through < current:
                    work[u][w_vertex] = through
                    work[w_vertex][u] = through
                elif w_vertex not in work[u]:
                    work[u][w_vertex] = through
                    work[w_vertex][u] = through

        # Remove v from the working graph.
        for u in nbr_list:
            del work[u][v]
            if sequence is None:
                heapq.heappush(heap, (tier_of.get(u, 0) if tiers else 0, len(work[u]), u))
        del work[v]
        contracted_count += 1

    return result


def recompute_shortcut(
    result: ContractionResult,
    graph: Graph,
    v: int,
    u: int,
) -> float:
    """Recompute ``sc(v, u)`` from the current graph weight and supporter values.

    ``v`` must be the owner (lower-rank endpoint).  Supporters all have lower
    rank than ``v``, so when vertices are processed in ascending rank order
    their shortcut values are already up to date.
    """
    key = _pair_key(v, u)
    value = graph.edge_weight_or(v, u, INF)
    for x in result.supporters.get(key, ()):  # x has lower rank than both v and u
        sc_xv = result.shortcuts[x].get(v, INF)
        sc_xu = result.shortcuts[x].get(u, INF)
        candidate = sc_xv + sc_xu
        if candidate < value:
            value = candidate
    return value


def update_shortcuts_bottom_up(
    result: ContractionResult,
    graph: Graph,
    changed_edges: Sequence[Tuple[int, int]],
    restrict_to: Optional[set] = None,
    escaped_out: Optional[set] = None,
    seed_vertices: Optional[Sequence[int]] = None,
) -> Dict[int, List[int]]:
    """Bottom-up shortcut maintenance after edge-weight updates (DCH core).

    The graph must already carry the *new* weights.  Processes vertices in
    ascending rank order starting from the owners of the changed edges; for
    every dirty vertex all of its shortcuts are recomputed from base weight and
    supporter contributions, and any change is propagated to the owners of the
    shortcut pairs the vertex supports.

    Parameters
    ----------
    restrict_to:
        Optional vertex set; propagation never leaves this set.  Used by the
        PSP indexes to confine partition-level maintenance to one partition.
    escaped_out:
        Optional set collecting vertices *outside* ``restrict_to`` that would
        have been marked dirty (either directly by a changed edge they own or
        by propagation).  The caller uses them as seeds for a later pass over
        the remaining vertices (e.g. the overlay pass of PostMHL's U-Stage 2).
    seed_vertices:
        Optional extra vertices marked dirty from the start (typically the
        ``escaped_out`` set collected by earlier restricted passes).

    Returns
    -------
    dict
        Mapping of vertex to the list of its neighbours whose shortcut value
        changed (the "affected shortcut" report consumed by the label-update
        phase and by the overlay update).
    """
    dirty: set = set()
    for a, b in changed_edges:
        if a not in result.rank or b not in result.rank:
            continue
        owner = result.owner(a, b)
        if restrict_to is not None and owner not in restrict_to:
            if escaped_out is not None:
                escaped_out.add(owner)
            continue
        dirty.add(owner)
    if seed_vertices is not None:
        for v in seed_vertices:
            if v not in result.rank:
                continue
            if restrict_to is not None and v not in restrict_to:
                if escaped_out is not None:
                    escaped_out.add(v)
                continue
            dirty.add(v)

    changed_report: Dict[int, List[int]] = {}
    if not dirty:
        return changed_report

    heap: List[Tuple[int, int]] = [(result.rank[v], v) for v in dirty]
    heapq.heapify(heap)
    queued = set(dirty)

    while heap:
        _, v = heapq.heappop(heap)
        queued.discard(v)
        changed_neighbors: List[int] = []
        for u in result.neighbors[v]:
            new_value = recompute_shortcut(result, graph, v, u)
            if new_value != result.shortcuts[v][u]:
                result.shortcuts[v][u] = new_value
                changed_neighbors.append(u)
        if not changed_neighbors:
            continue
        changed_report[v] = changed_neighbors
        # Shortcut changes of v alter v's supporting contribution to pairs
        # (u, w) with u, w in X(v).N; mark the owners of the pairs involving a
        # changed neighbour as dirty.
        nbr_list = result.neighbors[v]
        for u in changed_neighbors:
            for w_vertex in nbr_list:
                if w_vertex == u:
                    continue
                owner = result.owner(u, w_vertex)
                if restrict_to is not None and owner not in restrict_to:
                    if escaped_out is not None:
                        escaped_out.add(owner)
                    continue
                if owner not in queued:
                    queued.add(owner)
                    heapq.heappush(heap, (result.rank[owner], owner))
    return changed_report
