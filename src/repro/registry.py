"""Typed index specs and the method registry/factory.

Construction of the paper's methods used to be scattered across nine
heterogeneous constructors plus a string-keyed dispatch table in
``repro.experiments.methods``.  This module replaces that with a uniform,
typed surface:

* :class:`IndexSpec` — one frozen dataclass per method carrying its typed
  construction parameters (partitions, bandwidth, seed, …).  A spec is an
  immutable recipe: ``spec.create(graph)`` instantiates the (unbuilt) index.
* :func:`register_spec` — decorator through which every index module
  registers its own spec class; the registry never hard-codes a dispatch
  table, it is populated by the index implementations themselves.
* :func:`create_index` — the factory every experiment driver, benchmark and
  example goes through: accepts a spec instance *or* a method name plus
  keyword overrides.

The registry is lazily populated: looking a method up imports the index
modules listed in :data:`SPEC_MODULES` (each of which self-registers), so
``from repro.registry import create_index`` works without importing the whole
``repro`` package first.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, fields, replace
from typing import ClassVar, Dict, List, Mapping, Tuple, Type, Union

from repro.base import DistanceIndex
from repro.graph.graph import Graph

# Persistence is part of the registry surface: a spec is the construction
# recipe, a snapshot the construction *result* — save/load live in
# repro.store and are re-exported here verbatim (single signature source).
from repro.store import load_index as load_index, save_index as save_index


@dataclass(frozen=True)
class IndexSpec:
    """Typed, immutable construction recipe for one index method.

    Subclasses declare

    * ``method`` — the canonical method name (as the paper's figures spell
      it),
    * ``aliases`` — optional alternative lookup names,
    * ``config_fields`` — a ``{spec_field: config_attribute}`` mapping used
      by :func:`spec_from_config` to bind an experiment configuration to the
      spec without this module depending on ``repro.experiments``,

    plus one dataclass field per constructor parameter and a :meth:`create`
    building the (unbuilt) index on a graph.
    """

    #: Canonical method name (class attribute, not a dataclass field).
    method: ClassVar[str] = "index"
    #: Alternative lookup names accepted by :func:`get_spec`.
    aliases: ClassVar[Tuple[str, ...]] = ()
    #: ``{spec_field: config_attribute}`` binding for :func:`spec_from_config`.
    config_fields: ClassVar[Mapping[str, str]] = {}

    #: Answer queries through the frozen flat-array kernels of
    #: ``repro.kernels`` (default).  ``False`` keeps the pure-Python
    #: reference path; results are bit-identical either way.
    use_kernels: bool = True

    def create(self, graph: Graph) -> DistanceIndex:
        """Instantiate (but do not build) the index on ``graph``."""
        raise NotImplementedError

    def replace(self, **overrides: object) -> "IndexSpec":
        """A copy of this spec with ``overrides`` applied (validated)."""
        _check_overrides(type(self), overrides)
        return replace(self, **overrides)


#: Modules whose import self-registers their spec classes, in the order the
#: paper's figures list the methods (plus MHL, which the paper embeds inside
#: PMHL/PostMHL rather than comparing directly).
SPEC_MODULES: Tuple[str, ...] = (
    "repro.baselines.bidijkstra_index",
    "repro.hierarchy.ch",
    "repro.labeling.h2h",
    "repro.labeling.mhl",
    "repro.baselines.toain",
    "repro.psp.no_boundary",
    "repro.psp.post_boundary",
    "repro.core.pmhl",
    "repro.core.postmhl",
)

#: The eight methods the paper's evaluation compares, in figure order.
PAPER_METHODS: Tuple[str, ...] = (
    "BiDijkstra",
    "DCH",
    "DH2H",
    "TOAIN",
    "N-CH-P",
    "P-TD-P",
    "PMHL",
    "PostMHL",
)

_REGISTRY: Dict[str, Type[IndexSpec]] = {}
_ALIASES: Dict[str, str] = {}
_loaded = False


def register_spec(cls: Type[IndexSpec]) -> Type[IndexSpec]:
    """Class decorator: register an :class:`IndexSpec` subclass by name."""
    _REGISTRY[cls.method] = cls
    for alias in (cls.method, *cls.aliases):
        _ALIASES[alias.lower()] = cls.method
    return cls


def _ensure_loaded() -> None:
    global _loaded
    if not _loaded:
        for module in SPEC_MODULES:
            importlib.import_module(module)
        _loaded = True


def _check_overrides(cls: Type[IndexSpec], overrides: Mapping[str, object]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        accepted = ", ".join(sorted(known)) or "(none)"
        raise TypeError(
            f"{cls.method} spec has no parameter(s) {unknown}; accepted: {accepted}"
        )


def spec_class(name: str) -> Type[IndexSpec]:
    """The registered spec class for ``name`` (case-insensitive, aliases ok)."""
    _ensure_loaded()
    canonical = _ALIASES.get(str(name).lower())
    if canonical is None:
        known = ", ".join(registered_methods())
        raise ValueError(f"unknown method {name!r}; known methods: {known}")
    return _REGISTRY[canonical]


def get_spec(name: str, **params: object) -> IndexSpec:
    """A spec instance for method ``name`` with ``params`` applied."""
    cls = spec_class(name)
    _check_overrides(cls, params)
    return cls(**params)


def create_index(
    spec_or_name: Union[IndexSpec, str], graph: Graph, **overrides: object
) -> DistanceIndex:
    """Instantiate (but do not build) an index from a spec or method name.

    ``spec_or_name`` is either an :class:`IndexSpec` instance or a registered
    method name; ``overrides`` replace individual spec parameters either way::

        index = create_index("PMHL", graph, num_partitions=8, seed=7)
        index = create_index(PostMHLSpec(bandwidth=16), graph)
    """
    if isinstance(spec_or_name, IndexSpec):
        spec = spec_or_name.replace(**overrides) if overrides else spec_or_name
    else:
        spec = get_spec(spec_or_name, **overrides)
    index = spec.create(graph)
    # The kernel switch is carried by the base spec so every method gets it
    # without each concrete ``create`` having to forward it; the spec itself
    # rides along so ``save_index`` can persist the construction recipe.
    index.use_kernels = spec.use_kernels
    index.spec = spec
    return index


def registered_methods() -> List[str]:
    """Canonical names of every registered method, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY)


def experiment_methods(quick: bool = False) -> List[str]:
    """The paper's compared methods (the quick runs use the same set; the
    quick configuration only shrinks datasets and parameter grids)."""
    return list(PAPER_METHODS)


def spec_from_config(name: str, config: object) -> IndexSpec:
    """Bind an experiment configuration object to the spec of ``name``.

    ``config`` only needs the attributes named by the spec's
    ``config_fields`` mapping (``repro.experiments.config.ExperimentConfig``
    in practice); parameters without a mapping keep their spec defaults.
    """
    cls = spec_class(name)
    params = {
        field: getattr(config, attribute)
        for field, attribute in cls.config_fields.items()
    }
    return cls(**params)
