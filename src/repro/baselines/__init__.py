"""Additional baselines from the paper's evaluation (TOAIN, BiDijkstra wrapper)."""

from repro.baselines.bidijkstra_index import BiDijkstraIndex
from repro.baselines.toain import TOAINIndex

__all__ = ["TOAINIndex", "BiDijkstraIndex"]
