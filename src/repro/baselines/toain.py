"""Simplified TOAIN baseline (throughput-optimising adaptive index).

TOAIN [Luo et al., VLDB 2018] builds a multi-level CH-style index (SCOB) for
dynamic kNN queries and tunes a "check-in level" that trades query cost
against update cost: objects are materialised down to a chosen hierarchy
level, so a lower level means faster queries but more expensive updates.  The
paper adapts it to point-to-point shortest-distance queries by treating the
target as the single nearest object (``k = 1``) and refreshing its shortcuts
on every update batch because SCOB was designed for static weights.

This reproduction keeps the essential trade-off knob while staying within the
substrates already built here (see DESIGN.md §3):

* the index is a CH over the MDE order;
* the *check-in level* ``L`` materialises, for every vertex, distance labels to
  its upward-reachable hierarchy vertices whose rank falls in the top ``L``
  fraction — larger ``L`` makes queries faster (more chances to meet in the
  materialised zone) and updates slower (more labels to refresh);
* updates refresh the affected shortcuts (DCH-style) and rebuild the
  materialised labels of affected vertices.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.base import DistanceIndex, StageTiming, Timer, UpdateReport
from repro.exceptions import IndexNotBuiltError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.hierarchy.ch import ch_bidirectional_query
from repro.kernels.hub_store import HubStore
from repro.kernels.shortcut_store import ShortcutStore
from repro.registry import IndexSpec, register_spec
from repro.treedec.mde import ContractionResult, contract_graph, update_shortcuts_bottom_up

INF = math.inf


class TOAINIndex(DistanceIndex):
    """Simplified TOAIN / SCOB baseline adapted to point-to-point queries.

    Parameters
    ----------
    graph:
        The road network.
    checkin_fraction:
        Fraction of the highest-ranked vertices forming the "core" zone whose
        distances are materialised per vertex (the throughput-tuning knob).
    """

    name = "TOAIN"

    def __init__(self, graph: Graph, checkin_fraction: float = 0.2):
        super().__init__(graph)
        if not 0.0 < checkin_fraction <= 1.0:
            raise ValueError(
                f"checkin_fraction must be in (0, 1], got {checkin_fraction}"
            )
        self.checkin_fraction = checkin_fraction
        self.contraction: Optional[ContractionResult] = None
        self.core_rank_threshold = 0
        #: Materialised upward labels: vertex -> {core vertex: distance}.
        self.core_labels: Dict[int, Dict[int, float]] = {}

    # ------------------------------------------------------------------
    def _build(self) -> None:
        prefix = self.name.lower() + ".build."
        with obs.span(prefix + "contraction"):
            self.contraction = contract_graph(self.graph)
        n = self.contraction.num_vertices
        core_size = max(1, int(self.checkin_fraction * n))
        self.core_rank_threshold = n - core_size
        with obs.span(prefix + "core_labels"):
            self.core_labels = {
                v: self._upward_core_labels(v) for v in self.contraction.order
            }

    def _upward_core_labels(self, vertex: int) -> Dict[int, float]:
        """Upward CH search from ``vertex``, keeping only core-zone vertices."""
        contraction = self.contraction
        dist: Dict[int, float] = {vertex: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, vertex)]
        settled: Dict[int, float] = {}
        while heap:
            d, v = heapq.heappop(heap)
            if v in settled:
                continue
            settled[v] = d
            for u, w in contraction.shortcuts[v].items():
                nd = d + w
                if nd < dist.get(u, INF):
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        rank = contraction.rank
        return {
            v: d for v, d in settled.items() if rank[v] >= self.core_rank_threshold
        }

    def _require_built(self) -> ContractionResult:
        if self.contraction is None:
            raise IndexNotBuiltError("TOAIN index has not been built")
        return self.contraction

    # ------------------------------------------------------------------
    # Frozen stores
    # ------------------------------------------------------------------
    def _sub_core_store(self):
        """Frozen sub-core upward adjacency (``None`` = pure path)."""
        contraction = self._require_built()
        return self._kernel(
            "sub_core",
            lambda: ShortcutStore.freeze(
                self._sub_core_upward(), contraction.order
            ),
        )

    def _hub_store(self):
        """Frozen CSR hub-label table (``None`` = pure path / no numpy)."""
        contraction = self._require_built()

        def freeze():
            rank = contraction.rank
            threshold = self.core_rank_threshold
            core = [v for v in contraction.order if rank[v] >= threshold]
            slots = {v: i for i, v in enumerate(core)}
            return HubStore.freeze(self.core_labels, slots)

        return self._kernel("hubs", freeze)

    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> float:
        """Point-to-point query.

        The highest-rank vertex of a shortest path either lies in the core
        zone — covered by joining the two materialised label sets — or below
        it — covered by a bidirectional CH search restricted to the sub-core
        part of the hierarchy (cheap when the core fraction is large).
        """
        contraction = self._require_built()
        if source not in contraction.rank:
            raise VertexNotFoundError(source)
        if target not in contraction.rank:
            raise VertexNotFoundError(target)
        if source == target:
            return 0.0
        store = self._sub_core_store()
        hub_store = self._hub_store() if store is not None else None
        if hub_store is not None:
            # Frozen plane: dense hub join + native sub-core search.  The
            # join is the same minimum over the same float64 sums as the
            # dict loop below, so both planes answer bit-identically.
            best = hub_store.join_pair(source, target)
            return min(best, store.query(source, target))
        labels_s = self.core_labels[source]
        labels_t = self.core_labels[target]
        best = INF
        for hub, d_s in labels_s.items():
            d_t = labels_t.get(hub)
            if d_t is not None and d_s + d_t < best:
                best = d_s + d_t

        if store is not None:
            below = store.query(source, target)
        else:
            below = ch_bidirectional_query(source, target, self._sub_core_upward())
        return min(best, below)

    def query_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """Batched queries: vectorized hub join + frozen sub-core searches.

        With kernels on, the core-zone join for the whole batch is a single
        :meth:`~repro.kernels.hub_store.HubStore.join_one_to_many` (the
        source's labels are scattered into a dense vector once), and the
        per-pair sub-core searches run over the frozen shortcut arrays.  The
        join minimum is order-independent and every candidate is the same
        ``float64`` sum the scalar path computes, so results are bit-identical
        to :meth:`query`; the pure reference keeps the dict-based loop.
        """
        contraction = self._require_built()
        if source not in contraction.rank:
            raise VertexNotFoundError(source)
        targets = list(targets)
        for target in targets:
            if target not in contraction.rank:
                raise VertexNotFoundError(target)

        sub_core_store = self._sub_core_store()
        hub_store = self._hub_store() if sub_core_store is not None else None
        if hub_store is not None:
            # The one-scatter-many-gathers join only pays off once the batch
            # amortises the dense source vector; tiny source groups loop the
            # (bit-identical) frozen scalar plane instead.
            if len(targets) < 8:
                return [
                    0.0
                    if source == target
                    else min(
                        hub_store.join_pair(source, target),
                        sub_core_store.query(source, target),
                    )
                    for target in targets
                ]
            joined = hub_store.join_one_to_many(source, targets)
            below = sub_core_store.one_to_many(source, targets)
            return [
                0.0 if source == target else min(best, b)
                for target, best, b in zip(targets, joined, below)
            ]
        if sub_core_store is not None:
            labels_s = self.core_labels[source]
            results: List[float] = []
            for target in targets:
                if source == target:
                    results.append(0.0)
                    continue
                labels_t = self.core_labels[target]
                best = INF
                for hub, d_s in labels_s.items():
                    d_t = labels_t.get(hub)
                    if d_t is not None and d_s + d_t < best:
                        best = d_s + d_t
                results.append(min(best, sub_core_store.query(source, target)))
            return results

        labels_s = self.core_labels[source]
        sub_core_upward = self._sub_core_upward(memo={})
        results: List[float] = []
        for target in targets:
            if source == target:
                results.append(0.0)
                continue
            labels_t = self.core_labels[target]
            best = INF
            for hub, d_s in labels_s.items():
                d_t = labels_t.get(hub)
                if d_t is not None and d_s + d_t < best:
                    best = d_s + d_t
            below = ch_bidirectional_query(source, target, sub_core_upward)
            results.append(min(best, below))
        return results

    def _sub_core_upward(self, memo: Optional[Dict[int, Dict[int, float]]] = None):
        """Upward-neighbour callback restricted to the sub-core hierarchy.

        With ``memo`` the filtered neighbourhoods are cached across calls
        (values are identical either way — the cache only avoids refiltering).
        """
        contraction = self.contraction
        rank = contraction.rank
        threshold = self.core_rank_threshold

        def sub_core(v: int) -> Dict[int, float]:
            if memo is not None:
                cached = memo.get(v)
                if cached is not None:
                    return cached
            filtered = {
                u: w
                for u, w in contraction.shortcuts[v].items()
                if rank[u] < threshold
            }
            if memo is not None:
                memo[v] = filtered
            return filtered

        return sub_core

    # ------------------------------------------------------------------
    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        """Refresh shortcuts (DCH-style) and rebuild all materialised labels.

        TOAIN was designed for static edge weights; following the paper, its
        adaptation to dynamic networks refreshes the shortcut hierarchy and the
        materialised check-in labels on every batch, which is what makes its
        update cost high on large networks.
        """
        contraction = self._require_built()
        report = UpdateReport()
        self.invalidate_kernels()

        with Timer() as timer:
            batch.apply(self.graph)
        self._emit_stage(report, StageTiming("edge_update", timer.seconds))

        with Timer() as timer:
            update_shortcuts_bottom_up(
                contraction, self.graph, [update.key() for update in batch]
            )
        self._emit_stage(report, StageTiming("shortcut_update", timer.seconds))

        with Timer() as timer:
            self.core_labels = {
                v: self._upward_core_labels(v) for v in contraction.order
            }
        self._emit_stage(report, StageTiming("label_rebuild", timer.seconds))
        return report

    # ------------------------------------------------------------------
    def index_size(self) -> int:
        contraction = self._require_built()
        return contraction.shortcut_count() + sum(
            len(labels) for labels in self.core_labels.values()
        )

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> Dict[str, object]:
        from repro.store.codec import pack_contraction, pack_pairs_csr

        contraction = self._require_built()
        return {
            "contraction": pack_contraction(contraction, io),
            "core_rank_threshold": int(self.core_rank_threshold),
            "core_labels": pack_pairs_csr(
                ((v, labels.items()) for v, labels in self.core_labels.items()), io
            ),
        }

    def from_state(self, state: Dict[str, object], io) -> None:
        from repro.store.codec import unpack_contraction, unpack_pairs_csr

        self.contraction = unpack_contraction(state["contraction"], io)
        self.core_rank_threshold = int(state["core_rank_threshold"])
        self.core_labels = {
            v: dict(pairs)
            for v, pairs in unpack_pairs_csr(state["core_labels"], io).items()
        }

    def _kernel_exports(self):
        return {"sub_core": self._sub_core_store, "hubs": self._hub_store}


@register_spec
@dataclass(frozen=True)
class TOAINSpec(IndexSpec):
    """Construction spec for the simplified TOAIN / SCOB baseline."""

    method = "TOAIN"
    config_fields = {"checkin_fraction": "toain_checkin_fraction"}

    #: Fraction of the highest-ranked vertices whose distances are
    #: materialised per vertex (the throughput-tuning knob).
    checkin_fraction: float = 0.2

    def create(self, graph: Graph) -> TOAINIndex:
        return TOAINIndex(graph, checkin_fraction=self.checkin_fraction)
