"""Index-free BiDijkstra baseline wrapped in the common DistanceIndex interface.

The paper's BiDijkstra baseline has no index to maintain: updates are applied
to the graph directly (its "index" is always up to date) and every query pays
the full bidirectional search cost.  Wrapping it in
:class:`~repro.base.DistanceIndex` lets the experiment harness treat it like
any other method.

The batch query plane is where an index-free method benefits most: a
one-to-many call runs a *single* Dijkstra from the source, truncated the
moment the farthest pending target settles, instead of one bidirectional
search per pair, and ``query_many`` groups arbitrary pairs by source to get
the same effect.  Both searches compute exact shortest distances, but because
floating-point addition is not associative the unidirectional sum can differ
from the bidirectional split-sum in the final ulp; the batch plane is
bit-identical to the canonical single-source Dijkstra
(:func:`repro.algorithms.dijkstra.dijkstra_distance`) and agrees with the
scalar :meth:`query` to within that rounding (see DESIGN.md §6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.algorithms.dijkstra import bidijkstra, dijkstra_one_to_many
from repro.base import DistanceIndex, StageTiming, Timer, UpdateReport
from repro.exceptions import VertexNotFoundError
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.registry import IndexSpec, register_spec

INF = math.inf


class BiDijkstraIndex(DistanceIndex):
    """Index-free bidirectional Dijkstra baseline."""

    name = "BiDijkstra"

    def _build(self) -> None:
        """Nothing to build — the search runs directly on the live graph."""

    def query(self, source: int, target: int) -> float:
        snapshot = self._graph_snapshot()
        if snapshot is not None:
            # CSR-frozen search; a literal port, bit-identical to the live one.
            return snapshot.bidijkstra(source, target)
        if not self.graph.has_vertex(source):
            raise VertexNotFoundError(source)
        if not self.graph.has_vertex(target):
            raise VertexNotFoundError(target)
        return bidijkstra(self.graph, source, target)

    def query_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """One truncated Dijkstra instead of ``len(targets)`` bidirectional searches.

        The search stops as soon as the farthest pending target settles, so
        the cost of the whole batch is a single (partial) graph sweep — over
        the frozen CSR snapshot when kernels are on.
        """
        targets = list(targets)
        snapshot = self._graph_snapshot()
        if snapshot is not None:
            return snapshot.one_to_many(source, targets)
        return dijkstra_one_to_many(self.graph, source, targets)

    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        report = UpdateReport()
        # The CSR snapshot also self-invalidates via graph.version; the epoch
        # bump keeps the kernel protocol uniform across indexes.
        self.invalidate_kernels()
        with Timer() as timer:
            batch.apply(self.graph)
        self._emit_stage(report, StageTiming("edge_update", timer.seconds))
        return report

    def index_size(self) -> int:
        return 0

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> dict:
        """Nothing beyond the graph (which every snapshot already carries)."""
        return {}

    def from_state(self, state: dict, io) -> None:
        """Nothing to restore — the search runs directly on the live graph."""

    def _kernel_exports(self):
        # The CSR graph snapshot duplicates the graph payload (~2x for this
        # index, whose only state *is* the graph) — accepted so the first
        # post-load query skips the O(n+m) freeze like every other method.
        return {"__graph__": self._graph_snapshot}


@register_spec
@dataclass(frozen=True)
class BiDijkstraSpec(IndexSpec):
    """Construction spec for the index-free BiDijkstra baseline (no knobs)."""

    method = "BiDijkstra"

    def create(self, graph: Graph) -> BiDijkstraIndex:
        return BiDijkstraIndex(graph)
