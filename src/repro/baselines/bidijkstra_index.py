"""Index-free BiDijkstra baseline wrapped in the common DistanceIndex interface.

The paper's BiDijkstra baseline has no index to maintain: updates are applied
to the graph directly (its "index" is always up to date) and every query pays
the full bidirectional search cost.  Wrapping it in
:class:`~repro.base.DistanceIndex` lets the experiment harness treat it like
any other method.
"""

from __future__ import annotations

from repro.algorithms.dijkstra import bidijkstra
from repro.base import DistanceIndex, StageTiming, Timer, UpdateReport
from repro.exceptions import VertexNotFoundError
from repro.graph.updates import UpdateBatch


class BiDijkstraIndex(DistanceIndex):
    """Index-free bidirectional Dijkstra baseline."""

    name = "BiDijkstra"

    def _build(self) -> None:
        """Nothing to build — the search runs directly on the live graph."""

    def query(self, source: int, target: int) -> float:
        if not self.graph.has_vertex(source):
            raise VertexNotFoundError(source)
        if not self.graph.has_vertex(target):
            raise VertexNotFoundError(target)
        return bidijkstra(self.graph, source, target)

    def apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        report = UpdateReport()
        with Timer() as timer:
            batch.apply(self.graph)
        self._emit_stage(report, StageTiming("edge_update", timer.seconds))
        return report

    def index_size(self) -> int:
        return 0
