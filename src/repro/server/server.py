"""The asyncio network front end over the serving stack.

:class:`QueryServer` listens on a TCP socket, speaks the length-prefixed
frame protocol of :mod:`repro.server.protocol`, and answers through any
*backend* with the serving-engine surface — a single-process
:class:`~repro.serving.engine.ServingEngine` or a sharded
:class:`~repro.cluster.engine.ClusterEngine`.  This puts serialization,
scheduling and backpressure on the measured path, so throughput numbers are
end-to-end service numbers rather than in-process kernel microseconds.

Concurrency model
-----------------

The event loop owns all protocol state; backend calls block (engine locks,
shard round trips), so each admitted request runs on a bounded thread pool
via ``run_in_executor`` while the loop keeps decoding frames.  Clients may
pipeline: requests on one connection are answered out of order, matched by
the echoed ``seq``.

Backpressure (DESIGN.md §12)
----------------------------

Three conditions shed a request with a typed RETRY frame instead of queueing
it unboundedly — the HTTP-429 analogue:

* the **global in-flight cap** (``max_inflight``) is reached;
* the **per-connection in-flight cap** (``max_inflight_per_connection``) is
  reached — a slow or greedy client saturates its own connection, never the
  whole dispatcher;
* the backend's **Lemma-1 admission control** sheds the query
  (:class:`~repro.exceptions.QueryRejectedError`).

Every RETRY carries a ``queue_depth`` hint — the current in-flight count
plus the run of consecutive sheds since the last accepted request, so under
sustained overload successive hints increase monotonically — and a
``suggested_wait_seconds`` proportional to that depth times the recent
service-time estimate.

Shutdown drains: :meth:`stop` refuses new connections immediately, lets
every in-flight request finish and deliver its response, then closes the
remaining connections.  No admitted request is ever dropped.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.exceptions import (
    EdgeNotFoundError,
    InvalidWeightError,
    ProtocolError,
    QueryRejectedError,
    ReproError,
    ServerError,
)
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    OP_APPLY_BATCH,
    OP_ERROR,
    OP_NAMES,
    OP_ONE_TO_MANY,
    OP_PING,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_RESULT,
    OP_RETRY,
    OP_STATS,
    REQUEST_OPS,
    Frame,
    encode_frame,
    read_frame,
)


class _Connection:
    """Per-connection state: the writer, its lock, and the in-flight count."""

    __slots__ = ("writer", "lock", "inflight", "closed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.inflight = 0
        self.closed = False

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _backend_graph(backend):
    """The backend's live graph (both engines expose ``.graph``)."""
    graph = getattr(backend, "graph", None)
    if graph is not None:
        return graph
    return backend.index.graph


class QueryServer:
    """Serve the frame protocol over a serving-engine backend.

    Parameters
    ----------
    backend:
        A started :class:`~repro.serving.engine.ServingEngine` or
        :class:`~repro.cluster.engine.ClusterEngine` (anything with
        ``serve``/``serve_batch``/``stats``/``current_epoch``).  The server
        does not own the backend's lifecycle.
    host / port:
        Listen address; port 0 binds an ephemeral port (read it back from
        :attr:`address` after :meth:`start`).
    max_inflight:
        Global cap on concurrently executing requests; excess arrivals get
        RETRY frames.
    max_inflight_per_connection:
        Per-connection cap, strictly enforced before the global cap so one
        pipelining client cannot monopolise the executor.
    max_frame_bytes:
        Frame size cap, both directions.
    executor_threads:
        Thread-pool size for blocking backend calls (default:
        ``min(8, max_inflight)``).
    write_timeout:
        Seconds a response write may stall on a non-reading client before
        the connection is dropped (the response slot is freed either way).
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        max_inflight_per_connection: int = 16,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        executor_threads: Optional[int] = None,
        write_timeout: float = 15.0,
    ) -> None:
        if max_inflight < 1:
            raise ServerError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_inflight_per_connection < 1:
            raise ServerError(
                "max_inflight_per_connection must be >= 1, "
                f"got {max_inflight_per_connection}"
            )
        self.backend = backend
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.max_inflight_per_connection = max_inflight_per_connection
        self.max_frame_bytes = max_frame_bytes
        self.write_timeout = write_timeout
        self._executor_threads = executor_threads or min(8, max_inflight)

        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: Set[_Connection] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._tasks: Set[asyncio.Task] = set()
        self._draining = False
        self._inflight = 0
        self._shed_streak = 0
        self._service_ewma = 0.0
        self._requests_total = 0
        self._retries_total = 0
        self._errors_total = 0
        self._connections_total = 0

        if obs.is_enabled():
            registry = obs.registry()
            registry.gauge(
                "repro_server_inflight", "Requests currently executing"
            ).set_function(lambda: self._inflight)
            registry.gauge(
                "repro_server_connections", "Open client connections"
            ).set_function(lambda: len(self._connections))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryServer":
        """Bind the listen socket and start accepting (idempotent)."""
        if self._server is not None:
            return self
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_threads, thread_name_prefix="repro-server"
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves port 0 to the real port."""
        if self._server is None or not self._server.sockets:
            raise ServerError("server is not listening; call start()")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    @property
    def is_serving(self) -> bool:
        return self._server is not None and not self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    async def stop(self) -> None:
        """Graceful drain: refuse new connects, finish in-flight, close."""
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        # Every admitted request completes and writes its response before the
        # connection goes away — zero dropped in-flight queries.
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        for conn in list(self._connections):
            await conn.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        if self._draining:
            # The listener is closing concurrently; anything that slipped in
            # gets a typed refusal rather than a silent hang.
            await self._safe_send(
                conn, OP_ERROR, 0,
                {"code": "shutting_down", "message": "server is draining"},
            )
            await conn.close()
            return
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections.add(conn)
        self._connections_total += 1
        obs.counter("repro_server_connections_total", "Accepted connections").inc()
        try:
            await self._read_loop(reader, conn)
        finally:
            self._connections.discard(conn)
            await conn.close()
            if task is not None:
                self._conn_tasks.discard(task)

    async def _read_loop(self, reader: asyncio.StreamReader, conn: _Connection) -> None:
        while True:
            try:
                frame = await read_frame(reader, self.max_frame_bytes)
            except ProtocolError as exc:
                # Malformed frame: answer with a typed error; keep the
                # connection only when the stream is provably still in sync.
                self._errors_total += 1
                obs.counter(
                    "repro_server_protocol_errors_total",
                    "Malformed frames received", code=exc.code,
                ).inc()
                await self._safe_send(
                    conn, OP_ERROR, exc.seq or 0,
                    {"code": exc.code, "message": str(exc)},
                )
                if exc.recoverable:
                    continue
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # clean close: peer went away (possibly mid-frame)
            await self._handle_frame(conn, frame)

    async def _handle_frame(self, conn: _Connection, frame: Frame) -> None:
        if frame.op == OP_PING:
            await self._safe_send(
                conn, OP_RESULT, frame.seq,
                {"pong": True, "epoch": self.backend.current_epoch},
            )
            return
        if frame.op not in REQUEST_OPS:
            self._errors_total += 1
            await self._safe_send(
                conn, OP_ERROR, frame.seq,
                {"code": "unknown_op", "message": f"unknown op {frame.op:#x}"},
            )
            return
        if self._draining:
            await self._send_retry(conn, frame.seq, "draining")
            return
        if (
            conn.inflight >= self.max_inflight_per_connection
            or self._inflight >= self.max_inflight
        ):
            await self._send_retry(conn, frame.seq, "queue_full")
            return
        conn.inflight += 1
        self._inflight += 1
        task = asyncio.ensure_future(self._process(conn, frame))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    async def _process(self, conn: _Connection, frame: Frame) -> None:
        started = time.perf_counter()
        op_name = OP_NAMES[frame.op]
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                self._executor, self._execute, frame
            )
        except QueryRejectedError:
            # Admission control shed the query — backpressure, not failure.
            await self._send_retry(conn, frame.seq, "admission")
            return
        except ProtocolError as exc:
            self._errors_total += 1
            await self._safe_send(
                conn, OP_ERROR, frame.seq, {"code": exc.code, "message": str(exc)}
            )
            return
        except ReproError as exc:
            self._errors_total += 1
            code = _ERROR_CODES.get(type(exc).__name__, "request_failed")
            obs.counter(
                "repro_server_errors_total", "Typed request failures", code=code
            ).inc()
            await self._safe_send(
                conn, OP_ERROR, frame.seq, {"code": code, "message": str(exc)}
            )
            return
        except Exception as exc:  # never let a request kill the server
            self._errors_total += 1
            obs.counter(
                "repro_server_errors_total", "Typed request failures", code="internal"
            ).inc()
            await self._safe_send(
                conn, OP_ERROR, frame.seq,
                {"code": "internal", "message": f"{type(exc).__name__}: {exc}"},
            )
            return
        finally:
            conn.inflight -= 1
            self._inflight -= 1

        serve_seconds = time.perf_counter() - started
        self._shed_streak = 0
        self._requests_total += 1
        alpha = 0.2
        self._service_ewma = (
            serve_seconds
            if self._service_ewma == 0.0
            else (1 - alpha) * self._service_ewma + alpha * serve_seconds
        )
        await self._safe_send(conn, OP_RESULT, frame.seq, payload)
        if obs.is_enabled():
            obs.record_span("server.serve", serve_seconds, op=op_name)
            obs.record_span(
                "server.request", time.perf_counter() - started, op=op_name
            )
            obs.counter(
                "repro_server_requests_total", "Completed requests", op=op_name
            ).inc()

    def _execute(self, frame: Frame):
        """Run one request against the backend (executor thread, blocking)."""
        op, payload = frame.op, frame.payload
        if op == OP_QUERY:
            source = _require_vertex(payload, "source", frame.seq)
            target = _require_vertex(payload, "target", frame.seq)
            result = self.backend.serve(source, target)
            return {
                "distance": result.distance,
                "epoch": result.epoch,
                "stage": result.stage,
                "from_cache": result.from_cache,
            }
        if op == OP_QUERY_BATCH:
            pairs = _require_pairs(payload, frame.seq)
            results = self.backend.serve_batch(pairs)
            return {
                "distances": [result.distance for result in results],
                "epoch": _single_epoch(results),
            }
        if op == OP_ONE_TO_MANY:
            source = _require_vertex(payload, "source", frame.seq)
            targets = _require_vertex_list(payload, "targets", frame.seq)
            serve_otm = getattr(self.backend, "serve_one_to_many", None)
            if callable(serve_otm):
                results = serve_otm(source, targets)
            else:
                results = self.backend.serve_batch([(source, t) for t in targets])
            return {
                "distances": [result.distance for result in results],
                "epoch": _single_epoch(results),
            }
        if op == OP_APPLY_BATCH:
            batch = _require_batch(payload, frame.seq)
            # Validate against the live graph up front: the single-process
            # engine installs asynchronously (errors would only surface in
            # maintenance_errors) and a cluster broadcast would fail shards.
            graph = _backend_graph(self.backend)
            for update in batch:
                if not graph.has_edge(update.u, update.v):
                    raise EdgeNotFoundError(update.u, update.v)
                if not (update.new_weight > 0):
                    raise InvalidWeightError(update.new_weight)
            epoch = self._apply_sync(batch)
            return {"epoch": epoch, "applied": len(batch)}
        if op == OP_STATS:
            return {
                "server": {
                    "inflight": self._inflight,
                    "connections": len(self._connections),
                    "requests_total": self._requests_total,
                    "retries_total": self._retries_total,
                    "errors_total": self._errors_total,
                    "connections_total": self._connections_total,
                    "draining": self._draining,
                    "max_inflight": self.max_inflight,
                    "max_inflight_per_connection": self.max_inflight_per_connection,
                },
                "backend": self.backend.stats(),
            }
        raise ProtocolError(  # pragma: no cover - guarded by _handle_frame
            f"unhandled op {op:#x}", code="unknown_op", seq=frame.seq
        )

    def _apply_sync(self, batch: UpdateBatch) -> int:
        """Install an update batch through whichever surface the backend has."""
        apply = getattr(self.backend, "apply_batch", None)
        if callable(apply):
            apply(batch)  # the cluster's synchronous two-phase broadcast
        else:
            self.backend.submit_batch(batch)
            self.backend.wait_for_maintenance()
            errors = getattr(self.backend, "maintenance_errors", None)
            if errors:
                raise errors[-1]
        return self.backend.current_epoch

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    async def _send_retry(self, conn: _Connection, seq: int, reason: str) -> None:
        self._shed_streak += 1
        self._retries_total += 1
        depth = self._inflight + self._shed_streak
        wait = min(1.0, max(0.001, depth * max(self._service_ewma, 0.0005)))
        obs.counter(
            "repro_server_retries_total", "RETRY frames sent", reason=reason
        ).inc()
        await self._safe_send(
            conn, OP_RETRY, seq,
            {
                "reason": reason,
                "queue_depth": depth,
                "suggested_wait_seconds": wait,
            },
        )

    async def _safe_send(
        self, conn: _Connection, op: int, seq: int, payload
    ) -> None:
        """Write one frame; a dead or stalled peer drops the connection."""
        if conn.closed:
            return
        started = time.perf_counter()
        try:
            data = encode_frame(op, seq, payload, self.max_frame_bytes)
            async with conn.lock:
                conn.writer.write(data)
                await asyncio.wait_for(conn.writer.drain(), self.write_timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            await conn.close()
        else:
            if obs.is_enabled():
                obs.record_span(
                    "server.encode", time.perf_counter() - started, op=OP_NAMES[op]
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Server-side counters (the ``stats`` op returns these + backend's)."""
        return {
            "inflight": self._inflight,
            "connections": len(self._connections),
            "requests_total": self._requests_total,
            "retries_total": self._retries_total,
            "errors_total": self._errors_total,
            "connections_total": self._connections_total,
            "draining": self._draining,
        }


#: Exception-name → wire error code for typed ReproError failures.
_ERROR_CODES = {
    "VertexNotFoundError": "vertex_not_found",
    "EdgeNotFoundError": "edge_not_found",
    "InvalidWeightError": "invalid_weight",
    "EngineStoppedError": "engine_stopped",
    "ClusterWorkerError": "cluster_worker_failed",
    "ClusterError": "cluster_failed",
    "ServingError": "serving_failed",
    "GraphError": "graph_error",
}


# ----------------------------------------------------------------------
# Payload validation (typed bad_payload errors, never raw KeyError/TypeError)
# ----------------------------------------------------------------------
def _bad_payload(message: str, seq: int) -> ProtocolError:
    return ProtocolError(message, code="bad_payload", seq=seq, recoverable=True)


def _require_mapping(payload, seq: int) -> dict:
    if not isinstance(payload, dict):
        raise _bad_payload(
            f"payload must be a JSON object, got {type(payload).__name__}", seq
        )
    return payload


def _as_vertex(value, context: str, seq: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad_payload(f"{context} must be an integer vertex id, got {value!r}", seq)
    return value


def _require_vertex(payload, key: str, seq: int) -> int:
    mapping = _require_mapping(payload, seq)
    if key not in mapping:
        raise _bad_payload(f"payload is missing required key {key!r}", seq)
    return _as_vertex(mapping[key], key, seq)


def _require_vertex_list(payload, key: str, seq: int) -> List[int]:
    mapping = _require_mapping(payload, seq)
    values = mapping.get(key)
    if not isinstance(values, list) or not values:
        raise _bad_payload(f"{key!r} must be a non-empty list of vertex ids", seq)
    return [_as_vertex(value, key, seq) for value in values]


def _require_pairs(payload, seq: int) -> List[Tuple[int, int]]:
    mapping = _require_mapping(payload, seq)
    raw = mapping.get("pairs")
    if not isinstance(raw, list) or not raw:
        raise _bad_payload("'pairs' must be a non-empty list of [source, target]", seq)
    pairs: List[Tuple[int, int]] = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise _bad_payload(f"each pair must be [source, target], got {item!r}", seq)
        pairs.append(
            (_as_vertex(item[0], "source", seq), _as_vertex(item[1], "target", seq))
        )
    return pairs


def _require_batch(payload, seq: int) -> UpdateBatch:
    mapping = _require_mapping(payload, seq)
    raw = mapping.get("updates")
    if not isinstance(raw, list):
        raise _bad_payload("'updates' must be a list of [u, v, old, new]", seq)
    updates = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 4:
            raise _bad_payload(
                f"each update must be [u, v, old_weight, new_weight], got {item!r}", seq
            )
        u = _as_vertex(item[0], "u", seq)
        v = _as_vertex(item[1], "v", seq)
        try:
            old_weight = float(item[2])
            new_weight = float(item[3])
        except (TypeError, ValueError):
            raise _bad_payload(f"update weights must be numbers, got {item!r}", seq)
        updates.append(EdgeUpdate(u, v, old_weight, new_weight))
    return UpdateBatch(updates)


def _single_epoch(results) -> int:
    epochs = {result.epoch for result in results}
    if len(epochs) != 1:  # pragma: no cover - engines guarantee this
        raise ServerError(f"torn batch epoch: {sorted(epochs)}")
    return epochs.pop()
