"""``repro.server`` — the asyncio network query plane.

A length-prefixed binary frame protocol (:mod:`repro.server.protocol`), an
asyncio server over a :class:`~repro.serving.engine.ServingEngine` or
:class:`~repro.cluster.engine.ClusterEngine` backend with explicit
backpressure and graceful drain (:mod:`repro.server.server`), a pipelining
:class:`~repro.server.client.AsyncClient`, and a closed-loop load generator
(:mod:`repro.server.loadgen`).  See DESIGN.md §12 and the
``repro-experiments serve`` CLI subcommand.
"""

from repro.server.client import AsyncClient, BatchReply, QueryReply
from repro.server.loadgen import LoadReport, run_closed_loop
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    OP_APPLY_BATCH,
    OP_ERROR,
    OP_ONE_TO_MANY,
    OP_PING,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_RESULT,
    OP_RETRY,
    OP_STATS,
    PROTOCOL_VERSION,
    Frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.server.server import QueryServer

__all__ = [
    "AsyncClient",
    "BatchReply",
    "QueryReply",
    "LoadReport",
    "run_closed_loop",
    "QueryServer",
    "Frame",
    "encode_frame",
    "read_frame",
    "write_frame",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "OP_QUERY",
    "OP_QUERY_BATCH",
    "OP_ONE_TO_MANY",
    "OP_APPLY_BATCH",
    "OP_STATS",
    "OP_PING",
    "OP_RESULT",
    "OP_ERROR",
    "OP_RETRY",
]
