"""Wire protocol of the network query plane.

Every message — request or response — is one **frame**::

    +----------------+---------+------+-----------+------------------+
    | length u32 BE  | version | op   | seq u32BE | payload (JSON)   |
    +----------------+---------+------+-----------+------------------+
         4 bytes        1 byte  1 byte   4 bytes     length-6 bytes

``length`` counts every byte after the prefix (so the minimum legal value is
6: version + op + seq with an empty payload).  ``version`` is the protocol
version byte (:data:`PROTOCOL_VERSION`); a mismatch yields a typed
``bad_version`` ERROR frame and the connection closes.  ``seq`` is the
client-chosen request id, echoed verbatim in the response frame, which is
what lets a client pipeline many requests over one connection and match
out-of-order completions.  The payload is UTF-8 JSON (the stdlib codec —
``Infinity`` round-trips, so unreachable distances survive the wire
bit-for-bit).

Request ops: :data:`OP_QUERY`, :data:`OP_QUERY_BATCH`, :data:`OP_ONE_TO_MANY`,
:data:`OP_APPLY_BATCH`, :data:`OP_STATS`, :data:`OP_PING`.  Response ops:

* :data:`OP_RESULT` — success, payload is the operation's result object;
* :data:`OP_ERROR` — typed failure, payload ``{"code", "message"}``;
* :data:`OP_RETRY` — backpressure (the HTTP-429 analogue), payload
  ``{"reason", "queue_depth", "suggested_wait_seconds"}``.

Framing errors raise the typed exceptions from :mod:`repro.exceptions`
(:class:`~repro.exceptions.ProtocolError` /
:class:`~repro.exceptions.ProtocolVersionError` /
:class:`~repro.exceptions.FrameTooLargeError`); each carries whether the
stream is still in sync (``recoverable``) so the server knows to answer and
continue versus answer and close.  See DESIGN.md §12.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import (
    FrameTooLargeError,
    ProtocolError,
    ProtocolVersionError,
)

#: Protocol version byte this build speaks.
PROTOCOL_VERSION = 1

#: Bytes of the length prefix.
HEADER_BYTES = 4
#: Fixed body bytes after the prefix: version + op + seq.
FIXED_BODY_BYTES = 6
#: Default cap on ``length`` — a defence against hostile or corrupt prefixes.
DEFAULT_MAX_FRAME_BYTES = 8 * 2**20

# Request op codes.
OP_QUERY = 0x01
OP_QUERY_BATCH = 0x02
OP_ONE_TO_MANY = 0x03
OP_APPLY_BATCH = 0x04
OP_STATS = 0x05
OP_PING = 0x06

# Response op codes (high bit set).
OP_RESULT = 0x81
OP_ERROR = 0x82
OP_RETRY = 0x83

REQUEST_OPS = frozenset(
    (OP_QUERY, OP_QUERY_BATCH, OP_ONE_TO_MANY, OP_APPLY_BATCH, OP_STATS, OP_PING)
)
RESPONSE_OPS = frozenset((OP_RESULT, OP_ERROR, OP_RETRY))

OP_NAMES = {
    OP_QUERY: "query",
    OP_QUERY_BATCH: "query_batch",
    OP_ONE_TO_MANY: "one_to_many",
    OP_APPLY_BATCH: "apply_batch",
    OP_STATS: "stats",
    OP_PING: "ping",
    OP_RESULT: "result",
    OP_ERROR: "error",
    OP_RETRY: "retry",
}


@dataclass(frozen=True)
class Frame:
    """One decoded frame: operation, request id, JSON payload (or ``None``)."""

    op: int
    seq: int
    payload: Optional[object] = None

    @property
    def op_name(self) -> str:
        return OP_NAMES.get(self.op, f"op_{self.op:#x}")


def encode_frame(
    op: int,
    seq: int,
    payload: Optional[object] = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Serialize one frame to wire bytes."""
    if not 0 <= op <= 0xFF:
        raise ProtocolError(f"op code {op} does not fit one byte")
    if not 0 <= seq <= 0xFFFFFFFF:
        raise ProtocolError(f"seq {seq} does not fit u32")
    body = b"" if payload is None else json.dumps(payload, separators=(",", ":")).encode()
    length = FIXED_BODY_BYTES + len(body)
    if length > max_frame_bytes:
        raise FrameTooLargeError(length, max_frame_bytes)
    return b"".join(
        (
            length.to_bytes(HEADER_BYTES, "big"),
            bytes((PROTOCOL_VERSION, op)),
            seq.to_bytes(4, "big"),
            body,
        )
    )


def decode_body(body: bytes) -> Frame:
    """Decode the post-prefix bytes of one frame (validates version + JSON)."""
    if len(body) < FIXED_BODY_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes is shorter than the "
            f"{FIXED_BODY_BYTES}-byte fixed header"
        )
    version = body[0]
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionError(version, PROTOCOL_VERSION)
    op = body[1]
    seq = int.from_bytes(body[2:6], "big")
    raw = body[FIXED_BODY_BYTES:]
    if not raw:
        return Frame(op, seq, None)
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # The frame boundary itself was intact, so the stream is still in
        # sync — the server can answer a typed error and keep the connection.
        raise ProtocolError(
            f"frame payload is not valid JSON: {exc}",
            code="bad_payload",
            seq=seq,
            recoverable=True,
        ) from None
    return Frame(op, seq, payload)


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Frame:
    """Read one frame; raises the typed protocol errors on malformed input.

    A peer that disconnects between frames surfaces as
    :class:`asyncio.IncompleteReadError` with no partial bytes; mid-frame
    truncation surfaces as the same exception with ``partial`` set — both are
    a *clean close* for the caller, never a hang (the reader returns EOF).
    """
    header = await reader.readexactly(HEADER_BYTES)
    length = int.from_bytes(header, "big")
    if length > max_frame_bytes:
        raise FrameTooLargeError(length, max_frame_bytes)
    if length < FIXED_BODY_BYTES:
        raise ProtocolError(
            f"frame length {length} is shorter than the {FIXED_BODY_BYTES}-byte "
            "fixed header"
        )
    body = await reader.readexactly(length)
    return decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    op: int,
    seq: int,
    payload: Optional[object] = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Encode and send one frame, waiting for the transport to drain."""
    writer.write(encode_frame(op, seq, payload, max_frame_bytes))
    await writer.drain()
