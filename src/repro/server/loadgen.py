"""Closed-loop async load generator for the network query plane.

``concurrency`` workers each hold one :class:`~repro.server.client.AsyncClient`
connection and issue the next request the moment the previous one completes
(classic closed-loop load), honouring the server's RETRY backpressure hints.
The report carries sustained QPS and the p50/p99/p999 of the *per-operation*
wall latency as observed by the client — i.e. including serialization, the
socket, scheduling and backpressure, which is the whole point of measuring
at this boundary.  ``benchmarks/bench_server.py`` drives this into
``BENCH_server.json``.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ServerBackpressureError
from repro.server.client import AsyncClient


def quantile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = min(len(sorted_samples), max(1, math.ceil(q * len(sorted_samples))))
    return sorted_samples[rank - 1]


@dataclass
class LoadReport:
    """Outcome of one closed-loop run."""

    label: str
    concurrency: int
    batch_size: int
    duration_seconds: float
    operations: int
    queries: int
    retries: int
    qps: float
    mean_seconds: float
    p50_seconds: float
    p99_seconds: float
    p999_seconds: float
    latencies: List[float] = field(default_factory=list, repr=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "concurrency": self.concurrency,
            "batch_size": self.batch_size,
            "duration_seconds": self.duration_seconds,
            "operations": self.operations,
            "queries": self.queries,
            "retries": self.retries,
            "qps": self.qps,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "p999_seconds": self.p999_seconds,
        }


async def run_closed_loop(
    host: str,
    port: int,
    pairs: Sequence[Tuple[int, int]],
    duration_seconds: float,
    concurrency: int = 4,
    batch_size: int = 0,
    label: str = "",
) -> LoadReport:
    """Drive the server closed-loop and report client-observed latency/QPS.

    ``batch_size == 0`` issues scalar ``query`` ops (one query per frame);
    ``batch_size > 0`` issues ``query_batch`` ops of that many pairs (per-op
    latency then amortises the frame + dispatch overhead over the batch).
    """
    latencies: List[float] = []
    totals = {"operations": 0, "queries": 0, "retries": 0}

    async def worker(worker_id: int) -> None:
        client = await AsyncClient.connect(host, port)
        cursor = worker_id * 7919  # de-phase the workers' walk over the pairs
        try:
            while time.perf_counter() < deadline:
                began = time.perf_counter()
                try:
                    if batch_size > 0:
                        chunk = [
                            pairs[(cursor + offset) % len(pairs)]
                            for offset in range(batch_size)
                        ]
                        cursor += batch_size
                        await client.query_batch_with_retry(chunk)
                        totals["queries"] += batch_size
                    else:
                        source, target = pairs[cursor % len(pairs)]
                        cursor += 1
                        await client.query_with_retry(source, target)
                        totals["queries"] += 1
                except ServerBackpressureError:
                    continue  # retry budget exhausted; closed loop moves on
                latencies.append(time.perf_counter() - began)
                totals["operations"] += 1
        finally:
            totals["retries"] += client.retries
            await client.close()

    started = time.perf_counter()
    deadline = started + duration_seconds
    await asyncio.gather(*(worker(i) for i in range(max(1, concurrency))))
    elapsed = time.perf_counter() - started

    latencies.sort()
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    return LoadReport(
        label=label,
        concurrency=concurrency,
        batch_size=batch_size,
        duration_seconds=elapsed,
        operations=totals["operations"],
        queries=totals["queries"],
        retries=totals["retries"],
        qps=totals["queries"] / elapsed if elapsed > 0 else 0.0,
        mean_seconds=mean,
        p50_seconds=quantile(latencies, 0.50),
        p99_seconds=quantile(latencies, 0.99),
        p999_seconds=quantile(latencies, 0.999),
        latencies=latencies,
    )
