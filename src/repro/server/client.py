"""Asyncio client for the network query plane.

:class:`AsyncClient` keeps one connection, pipelines requests (each tagged
with a monotonically increasing ``seq``), and matches responses to pending
futures from a background reader task — so many coroutines can share one
client concurrently.  Typed server responses map back to typed exceptions:

* ERROR frames raise :class:`~repro.exceptions.RemoteServerError` (with the
  wire ``code``);
* RETRY frames raise :class:`~repro.exceptions.ServerBackpressureError`
  carrying the queue-depth hint and suggested wait — the ``*_with_retry``
  helpers honour that hint, which is what the closed-loop load generator
  uses;
* a dropped connection fails every pending request with
  :class:`~repro.exceptions.ServerClosedError`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import (
    ProtocolError,
    RemoteServerError,
    ServerBackpressureError,
    ServerClosedError,
)
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    OP_APPLY_BATCH,
    OP_ERROR,
    OP_ONE_TO_MANY,
    OP_PING,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_RESULT,
    OP_RETRY,
    OP_STATS,
    read_frame,
    write_frame,
)


@dataclass(frozen=True)
class QueryReply:
    """Scalar query response: the distance plus its serving context."""

    distance: float
    epoch: int
    stage: str
    from_cache: bool = False


@dataclass(frozen=True)
class BatchReply:
    """Batch/one-to-many response: all distances share one epoch."""

    distances: List[float]
    epoch: int


class AsyncClient:
    """One pipelined protocol connection to a :class:`QueryServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._seq = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        #: RETRY frames absorbed by the ``*_with_retry`` helpers.
        self.retries = 0
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader, self._max_frame_bytes)
                future = self._pending.pop(frame.seq, None)
                if future is None or future.done():
                    continue  # unsolicited (e.g. a seq-0 connection error)
                if frame.op == OP_RESULT:
                    future.set_result(frame.payload)
                elif frame.op == OP_RETRY:
                    payload = frame.payload or {}
                    future.set_exception(
                        ServerBackpressureError(
                            payload.get("reason", "unknown"),
                            int(payload.get("queue_depth", 0)),
                            float(payload.get("suggested_wait_seconds", 0.001)),
                        )
                    )
                elif frame.op == OP_ERROR:
                    payload = frame.payload or {}
                    future.set_exception(
                        RemoteServerError(
                            payload.get("code", "unknown"),
                            payload.get("message", ""),
                        )
                    )
                else:
                    future.set_exception(
                        ProtocolError(f"unexpected response op {frame.op:#x}")
                    )
        except Exception as exc:
            self._fail_pending(exc)

    def _fail_pending(self, cause: Exception) -> None:
        pending = list(self._pending.values())
        self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(
                    ServerClosedError(f"connection lost: {type(cause).__name__}: {cause}")
                )

    async def request(self, op: int, payload: Optional[object] = None):
        """Send one raw request frame and await its matched response payload."""
        if self._closed:
            raise ServerClosedError("client is closed")
        self._seq = (self._seq + 1) % 2**32 or 1
        seq = self._seq
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future
        try:
            async with self._write_lock:
                await write_frame(
                    self._writer, op, seq, payload, self._max_frame_bytes
                )
        except (ConnectionError, OSError) as exc:
            self._pending.pop(seq, None)
            raise ServerClosedError(f"send failed: {exc}") from None
        return await future

    async def send_raw(self, data: bytes) -> None:
        """Write raw bytes on the connection (protocol fuzzing hook)."""
        async with self._write_lock:
            self._writer.write(data)
            await self._writer.drain()

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._fail_pending(ServerClosedError("client closed"))
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def ping(self) -> int:
        """Round trip; returns the backend's current epoch."""
        payload = await self.request(OP_PING)
        return int(payload["epoch"])

    async def query(self, source: int, target: int) -> QueryReply:
        payload = await self.request(OP_QUERY, {"source": source, "target": target})
        return QueryReply(
            distance=payload["distance"],
            epoch=payload["epoch"],
            stage=payload["stage"],
            from_cache=bool(payload.get("from_cache", False)),
        )

    async def query_batch(self, pairs: Iterable[Tuple[int, int]]) -> BatchReply:
        payload = await self.request(
            OP_QUERY_BATCH, {"pairs": [[s, t] for s, t in pairs]}
        )
        return BatchReply(distances=payload["distances"], epoch=payload["epoch"])

    async def one_to_many(self, source: int, targets: Sequence[int]) -> BatchReply:
        payload = await self.request(
            OP_ONE_TO_MANY, {"source": source, "targets": list(targets)}
        )
        return BatchReply(distances=payload["distances"], epoch=payload["epoch"])

    async def apply_batch(self, batch) -> int:
        """Broadcast an update batch; returns the post-install epoch.

        ``batch`` may be an :class:`~repro.graph.updates.UpdateBatch`, an
        iterable of :class:`~repro.graph.updates.EdgeUpdate`, or raw
        ``(u, v, old_weight, new_weight)`` tuples.
        """
        updates = []
        iterable = batch.updates if isinstance(batch, UpdateBatch) else batch
        for update in iterable:
            if isinstance(update, EdgeUpdate):
                updates.append(
                    [update.u, update.v, update.old_weight, update.new_weight]
                )
            else:
                u, v, old_weight, new_weight = update
                updates.append([u, v, old_weight, new_weight])
        payload = await self.request(OP_APPLY_BATCH, {"updates": updates})
        return int(payload["epoch"])

    async def stats(self) -> dict:
        return await self.request(OP_STATS)

    # ------------------------------------------------------------------
    # Backpressure-honouring helpers
    # ------------------------------------------------------------------
    async def query_with_retry(
        self, source: int, target: int, attempts: int = 16, max_wait: float = 0.25
    ) -> QueryReply:
        """Scalar query that backs off per the server's RETRY hints."""
        return await self._with_retry(
            lambda: self.query(source, target), attempts, max_wait
        )

    async def query_batch_with_retry(
        self,
        pairs: Sequence[Tuple[int, int]],
        attempts: int = 16,
        max_wait: float = 0.25,
    ) -> BatchReply:
        """Batch query that backs off per the server's RETRY hints."""
        return await self._with_retry(
            lambda: self.query_batch(pairs), attempts, max_wait
        )

    async def _with_retry(self, op, attempts: int, max_wait: float):
        last: Optional[ServerBackpressureError] = None
        for _ in range(max(1, attempts)):
            try:
                return await op()
            except ServerBackpressureError as exc:
                last = exc
                self.retries += 1
                await asyncio.sleep(min(exc.suggested_wait_seconds, max_wait))
        raise last
