"""Partitioning result representation and validation.

Every partitioner in this package returns a :class:`Partitioning`, which the
PSP indexes consume: it records which partition each vertex belongs to, the
per-partition boundary vertex sets ``B_i`` (vertices with at least one
neighbour in another partition), the inter-partition edge set ``E_inter`` and
helpers to materialise partition subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.exceptions import PartitioningError
from repro.graph.graph import Graph


@dataclass
class Partitioning:
    """A planar (single-level) partitioning of a road network.

    Attributes
    ----------
    graph:
        The partitioned graph (held by reference).
    vertex_partition:
        ``vertex_partition[v]`` is the partition id of vertex ``v``.
    """

    graph: Graph
    vertex_partition: Dict[int, int]
    _partitions: List[List[int]] = field(init=False, repr=False)
    _boundary: List[Set[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if set(self.vertex_partition) != set(self.graph.vertices()):
            raise PartitioningError("vertex_partition must assign every graph vertex")
        ids = sorted(set(self.vertex_partition.values()))
        if not ids:
            raise PartitioningError("partitioning has no partitions")
        if ids != list(range(len(ids))):
            raise PartitioningError(
                f"partition ids must be contiguous and zero-based, got {ids[:10]}"
            )
        self._partitions = [[] for _ in ids]
        for v, pid in self.vertex_partition.items():
            self._partitions[pid].append(v)
        for members in self._partitions:
            if not members:
                raise PartitioningError("every partition must be non-empty")
            members.sort()
        self._boundary = [set() for _ in ids]
        for u, v, _ in self.graph.edges():
            pu, pv = self.vertex_partition[u], self.vertex_partition[v]
            if pu != pv:
                self._boundary[pu].add(u)
                self._boundary[pv].add(v)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def partition_vertices(self, pid: int) -> List[int]:
        """Vertices of partition ``pid`` (sorted)."""
        return self._partitions[pid]

    def boundary(self, pid: int) -> Set[int]:
        """Boundary vertex set ``B_i`` of partition ``pid``."""
        return self._boundary[pid]

    def all_boundary(self) -> Set[int]:
        """Union of all boundary vertex sets ``B``."""
        result: Set[int] = set()
        for b in self._boundary:
            result |= b
        return result

    def non_boundary(self, pid: int) -> List[int]:
        """Non-boundary (interior) vertices ``I_i`` of partition ``pid``."""
        boundary = self._boundary[pid]
        return [v for v in self._partitions[pid] if v not in boundary]

    def partition_of(self, v: int) -> int:
        """Partition id of vertex ``v``."""
        return self.vertex_partition[v]

    def inter_edges(self) -> List[Tuple[int, int, float]]:
        """Edges whose endpoints lie in different partitions (``E_inter``)."""
        return [
            (u, v, w)
            for u, v, w in self.graph.edges()
            if self.vertex_partition[u] != self.vertex_partition[v]
        ]

    def subgraph(self, pid: int) -> Graph:
        """The partition subgraph ``G_i`` (intra-partition edges only)."""
        return self.graph.subgraph(self._partitions[pid])

    def sizes(self) -> List[int]:
        """Partition sizes in vertex count."""
        return [len(members) for members in self._partitions]

    def boundary_sizes(self) -> List[int]:
        """Boundary sizes ``|B_i|`` per partition."""
        return [len(b) for b in self._boundary]

    def max_boundary_size(self) -> int:
        """``|B_max|`` — the largest per-partition boundary size."""
        return max(self.boundary_sizes())

    def edge_cut(self) -> int:
        """Number of inter-partition edges."""
        return len(self.inter_edges())

    def imbalance(self) -> float:
        """Ratio of the largest partition to the ideal (perfectly balanced) size."""
        sizes = self.sizes()
        ideal = self.graph.num_vertices / self.num_partitions
        return max(sizes) / ideal if ideal else 0.0

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, require_connected: bool = False) -> List[str]:
        """Return a list of structural problems (empty when the partitioning is sound)."""
        problems: List[str] = []
        assigned = sum(len(members) for members in self._partitions)
        if assigned != self.graph.num_vertices:
            problems.append(
                f"{assigned} vertices assigned but the graph has {self.graph.num_vertices}"
            )
        if require_connected:
            for pid in range(self.num_partitions):
                sub = self.subgraph(pid)
                if not sub.is_connected():
                    problems.append(f"partition {pid} is internally disconnected")
        return problems


def partitioning_from_sets(graph: Graph, groups: Sequence[Sequence[int]]) -> Partitioning:
    """Build a :class:`Partitioning` from explicit vertex groups."""
    vertex_partition: Dict[int, int] = {}
    for pid, members in enumerate(groups):
        for v in members:
            if v in vertex_partition:
                raise PartitioningError(f"vertex {v} assigned to more than one partition")
            vertex_partition[v] = pid
    return Partitioning(graph, vertex_partition)
