"""Tree Decomposition-based graph partitioning (TD-partitioning, Algorithm 2).

Section VI-A of the paper inverts the usual PSP pipeline: instead of deriving a
vertex order from an externally computed partitioning, it derives the
partitioning from the high-quality MDE vertex order.  Each partition is the
subtree of a chosen *root vertex* ``u``; the root's tree-node neighbour set
``X(u).N`` is a vertex separator between the subtree and the rest of the graph
and therefore serves as the partition's boundary ``B_i``.  Vertices outside all
partition subtrees form the overlay graph.

Root candidates are constrained by a *bandwidth* ``τ`` (maximum boundary size,
i.e. ``|X(u).N| ≤ τ``) and partition-size bounds ``β_l·|V|/k_e ≤ |subtree(u)| ≤
β_u·|V|/k_e``; among candidates, the "minimum overlay" strategy greedily keeps
the highest-order candidates whose subtrees do not overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.exceptions import PartitioningError
from repro.treedec.tree import TreeDecomposition


@dataclass
class TDPartitioning:
    """Result of TD-partitioning: partition subtrees plus an overlay vertex set.

    Unlike :class:`repro.partitioning.base.Partitioning`, not every vertex
    belongs to a partition: the ancestors of the partition roots (and any
    vertex outside every chosen subtree) form the overlay.
    """

    tree: TreeDecomposition
    roots: List[int]
    partition_vertices: List[List[int]] = field(default_factory=list)
    boundary: List[List[int]] = field(default_factory=list)
    vertex_partition: Dict[int, Optional[int]] = field(default_factory=dict)
    overlay_vertices: Set[int] = field(default_factory=set)

    @property
    def num_partitions(self) -> int:
        return len(self.roots)

    @classmethod
    def from_roots(cls, tree: TreeDecomposition, roots: List[int]) -> "TDPartitioning":
        """Materialise the partitioning implied by chosen subtree roots.

        The roots fully determine the partitioning (members = subtree,
        boundary = the root's tree-node neighbour set, overlay = everything
        else), so this is both the tail of :func:`td_partition` and the way
        snapshots reconstruct a ``TDPartitioning`` from the stored root list.
        """
        result = cls(tree=tree, roots=list(roots))
        vertex_partition: Dict[int, Optional[int]] = {v: None for v in tree.parent}
        for pid, root in enumerate(result.roots):
            members = sorted(tree.subtree(root))
            result.partition_vertices.append(members)
            result.boundary.append(sorted(tree.neighbors(root)))
            for v in members:
                vertex_partition[v] = pid
        result.vertex_partition = vertex_partition
        result.overlay_vertices = {
            v for v, pid in vertex_partition.items() if pid is None
        }
        return result

    def partition_of(self, v: int) -> Optional[int]:
        """Partition id of ``v`` or ``None`` when ``v`` is an overlay vertex."""
        return self.vertex_partition[v]

    def max_boundary_size(self) -> int:
        """``|B_max|`` over all partitions (0 when there are no partitions)."""
        return max((len(b) for b in self.boundary), default=0)

    def sizes(self) -> List[int]:
        return [len(members) for members in self.partition_vertices]

    def validate(self) -> List[str]:
        """Structural sanity checks; returns a list of problems found."""
        problems: List[str] = []
        seen: Set[int] = set()
        for pid, members in enumerate(self.partition_vertices):
            overlap = seen.intersection(members)
            if overlap:
                problems.append(f"partition {pid} overlaps earlier partitions: {sorted(overlap)[:5]}")
            seen.update(members)
        if seen & self.overlay_vertices:
            problems.append("overlay vertices overlap partition vertices")
        total = len(seen) + len(self.overlay_vertices)
        if total != self.tree.num_vertices:
            problems.append(
                f"{total} vertices covered but the tree has {self.tree.num_vertices}"
            )
        for pid, boundary in enumerate(self.boundary):
            outside = [b for b in boundary if b not in self.overlay_vertices]
            if outside:
                problems.append(f"partition {pid} boundary vertices not in overlay: {outside[:5]}")
        return problems


def td_partition(
    tree: TreeDecomposition,
    bandwidth: int,
    expected_partitions: int,
    beta_lower: float = 0.1,
    beta_upper: float = 2.0,
) -> TDPartitioning:
    """Algorithm 2 of the paper: TD-partitioning.

    Parameters
    ----------
    tree:
        MDE-based tree decomposition of the road network.
    bandwidth:
        ``τ`` — maximum allowed boundary size (``|X(u).N|``) of a partition.
    expected_partitions:
        ``k_e`` — desired number of partitions (the realised number may be
        smaller when few subtrees satisfy the constraints).
    beta_lower, beta_upper:
        ``β_l`` and ``β_u`` — partition-size imbalance bounds relative to the
        ideal size ``|V| / k_e``.
    """
    if bandwidth < 1:
        raise PartitioningError(f"bandwidth must be >= 1, got {bandwidth}")
    if expected_partitions < 1:
        raise PartitioningError(
            f"expected_partitions must be >= 1, got {expected_partitions}"
        )
    if beta_lower < 0 or beta_upper <= 0 or beta_lower > beta_upper:
        raise PartitioningError(
            f"invalid size bounds beta_lower={beta_lower}, beta_upper={beta_upper}"
        )

    n = tree.num_vertices
    ideal = n / expected_partitions
    lower = beta_lower * ideal
    upper = beta_upper * ideal
    sizes = tree.subtree_sizes()
    rank = tree.contraction.rank

    # Root candidates, scanned in decreasing vertex order (Algorithm 2 line 7).
    # A candidate must have a non-empty neighbour set: a subtree with no
    # separator would swallow the whole component and leave no overlay graph.
    candidates = [
        v
        for v in sorted(tree.parent, key=lambda x: -rank[x])
        if lower <= sizes[v] <= upper and 1 <= len(tree.neighbors(v)) <= bandwidth
    ]

    # Minimum-overlay selection: keep candidates whose subtrees are disjoint.
    roots: List[int] = []
    for v in candidates:
        if len(roots) >= expected_partitions:
            break
        independent = all(
            not tree.is_ancestor(u, v) and not tree.is_ancestor(v, u) for u in roots
        )
        if independent:
            roots.append(v)

    return TDPartitioning.from_roots(tree, roots)
