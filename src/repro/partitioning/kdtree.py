"""Coordinate-based recursive-bisection partitioner.

Road networks come with a planar embedding; recursively splitting along the
median of the wider coordinate axis yields balanced, geometrically compact
partitions with short boundaries.  This is the cheapest of the provided
partitioners and the most predictable one for the synthetic grid networks, so
the experiment harness uses it by default when coordinates are available.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import PartitioningError
from repro.graph.graph import Graph
from repro.partitioning.base import Partitioning


def kdtree_partition(graph: Graph, num_partitions: int) -> Partitioning:
    """Partition by recursive coordinate bisection into ``num_partitions`` cells.

    ``num_partitions`` does not have to be a power of two: at every split the
    requested partition count is divided as evenly as possible between the two
    halves, and the vertex counts are split proportionally.
    """
    if num_partitions < 1:
        raise PartitioningError(f"num_partitions must be >= 1, got {num_partitions}")
    if num_partitions > graph.num_vertices:
        raise PartitioningError(
            f"cannot split {graph.num_vertices} vertices into {num_partitions} partitions"
        )
    if not graph.has_coordinates():
        raise PartitioningError("kdtree_partition requires vertex coordinates")

    assignment: Dict[int, int] = {}
    next_pid = 0

    def split(vertices: List[int], parts: int) -> None:
        nonlocal next_pid
        if parts <= 1 or len(vertices) <= 1:
            pid = next_pid
            next_pid += 1
            for v in vertices:
                assignment[v] = pid
            return
        xs = [graph.coordinate(v)[0] for v in vertices]
        ys = [graph.coordinate(v)[1] for v in vertices]
        axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
        vertices_sorted = sorted(
            vertices, key=lambda v: (graph.coordinate(v)[axis], graph.coordinate(v)[1 - axis], v)
        )
        left_parts = parts // 2
        right_parts = parts - left_parts
        cut = int(round(len(vertices_sorted) * left_parts / parts))
        cut = max(1, min(len(vertices_sorted) - 1, cut))
        split(vertices_sorted[:cut], left_parts)
        split(vertices_sorted[cut:], right_parts)

    split(sorted(graph.vertices()), num_partitions)
    return Partitioning(graph, assignment)
