"""Graph partitioning: region growing, coordinate bisection, natural-cut, TD-partitioning."""

from repro.partitioning.base import Partitioning, partitioning_from_sets
from repro.partitioning.bfs_grow import bfs_partition, refine_boundary
from repro.partitioning.kdtree import kdtree_partition
from repro.partitioning.natural_cut import natural_cut_partition
from repro.partitioning.ordering import (
    boundary_first_order,
    boundary_first_tiers,
    rank_of,
    restrict_order,
)
from repro.partitioning.td_partition import TDPartitioning, td_partition

__all__ = [
    "Partitioning",
    "partitioning_from_sets",
    "bfs_partition",
    "refine_boundary",
    "kdtree_partition",
    "natural_cut_partition",
    "boundary_first_order",
    "boundary_first_tiers",
    "restrict_order",
    "rank_of",
    "TDPartitioning",
    "td_partition",
]
