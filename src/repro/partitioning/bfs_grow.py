"""Multi-seed region-growing partitioner.

A simple, robust partitioner for road networks: ``k`` seeds are spread over the
graph with a farthest-point heuristic and the partitions are grown around them
with a synchronous multi-source BFS, which yields connected, roughly balanced
regions with compact boundaries — the qualitative properties the paper obtains
from PUNCH (see DESIGN.md §3 for the substitution note).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List

from repro.exceptions import PartitioningError
from repro.graph.graph import Graph
from repro.partitioning.base import Partitioning


def _spread_seeds(graph: Graph, k: int, rng: random.Random) -> List[int]:
    """Pick ``k`` seeds far apart using a BFS farthest-point heuristic."""
    vertices = sorted(graph.vertices())
    seeds = [rng.choice(vertices)]
    hop_distance: Dict[int, int] = {}
    while len(seeds) < k:
        # Multi-source BFS from current seeds, measured in hops.
        queue = deque(seeds)
        hop_distance = {seed: 0 for seed in seeds}
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u not in hop_distance:
                    hop_distance[u] = hop_distance[v] + 1
                    queue.append(u)
        candidates = [v for v in vertices if v not in seeds]
        if not candidates:
            break
        farthest = max(candidates, key=lambda v: (hop_distance.get(v, -1), -v))
        seeds.append(farthest)
    return seeds


def bfs_partition(graph: Graph, num_partitions: int, seed: int = 0) -> Partitioning:
    """Partition ``graph`` into ``num_partitions`` regions by balanced BFS growth.

    The growth is synchronous and capacity-bounded: in every round each region
    absorbs at most one BFS layer and no region may exceed ``ceil(1.25 * n/k)``
    vertices until every vertex has been assigned, keeping sizes balanced.
    """
    n = graph.num_vertices
    if num_partitions < 1:
        raise PartitioningError(f"num_partitions must be >= 1, got {num_partitions}")
    if num_partitions > n:
        raise PartitioningError(
            f"cannot split {n} vertices into {num_partitions} non-empty partitions"
        )
    rng = random.Random(seed)
    seeds = _spread_seeds(graph, num_partitions, rng)

    capacity = max(1, int(1.25 * n / num_partitions) + 1)
    assignment: Dict[int, int] = {}
    frontiers: List[deque] = []
    sizes = [0] * num_partitions
    for pid, s in enumerate(seeds):
        assignment[s] = pid
        sizes[pid] += 1
        frontiers.append(deque([s]))

    # Synchronous capacity-bounded growth.
    active = True
    while active:
        active = False
        for pid in range(num_partitions):
            if sizes[pid] >= capacity:
                continue
            frontier = frontiers[pid]
            next_frontier: deque = deque()
            while frontier:
                v = frontier.popleft()
                for u in graph.neighbors(v):
                    if u in assignment:
                        continue
                    if sizes[pid] >= capacity:
                        next_frontier.append(v)
                        break
                    assignment[u] = pid
                    sizes[pid] += 1
                    next_frontier.append(u)
                    active = True
                else:
                    continue
                break
            frontiers[pid] = next_frontier

    # Any vertex still unassigned (capacity exhausted everywhere or disconnected
    # leftovers) joins the smallest adjacent region, or the globally smallest.
    unassigned = [v for v in graph.vertices() if v not in assignment]
    # BFS sweep so leftovers attach to already-assigned neighbours first.
    progress = True
    while unassigned and progress:
        progress = False
        still_left = []
        for v in unassigned:
            neighbour_pids = {assignment[u] for u in graph.neighbors(v) if u in assignment}
            if neighbour_pids:
                pid = min(neighbour_pids, key=lambda p: sizes[p])
                assignment[v] = pid
                sizes[pid] += 1
                progress = True
            else:
                still_left.append(v)
        unassigned = still_left
    for v in unassigned:
        pid = sizes.index(min(sizes))
        assignment[v] = pid
        sizes[pid] += 1

    return Partitioning(graph, assignment)


def refine_boundary(
    partitioning: Partitioning, max_passes: int = 3, balance_slack: float = 1.4
) -> Partitioning:
    """Greedy boundary refinement: move boundary vertices to reduce the edge cut.

    A vertex moves to a neighbouring partition when the move strictly reduces
    the number of cut edges and does not push the target partition above
    ``balance_slack`` times the ideal size.  This is the "local improvement"
    flavour of natural-cut partitioners, kept deliberately simple.
    """
    graph = partitioning.graph
    assignment = dict(partitioning.vertex_partition)
    k = partitioning.num_partitions
    ideal = graph.num_vertices / k
    limit = int(balance_slack * ideal) + 1
    sizes = [0] * k
    for v, pid in assignment.items():
        sizes[pid] += 1

    for _ in range(max_passes):
        moved = 0
        for v in sorted(graph.vertices()):
            current = assignment[v]
            if sizes[current] <= 1:
                continue
            neighbour_count: Dict[int, int] = {}
            for u in graph.neighbors(v):
                neighbour_count[assignment[u]] = neighbour_count.get(assignment[u], 0) + 1
            best_pid, best_gain = current, 0
            internal = neighbour_count.get(current, 0)
            for pid, count in neighbour_count.items():
                if pid == current or sizes[pid] >= limit:
                    continue
                gain = count - internal
                if gain > best_gain:
                    best_gain, best_pid = gain, pid
            if best_pid != current:
                assignment[v] = best_pid
                sizes[current] -= 1
                sizes[best_pid] += 1
                moved += 1
        if moved == 0:
            break
    return Partitioning(graph, assignment)
