"""Boundary-first vertex ordering for PSP indexes.

Section IV-B of the paper shows that a PSP index under the cross-boundary
strategy implicitly requires the *boundary-first property*: inside every
partition the boundary vertices must rank higher than the non-boundary ones,
and the relative order of boundary vertices must be consistent with the
overlay order.  Lemma 3 then proves that *any* order satisfying these
constraints yields the same canonical 2-hop labeling.

This module realises one such order with a tiered minimum-degree elimination:
all non-boundary vertices (tier 0) are contracted before any boundary vertex
(tier 1).  The resulting global order is used directly for the cross-boundary
index and restricted to partition / overlay vertex sets for the partition and
overlay indexes, which keeps all relative orders consistent by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.graph.graph import Graph
from repro.partitioning.base import Partitioning
from repro.treedec.mde import mde_order


def boundary_first_tiers(partitioning: Partitioning) -> Dict[int, int]:
    """Tier map realising the boundary-first property (boundary = tier 1)."""
    boundary = partitioning.all_boundary()
    return {v: (1 if v in boundary else 0) for v in partitioning.graph.vertices()}


def boundary_first_order(graph: Graph, partitioning: Partitioning) -> List[int]:
    """Global boundary-first vertex order (ascending importance).

    Non-boundary vertices are ordered first by minimum-degree elimination on
    the full graph, then the boundary vertices, again by minimum degree on the
    remaining (contracted) graph — which doubles as the overlay order.
    """
    return mde_order(graph, tiers=boundary_first_tiers(partitioning))


def restrict_order(order: Sequence[int], vertices: Iterable[int]) -> List[int]:
    """Restrict a global vertex order to a subset, preserving relative order."""
    wanted = set(vertices)
    return [v for v in order if v in wanted]


def rank_of(order: Sequence[int]) -> Dict[int, int]:
    """Rank map of an order (position in the sequence, ascending importance)."""
    return {v: i for i, v in enumerate(order)}
