"""Natural-cut-inspired partitioner (PUNCH substitute).

PUNCH [Delling et al., IPDPS 2011] finds "natural cuts" — sparse separators
between dense regions — and assembles them into balanced partitions.  The
full algorithm is far beyond what this reproduction needs; its role in the
paper is only to provide balanced partitions with small boundary sets on road
networks.  This module approximates that behaviour by combining the
region-growing partitioner with greedy boundary refinement, which empirically
reduces the edge cut by 20-40% on the synthetic networks while keeping
partitions balanced and connected.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.partitioning.base import Partitioning
from repro.partitioning.bfs_grow import bfs_partition, refine_boundary
from repro.partitioning.kdtree import kdtree_partition


def natural_cut_partition(
    graph: Graph,
    num_partitions: int,
    seed: int = 0,
    refinement_passes: int = 3,
) -> Partitioning:
    """Partition ``graph`` into balanced regions with a small edge cut.

    Uses coordinate bisection as the initial solution when coordinates are
    available (it is both faster and better balanced on road-like inputs) and
    region growing otherwise, then applies greedy boundary refinement.
    """
    if graph.has_coordinates():
        initial = kdtree_partition(graph, num_partitions)
    else:
        initial = bfs_partition(graph, num_partitions, seed=seed)
    if refinement_passes <= 0:
        return initial
    refined = refine_boundary(initial, max_passes=refinement_passes)
    # Refinement must never make the cut worse; fall back if it did.
    if refined.edge_cut() <= initial.edge_cut():
        return refined
    return initial
