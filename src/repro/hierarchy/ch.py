"""Contraction Hierarchies (CH) and Dynamic CH (DCH).

CH builds a hierarchical shortcut index by contracting vertices in ascending
importance order; a query is a bidirectional Dijkstra that only relaxes edges
from lower-rank to higher-rank vertices (Section III-A of the paper).  DCH
[Ouyang et al., VLDB 2020] maintains the shortcut values under edge-weight
changes; here maintenance is realised with the supporter-based bottom-up
recomputation of :func:`repro.treedec.mde.update_shortcuts_bottom_up`, which
handles both weight increases and decreases.

The query routine is written against an abstract "upward neighbour" callback so
the partitioned CH query of PMHL (a search over the union of the partition and
overlay shortcut arrays) can reuse it unchanged.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.base import DistanceIndex, StageTiming, Timer, UpdateReport
from repro.exceptions import IndexNotBuiltError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.graph.updates import UpdateBatch
from repro.kernels.shortcut_store import ShortcutStore
from repro.registry import IndexSpec, register_spec
from repro.treedec.mde import ContractionResult, contract_graph, update_shortcuts_bottom_up

INF = math.inf

UpwardNeighbors = Callable[[int], Mapping[int, float]]


def ch_bidirectional_query(
    source: int,
    target: int,
    upward_neighbors: UpwardNeighbors,
) -> float:
    """Bidirectional upward search used by CH-style indexes.

    ``upward_neighbors(v)`` must return a mapping of higher-rank neighbours to
    shortcut weights.  The search is correct for any shortcut set produced by
    a full vertex contraction because every shortest path has a unique
    highest-rank vertex reachable from both endpoints via upward edges.
    """
    if source == target:
        return 0.0

    dist_f: Dict[int, float] = {source: 0.0}
    dist_b: Dict[int, float] = {target: 0.0}
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    settled_f: Dict[int, float] = {}
    settled_b: Dict[int, float] = {}
    best = INF

    while heap_f or heap_b:
        top_f = heap_f[0][0] if heap_f else INF
        top_b = heap_b[0][0] if heap_b else INF
        if min(top_f, top_b) >= best:
            break
        if top_f <= top_b and heap_f:
            d, v = heapq.heappop(heap_f)
            if v in settled_f:
                continue
            settled_f[v] = d
            if v in dist_b:
                best = min(best, d + dist_b[v])
            for u, w in upward_neighbors(v).items():
                nd = d + w
                if nd < dist_f.get(u, INF):
                    dist_f[u] = nd
                    heapq.heappush(heap_f, (nd, u))
                    if u in dist_b:
                        best = min(best, nd + dist_b[u])
        elif heap_b:
            d, v = heapq.heappop(heap_b)
            if v in settled_b:
                continue
            settled_b[v] = d
            if v in dist_f:
                best = min(best, d + dist_f[v])
            for u, w in upward_neighbors(v).items():
                nd = d + w
                if nd < dist_b.get(u, INF):
                    dist_b[u] = nd
                    heapq.heappush(heap_b, (nd, u))
                    if u in dist_f:
                        best = min(best, nd + dist_f[u])
        else:
            break
    return best


class CHIndex(DistanceIndex):
    """Static Contraction Hierarchies index.

    Parameters
    ----------
    graph:
        Road network (kept by reference; updates mutate it in place).
    order:
        Optional explicit contraction order (ascending importance).
    tiers:
        Optional tier map for tiered minimum-degree ordering (used to impose
        the boundary-first property).
    """

    name = "CH"

    def __init__(
        self,
        graph: Graph,
        order: Optional[Sequence[int]] = None,
        tiers: Optional[Dict[int, int]] = None,
    ):
        super().__init__(graph)
        self._order = list(order) if order is not None else None
        self._tiers = dict(tiers) if tiers is not None else None
        self.contraction: Optional[ContractionResult] = None

    # ------------------------------------------------------------------
    def _build(self) -> None:
        with obs.span(self.name.lower() + ".build.contraction"):
            self.contraction = contract_graph(
                self.graph, order=self._order, tiers=self._tiers
            )

    def _require_built(self) -> ContractionResult:
        if self.contraction is None:
            raise IndexNotBuiltError(f"{self.name} index has not been built")
        return self.contraction

    def upward_neighbors(self, v: int) -> Mapping[int, float]:
        """Upward (higher-rank) shortcut neighbours of ``v``."""
        return self._require_built().shortcuts[v]

    def _shortcut_store(self):
        """Frozen upward adjacency of this epoch (``None`` = pure path)."""
        contraction = self._require_built()
        return self._kernel(
            "ch",
            lambda: ShortcutStore.freeze(
                lambda v: contraction.shortcuts[v], contraction.order
            ),
        )

    def query(self, source: int, target: int) -> float:
        contraction = self._require_built()
        if source not in contraction.rank:
            raise VertexNotFoundError(source)
        if target not in contraction.rank:
            raise VertexNotFoundError(target)
        store = self._shortcut_store()
        if store is not None:
            return store.query(source, target)
        return ch_bidirectional_query(source, target, self.upward_neighbors)

    def query_one_to_many(self, source: int, targets: Sequence[int]) -> List[float]:
        """The scalar search per target, looped natively when frozen.

        Each pair is answered by exactly the scalar bidirectional search (the
        native batch is the same search looped in C), so results match the
        scalar path bit for bit.
        """
        contraction = self._require_built()
        if source not in contraction.rank:
            raise VertexNotFoundError(source)
        targets = list(targets)
        for target in targets:
            if target not in contraction.rank:
                raise VertexNotFoundError(target)
        store = self._shortcut_store()
        if store is not None:
            return store.one_to_many(source, targets)
        return [
            0.0
            if source == target
            else ch_bidirectional_query(source, target, self.upward_neighbors)
            for target in targets
        ]

    def query_many(self, pairs) -> List[float]:
        """Arbitrary pair batches in one native call when frozen."""
        pair_list = list(pairs)
        if not pair_list:
            return []
        contraction = self._require_built()
        rank = contraction.rank
        for source, target in pair_list:
            if source not in rank:
                raise VertexNotFoundError(source)
            if target not in rank:
                raise VertexNotFoundError(target)
        store = self._shortcut_store()
        if store is not None:
            return store.query_pairs(pair_list)
        return super().query_many(pair_list)

    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        raise NotImplementedError(
            "CHIndex is static; use DCHIndex for dynamic maintenance"
        )

    def index_size(self) -> int:
        return self._require_built().shortcut_count()

    # ------------------------------------------------------------------
    # Snapshot persistence (see repro.store)
    # ------------------------------------------------------------------
    def to_state(self, io) -> Dict[str, object]:
        from repro.store.codec import pack_contraction

        return {"contraction": pack_contraction(self._require_built(), io)}

    def from_state(self, state: Dict[str, object], io) -> None:
        from repro.store.codec import unpack_contraction

        self.contraction = unpack_contraction(state["contraction"], io)

    def _kernel_exports(self):
        return {"ch": self._shortcut_store}

    @property
    def rank(self) -> Dict[int, int]:
        """Vertex rank (ascending importance) used by the hierarchy."""
        return self._require_built().rank


class DCHIndex(CHIndex):
    """Dynamic Contraction Hierarchies (the paper's DCH baseline).

    Index maintenance traces affected shortcuts bottom-up using the supporter
    records collected at construction time.  The update report contains a
    single ``shortcut_update`` stage; queries are available again once that
    stage finishes (plus the trivial on-spot edge refresh).
    """

    name = "DCH"

    def _apply_batch(self, batch: UpdateBatch) -> UpdateReport:
        contraction = self._require_built()
        report = UpdateReport()
        self.invalidate_kernels()

        with Timer() as timer:
            batch.apply(self.graph)
        self._emit_stage(report, StageTiming("edge_update", timer.seconds))

        with Timer() as timer:
            changed = update_shortcuts_bottom_up(
                contraction, self.graph, [update.key() for update in batch]
            )
        self._emit_stage(report, StageTiming("shortcut_update", timer.seconds))
        self.last_changed_shortcuts = changed
        return report


@register_spec
@dataclass(frozen=True)
class DCHSpec(IndexSpec):
    """Construction spec for the dynamic CH baseline (no knobs).

    DCH's batch plane stays a per-pair loop of the scalar search: its query
    is a pruned bidirectional search whose result depends on the interleaving
    of the two frontiers, so any shared-search amortisation would perturb the
    floating-point rounding of the scalar path.  The native kernel keeps that
    contract — it loops the identical search in C, one pair at a time.
    """

    method = "DCH"

    def create(self, graph: Graph) -> DCHIndex:
        return DCHIndex(graph)
