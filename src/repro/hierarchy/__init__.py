"""Hierarchy-based indexes: Contraction Hierarchies and Dynamic CH."""

from repro.hierarchy.ch import CHIndex, DCHIndex, ch_bidirectional_query

__all__ = ["CHIndex", "DCHIndex", "ch_bidirectional_query"]
